//! # mas-serve
//!
//! A streaming attention-serving runtime on top of the MAS-Attention
//! reproduction: the paper's memory-aware stream processing overlaps tile
//! compute with DMA inside one kernel; this crate sustains a *request
//! stream* across kernels, turning the one-shot `Planner::run` pipeline
//! into a serving system with admission control, micro-batching and a
//! shared, persistable schedule cache.
//!
//! ## Request lifecycle
//!
//! ```text
//!        ┌────────┐   ┌─────────┐   ┌──────────────┐   ┌──────────┐   ┌────────┐
//! req ──▶│ admit  │──▶│  batch  │──▶│ plan / cache │──▶│ simulate │──▶│ report │
//!        └────────┘   └─────────┘   └──────────────┘   └──────────┘   └────────┘
//!         shed load    coalesce +     tune once,         mas-sim        per-request
//!         (queue.rs)   micro-batch    replay forever     executor       latency/energy/
//!                      (batcher.rs)   (cache.rs)         (runtime.rs)   deadline (metrics.rs)
//! ```
//!
//! 1. **Admit** ([`queue`]) — each arrival is screened: infeasible
//!    workloads (operands over DRAM, no valid tiling) and deadlines below
//!    the device's physical service-time lower bound are rejected up front;
//!    load is shed at a batcher depth bound and — the bound that engages
//!    under sustained overload — at an estimated launch-queue delay bound.
//! 2. **Batch** ([`batcher`]) — admitted requests coalesce by `(method,
//!    heads, seq_len, embed)` key: identical requests merge outright and
//!    compatible shapes micro-batch into one merged workload (summed batch
//!    dimension), dispatched when full, when the batching window expires,
//!    or when growing further would outrun the device's memory (per-request
//!    feasibility is preserved under merging).
//! 3. **Plan / cache** ([`cache`]) — each batch key is looked up in the
//!    shared [`ScheduleCache`]; misses run the planner (heuristic tiling or
//!    MCTS + GA search) plus one simulation and are memoized. Distinct
//!    misses plan concurrently on the persistent worker pool. Caches
//!    serialize to a versioned text format and merge commutatively and
//!    associatively, so sharded tuning sweeps combine into one cache equal
//!    to the jointly built one.
//! 4. **Simulate** ([`runtime`]) — batches launch in ready order across
//!    virtual devices; the deterministic timeline yields per-request start,
//!    completion and queueing delay.
//! 5. **Report** ([`metrics`]) — a [`ServeReport`] with per-request
//!    latency, energy share and deadline verdicts, plus aggregate
//!    throughput, p50/p99 latency, deadline-miss rate and cache hit rate.
//! 6. **Observe** ([`telemetry`], opt-in) — with
//!    [`EngineConfig::telemetry`](engine::EngineConfig::telemetry) set,
//!    every lifecycle transition (arrival, admission verdict, batch join,
//!    dispatch, completion, budget charge/release) is appended to a typed
//!    [`EngineEvent`](telemetry::EngineEvent) timeline alongside streaming
//!    log-bucketed latency histograms; post-hoc analysis reconstructs the
//!    engine report bit-for-bit from events alone, attributes memory peaks
//!    and device utilization, and exports Chrome trace-event JSON
//!    (Perfetto) and Prometheus text snapshots.
//!
//! Reports are a pure function of the trace and the configuration: pooled
//! and serial planning produce bit-identical [`ServeReport`]s (pinned by
//! test), and a warm cache changes wall-clock planning cost only, never
//! results.
//!
//! ## Autoregressive decode ([`decode`])
//!
//! The pipeline above serves *prefill* requests — independent fixed-shape
//! attention layers. Decode traffic (one generated token per step, the
//! dominant shape in LLM serving) flows through the decode-aware variant
//! instead:
//!
//! ```text
//!          ┌───────────────┐   ┌──────────────────┐   ┌───────────────┐
//! session ─▶ admit session │──▶│ batch steps      │──▶│ launch + report│
//!  + steps │ (KV budget)   │   │ (cross-session)  │   │ (decode cost)  │
//!          └───────────────┘   └──────────────────┘   └───────────────┘
//! ```
//!
//! * Sessions hold *block-granular KV residency* by default: they charge
//!   the shared budget for the fixed-size token blocks their context
//!   actually occupies (vLLM-style paged allocation), growing one block at
//!   a time as they decode; a step that cannot get a block is shed as a
//!   pool overflow while its session keeps decoding. Grouped-query
//!   sessions (`kv_heads < heads`) charge proportionally less. The legacy
//!   max-context reservation policy remains available for comparison
//!   ([`DecodePolicy`]).
//! * Step requests from different sessions sharing a
//!   `(heads, kv_heads, embed)` shape
//!   coalesce into one batched launch within a window, amortizing the
//!   per-launch issue overhead that dominates single-token kernels.
//! * Launch cost comes from the closed-form decode model
//!   ([`mas_dataflow::decode::DecodeStep`]): per-step work linear in the
//!   context length, DRAM traffic of the cache stream plus only the
//!   new-token operand rows. The numerical kernel this models —
//!   `mas_tensor::decode::decode_attention` over a per-session
//!   `mas_tensor::decode::KvCache` — is pinned step-by-step against the
//!   full-prefill oracle by the differential `decode_vs_prefill` test
//!   harness.
//!
//! [`DecodeRuntime::run_trace`] replays a deterministic
//! [`mas_workloads::DecodeTrace`] and yields a [`DecodeReport`] with
//! per-step latency, batching factor, deadline verdicts and peak KV
//! residency.
//!
//! ## The unified engine ([`engine`])
//!
//! Both pipelines above are thin shims over [`ServeEngine`], which admits,
//! batches and replays a **mixed** prefill+decode stream on one
//! earliest-free device timeline with one shared memory budget:
//!
//! ```text
//! prefill ──┐   ┌───────────────────────┐   ┌──────────────────────────┐
//!           ├──▶│ unified WorkItem queue │──▶│ one device timeline      │
//! decode  ──┘   │ (LaunchKey coalescing, │   │ (policy-ordered slots,   │
//!               │  shared memory budget) │   │  shared schedule cache)  │
//!               └───────────────────────┘   └──────────────────────────┘
//! ```
//!
//! Every unit of work is a [`engine::WorkItem`] coalescing under a typed
//! [`LaunchKey`]; a configurable iteration-level [`SchedulePolicy`]
//! (decode-priority / prefill-priority / fair-share) decides which class
//! feeds each launch slot when both are ready; and prefill activation
//! footprints plus decode KV residency charge one budget, so a prefill
//! burst can shed decode block growth (pool overflows) and a heavy decode
//! residency can shed prefill arrivals
//! ([`RejectReason::MemoryPressure`]). Single-class streams through the
//! engine are bit-identical to the legacy reports (pinned by test), and an
//! [`EngineReport`] breaks a mixed replay down per class with shared
//! [`LatencyStats`].
//!
//! With [`EngineConfig::tracks`](engine::EngineConfig::tracks) set, the
//! scalar one-number-per-launch device model gives way to the
//! **overlap-aware track executor**: each launch's closed-form cost is
//! split per tile/chunk stage into DMA-in / MAC / VEC / writeback demands
//! ([`mas_dataflow::TrackDemand`]) and flow-shop scheduled on four
//! per-device FIFO tracks ([`TrackKind`]), so stage `k+1`'s DMA streams
//! under stage `k`'s compute — the paper's intra-kernel overlap, recovered
//! at the serving layer. A launch commits the overlapped placement only
//! when it strictly beats the scalar one (never-worse by construction),
//! and the default `tracks: None` keeps every pinned replay bit-identical.
//!
//! ## Example
//!
//! ```
//! use mas_dataflow::DataflowKind;
//! use mas_serve::{ServeConfig, ServeRequest, ServeRuntime};
//! use mas_workloads::{request_trace, Network, TraceConfig};
//!
//! let trace = request_trace(&TraceConfig::poisson(
//!     vec![Network::BertSmall, Network::VitB16],
//!     16,   // requests
//!     500.0, // arrival rate (req/s)
//!     42,   // seed
//! ));
//! let stream = ServeRequest::stream_from_trace(&trace, DataflowKind::MasAttention, Some(0.05));
//! let mut runtime = ServeRuntime::new(ServeConfig::default());
//! let report = runtime.run_trace(&stream).unwrap();
//! assert_eq!(report.completed() + report.rejected.len(), 16);
//! assert!(report.throughput_rps() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod batcher;
pub mod cache;
pub mod decode;
pub mod engine;
pub mod key;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod runtime;
pub mod telemetry;

pub use batcher::{Batch, BatchPolicy};
pub use cache::{
    hardware_fingerprint, planning_fingerprint, CacheError, CacheKey, CachedPlan, ScheduleCache,
};
pub use decode::{
    decode_step_lower_bound_s, decode_step_lower_bound_s_with_kv, launch_service_s,
    launch_service_s_with_kv, prefill_chunk_service_s_with_kv, DecodePolicy, DecodeRejectReason,
    DecodeReport, DecodeRuntime, DecodeStepOutcome, RejectedDecodeStep,
};
pub use engine::{
    ChunkPolicy, DecodeStepItem, DeviceUtil, EngineConfig, EngineReport, PreemptMode,
    SchedulePolicy, ServeEngine, WorkItem,
};
pub use key::{BatchKey, ChunkKey, DecodeKey, LaunchKey, WorkClass};
pub use mas_dataflow::KvDtype;
pub use mas_sim::{DeviceTracks, TrackConfig, TrackKind, TRACK_COUNT};
pub use metrics::{
    percentile, percentile_sorted, LatencyStats, RejectedRequest, RequestOutcome, ServeReport,
};
pub use queue::{AdmissionPolicy, RejectReason};
pub use request::ServeRequest;
pub use runtime::{ServeConfig, ServeRuntime};
pub use telemetry::{
    chrome_trace_from_sim, validate_chrome_trace, ChromeTraceStats, ConservationStats, EngineEvent,
    EventKind, LogHistogram, MemOwner, PeakAttribution, PreemptVictim, SealCause, Telemetry,
    TelemetryConfig, TimeSeries, Track,
};
