//! The unified prefill+decode serve engine: one mixed request stream, one
//! earliest-free device timeline, one shared memory budget.
//!
//! Historically `mas-serve` replayed prefill requests ([`ServeRuntime`])
//! and decode sessions ([`DecodeRuntime`]) on two disjoint virtual-device
//! timelines, so the two traffic classes could never contend — a prefill
//! burst could not delay a decode step, and decode KV residency could not
//! squeeze prefill admission. [`ServeEngine`] merges both classes into one
//! interleaved work stream:
//!
//! * **One work item type.** Every unit of schedulable work is a
//!   [`WorkItem`] — a prefill request or a decode step — and coalesces in
//!   one launch map keyed by the typed [`LaunchKey`], with one launch-id
//!   space. Prefill items micro-batch under [`BatchPolicy`]
//!   (window / fill / feasibility dispatch) and decode items batch
//!   cross-session under [`DecodePolicy`] (window / fill), exactly as the
//!   legacy runtimes did — the mechanism is shared, the per-class policies
//!   are preserved.
//! * **One device timeline.** Every dispatched launch — either class —
//!   starts on the earliest-free virtual device at
//!   `max(device_free, ready)`, so the classes genuinely contend for
//!   compute. The iteration-level [`SchedulePolicy`] decides which queue
//!   feeds the launch slots when launches of both classes are ready at the
//!   same stream instant: [`SchedulePolicy::DecodePriority`] dispatches
//!   pending decode launches first (protecting token latency under prefill
//!   bursts), [`SchedulePolicy::PrefillPriority`] the reverse, and
//!   [`SchedulePolicy::FairShare`] interleaves strictly by launch creation
//!   (arrival) order.
//! * **One memory budget.** Decode sessions charge KV residency (paged
//!   block growth or legacy max-context reservation, per [`DecodePolicy`])
//!   and prefill requests charge their activation footprint (the four
//!   Q/K/V/O operands) against the *same* budget
//!   ([`EngineConfig::shared_budget_bytes`], defaulting to the decode
//!   policy's KV budget — half of device DRAM). A prefill burst can
//!   therefore exhaust the pool and shed decode block growth
//!   ([`DecodeRejectReason::KvPoolExhausted`]), and a heavy decode
//!   residency can shed prefill arrivals
//!   ([`RejectReason::MemoryPressure`]).
//!
//! ## Budget accounting invariants
//!
//! The shared pool is charged and released at these points, and nowhere
//! else:
//!
//! 1. A prefill request charges `4 · operand_bytes` when it joins a batch
//!    (it is rejected with [`RejectReason::MemoryPressure`] instead if the
//!    charge would exceed the budget) and its batch releases the summed
//!    member charge when the batch's launch *completes* on the timeline.
//! 2. A decode session charges its initial residency at admission (first
//!    step's blocks under paged charging, worst-case max context under
//!    legacy charging), grows block-by-block as it decodes (a growth that
//!    would exceed the budget sheds that step as a pool overflow, never the
//!    session), and releases everything when its last step completes.
//! 3. Charges never go negative (releases are saturating), every charge is
//!    checked against the budget *before* it is applied, and the recorded
//!    peak ([`EngineReport::mem_peak_bytes`]) therefore never exceeds the
//!    budget. These invariants are pinned by a proptest over random mixed
//!    interleavings (`tests/engine_mixed.rs`).
//!
//! ## Chunked prefill and preemption invariants
//!
//! Two opt-in features bound decode tail latency under overload; both
//! default off, and every replay with them off is bit-identical to the
//! pre-feature engine:
//!
//! 1. **Chunk-chain ordering.** Under [`EngineConfig::chunked_prefill`] a
//!    prefill batch longer than the chunk token budget lowers into a chain
//!    of chunk launches keyed by [`LaunchKey::PrefillChunk`]. Chunks of one
//!    chain dispatch strictly in index order — chunk `k+1` becomes ready
//!    only at chunk `k`'s completion, so decode launches can slot between
//!    chunks (the head-of-line-blocking fix) — and chunks of *different*
//!    requests never coalesce: the chain id is part of the launch key.
//!    This holds under any batching window, including `window_s = 0.0`.
//!    Chunk service times split the monolithic plan's seconds
//!    proportionally to each chunk's closed-form stream demand, plus one
//!    launch-issue overhead per chunk after the first — chunking is priced
//!    as issue overhead, never as replanning the batch.
//! 2. **Budget charged once per chain.** A chunked batch charges its
//!    activation footprint once, at join, exactly like a monolithic batch,
//!    and releases it exactly once — when the chain's *last* chunk
//!    completes. Member requests complete at the last chunk's completion.
//! 3. **Preemption never drops an admitted session's tokens.** Under
//!    [`EngineConfig::preempt`], slot preemption displaces only launches
//!    that have not yet *started* (their effects are staged until their
//!    start instant passes), and the displaced batch re-places behind the
//!    preempting decode launch — it is delayed, never dropped. KV
//!    preemption evicts an idle session's block charge but stashes its
//!    resident-token bytes: they swap back in at the session's next step
//!    ([`PreemptMode::Hold`]) or are re-priced as recompute work on that
//!    step's launch ([`PreemptMode::Recompute`]). Steps are shed only
//!    through the pre-existing screening and overflow paths.
//!
//! ## Backward equivalence
//!
//! A prefill-only stream through the engine reproduces the legacy
//! [`ServeReport`] bit-identically, and a decode-only trace reproduces the
//! legacy [`DecodeReport`] bit-identically: the event loop performs the
//! same checks in the same order as the two legacy runtimes, launch-id
//! assignment and device selection are unchanged, and with a single class
//! present the scheduling policy degenerates to launch-creation order.
//! [`ServeRuntime`] and [`DecodeRuntime`] are thin shims over this engine
//! — the prefill shim additionally *disables* the shared budget (the
//! legacy runtime had none), so its replays match the pre-unification
//! behavior in every regime; a prefill-only stream through a
//! default-budget engine matches too except in memory-bound corners where
//! the budget sheds load the legacy path would have queued. The legacy
//! runtimes' extensive behavioral suites (which pin absolute latencies,
//! counts and orderings, not engine-vs-engine consistency) run through the
//! shims on every build and are the substantive equivalence pin; the
//! `engine_equivalence` suite adds shim/engine consistency, policy
//! invariance on single-class streams, and the per-class report collapse.
//!
//! Planning: prefill launches are planned through the shared
//! [`ScheduleCache`] exactly as before. For prefill-only runs the engine
//! pre-plans the unique uncached batch keys — concurrently when
//! [`EngineConfig::parallel_planning`] is set — before replaying, which
//! preserves the legacy pooled-planning speedup; mixed runs plan misses
//! on demand at dispatch (batch composition can depend on cross-class
//! contention there). Either way the cache changes wall-clock planning
//! cost only, never results.
//!
//! [`ServeRuntime`]: crate::runtime::ServeRuntime
//! [`DecodeRuntime`]: crate::decode::DecodeRuntime
//! [`DecodeRejectReason::KvPoolExhausted`]: crate::decode::DecodeRejectReason::KvPoolExhausted
//! [`RejectReason::MemoryPressure`]: crate::queue::RejectReason::MemoryPressure

use std::collections::{BTreeMap, BTreeSet};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use mas_attention::planner::TilingStrategy;
use mas_attention::{Planner, PlannerConfig};
use mas_dataflow::decode::{decode_step_fits_with_kv, DecodeStep, PrefillChunk};
use mas_dataflow::{AttentionWorkload, StreamDemand, TrackDemand};
use mas_sim::{
    DeviceTracks, HardwareConfig, Result, StageSpan, TrackConfig, TrackKind, TrackPlacement,
    TRACK_COUNT,
};
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, MixedTrace};

use crate::batcher::{coalesce, BatchPolicy};
use crate::cache::{CacheKey, CachedPlan, ScheduleCache};
use crate::decode::{
    decode_step_lower_bound_s_with_kv, launch_service_s_with_kv, prefill_chunk_service_s_with_kv,
    DecodePolicy, DecodeRejectReason, DecodeReport, DecodeStepOutcome, RejectedDecodeStep,
};
use crate::key::{BatchKey, ChunkKey, DecodeKey, LaunchKey, WorkClass};
use crate::metrics::{LatencyStats, RejectedRequest, RequestOutcome, ServeReport};
use crate::queue::{
    service_time_lower_bound_s, workload_is_feasible, AdmissionPolicy, BacklogEstimator,
    RejectReason,
};
use crate::request::ServeRequest;
use crate::telemetry::{
    EventKind, MemOwner, PreemptVictim, SealCause, Telemetry, TelemetryConfig, TelemetryRecorder,
};

/// Which queue feeds the launch slots when launches of both classes are
/// ready at the same stream instant (iteration-level scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Pending decode launches dispatch before pending prefill launches:
    /// protects per-token latency under prefill bursts.
    DecodePriority,
    /// Pending prefill launches dispatch before pending decode launches:
    /// protects time-to-first-token / prefill throughput under decode load.
    PrefillPriority,
    /// Launches dispatch strictly in creation (arrival) order regardless of
    /// class — the default, and the order both legacy single-class runtimes
    /// used.
    #[default]
    FairShare,
}

impl SchedulePolicy {
    /// Dispatch rank of a class under this policy (lower dispatches first;
    /// ties fall back to launch creation order).
    fn class_rank(self, class: WorkClass) -> u8 {
        match (self, class) {
            (SchedulePolicy::FairShare, _)
            | (SchedulePolicy::DecodePriority, WorkClass::Decode)
            | (SchedulePolicy::PrefillPriority, WorkClass::Prefill) => 0,
            _ => 1,
        }
    }
}

impl std::fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedulePolicy::DecodePriority => "decode-priority",
            SchedulePolicy::PrefillPriority => "prefill-priority",
            SchedulePolicy::FairShare => "fair-share",
        })
    }
}

/// Chunked-prefill policy ([`EngineConfig::chunked_prefill`]): a prefill
/// batch whose sequence length exceeds the per-chunk token budget lowers
/// into a chain of chunk launches instead of one monolithic launch, so
/// decode work can slot into the gaps between chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkPolicy {
    /// Token budget per chunk: each chunk covers at most this many query
    /// rows of the prompt. `0` disables chunking (every batch stays one
    /// monolithic launch), as does any budget at or above the prompt
    /// length.
    pub chunk_tokens: usize,
}

impl ChunkPolicy {
    /// A policy with the given per-chunk token budget.
    #[must_use]
    pub fn new(chunk_tokens: usize) -> Self {
        Self { chunk_tokens }
    }

    /// The chunk sizes covering a `seq_len`-token prompt: full chunks of
    /// `chunk_tokens` rows plus one ragged tail. A single-element result
    /// means the batch dispatches monolithically.
    #[must_use]
    pub fn chunk_sizes(&self, seq_len: usize) -> Vec<usize> {
        if self.chunk_tokens == 0 || self.chunk_tokens >= seq_len {
            return vec![seq_len];
        }
        let mut sizes = vec![self.chunk_tokens; seq_len / self.chunk_tokens];
        let tail = seq_len % self.chunk_tokens;
        if tail > 0 {
            sizes.push(tail);
        }
        sizes
    }
}

/// What happens to a decode session's KV residency when the session is
/// preempted under shared-pool pressure ([`EngineConfig::preempt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PreemptMode {
    /// Swap: the evicted KV is held host-side and its resident-token bytes
    /// are restored when the session's next step arrives. The host
    /// transfer is off the device timeline, so the resumed step pays no
    /// extra service time.
    #[default]
    Hold,
    /// Drop-and-recompute: the evicted KV is discarded, and the session's
    /// resumed step is additionally priced for recomputing the evicted
    /// context as a [`PrefillChunk`] demand folded into its launch.
    Recompute,
}

impl std::fmt::Display for PreemptMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PreemptMode::Hold => "hold",
            PreemptMode::Recompute => "recompute",
        })
    }
}

impl std::str::FromStr for PreemptMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "hold" => Ok(PreemptMode::Hold),
            "recompute" => Ok(PreemptMode::Recompute),
            other => Err(format!("unknown preempt mode `{other}` (hold|recompute)")),
        }
    }
}

/// One unit of schedulable work in the engine's unified stream: a prefill
/// attention request or a single decode step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum WorkItem {
    /// A fixed-shape prefill request.
    Prefill(ServeRequest),
    /// One decode step of an admitted session.
    Decode(DecodeStepItem),
}

/// A decode step joined to a launch: the session, the step index, the
/// context length attended and the arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DecodeStepItem {
    /// The session the step belongs to.
    pub session_id: u64,
    /// Zero-based index of the step within its session.
    pub step_index: usize,
    /// Context length attended (prompt plus generated tokens so far,
    /// including this step's).
    pub context_len: usize,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Context tokens whose KV must be recomputed before this step can run
    /// (nonzero only for the first step after a
    /// [`PreemptMode::Recompute`] eviction): priced into the step's launch
    /// as a [`PrefillChunk`] demand.
    pub recompute_tokens: usize,
}

/// Configuration of the unified serve engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Planner for prefill batches (hardware, energy model, tiling
    /// strategy, tuning budget). The hardware model also costs decode
    /// launches and sizes the shared memory budget.
    pub planner: PlannerConfig,
    /// Prefill admission control.
    pub admission: AdmissionPolicy,
    /// Prefill micro-batching policy.
    pub batching: BatchPolicy,
    /// Decode admission, KV charging and step-batching policy.
    pub decode: DecodePolicy,
    /// Number of virtual devices both classes' launches share.
    pub devices: usize,
    /// Whether uncached prefill plans are computed concurrently on the
    /// worker pool (prefill-only runs pre-plan; reports are bit-identical
    /// either way).
    pub parallel_planning: bool,
    /// Iteration-level scheduling policy for mixed launch queues.
    pub policy: SchedulePolicy,
    /// The shared device memory budget both classes charge against. `None`
    /// defaults to the decode policy's KV budget (half of device DRAM).
    pub shared_budget_bytes: Option<u64>,
    /// Opt-in structured telemetry ([`crate::telemetry`]). `None` (the
    /// default) records nothing and leaves every replay bit-identical to
    /// the pre-telemetry engine; `Some` records a typed [`EventKind`]
    /// stream retrievable via [`ServeEngine::telemetry`] after a run.
    pub telemetry: Option<TelemetryConfig>,
    /// Opt-in chunked prefill. `None` (the default) keeps every replay
    /// bit-identical to the pre-chunking engine; `Some` lowers long
    /// prefill batches into chunk chains (see the module docs'
    /// chunking/preemption invariants).
    pub chunked_prefill: Option<ChunkPolicy>,
    /// Opt-in iteration-level preemption. `None` (the default) keeps every
    /// replay bit-identical to the pre-preemption engine. `Some` enables
    /// both mechanisms: deadline-pressed decode launches may displace
    /// not-yet-started prefill-class launches (only under
    /// [`SchedulePolicy::DecodePriority`], which expresses that decode
    /// latency outranks prefill), and KV-pool pressure may evict idle
    /// sessions' block charges with the chosen [`PreemptMode`].
    pub preempt: Option<PreemptMode>,
    /// Opt-in overlap-aware track executor. `None` (the default) keeps the
    /// scalar service-time device model and every replay bit-identical.
    /// `Some` lowers each launch into per-tile stage demands flow-shop
    /// scheduled over the device's DMA-in/MAC/VEC/writeback tracks
    /// ([`mas_sim::DeviceTracks`]); a launch commits the earlier of the
    /// scalar span and the track schedule, so makespans are never worse
    /// than the scalar model's, and [`TrackConfig::degenerate`] reproduces
    /// the scalar model bit-for-bit. Admission, deadline screening and
    /// budget sizing keep using the scalar estimates in both modes.
    pub tracks: Option<TrackConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            planner: PlannerConfig::default(),
            admission: AdmissionPolicy::default(),
            batching: BatchPolicy::default(),
            decode: DecodePolicy::default(),
            devices: 1,
            parallel_planning: true,
            policy: SchedulePolicy::default(),
            shared_budget_bytes: None,
            telemetry: None,
            chunked_prefill: None,
            preempt: None,
            tracks: None,
        }
    }
}

impl EngineConfig {
    /// The effective shared memory budget on `hw`: the explicit bytes, or
    /// the decode policy's KV budget.
    #[must_use]
    pub fn budget(&self, hw: &HardwareConfig) -> u64 {
        self.shared_budget_bytes
            .unwrap_or_else(|| self.decode.kv_budget(hw))
    }
}

/// Aggregate result of replaying one mixed trace: the per-class breakdowns
/// (each bit-identical to the corresponding legacy report when the other
/// class is absent) plus the shared-timeline and shared-budget figures.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineReport {
    /// The scheduling policy the replay ran under.
    pub policy: SchedulePolicy,
    /// Prefill-class breakdown (latency, energy, cache hits, sheds).
    pub prefill: ServeReport,
    /// Decode-class breakdown (per-step latency, batching factor, KV peaks,
    /// pool overflows).
    pub decode: DecodeReport,
    /// Total launches dispatched across both classes (one shared id space).
    pub launches: usize,
    /// Virtual time at which the last launch of either class completed.
    pub makespan_s: f64,
    /// The shared memory budget the replay enforced, in bytes.
    pub mem_budget_bytes: u64,
    /// Peak bytes charged against the shared budget at once (prefill
    /// activations plus decode KV residency). Never exceeds the budget.
    pub mem_peak_bytes: u64,
    /// Prefill activation share of the shared peak.
    pub mem_peak_prefill_bytes: u64,
    /// Decode KV share of the shared peak.
    pub mem_peak_decode_bytes: u64,
    /// Per-device utilization on the shared timeline (both classes), one
    /// entry per virtual device.
    pub device_util: Vec<DeviceUtil>,
    /// Prefill-class launches displaced by deadline-pressed decode launches
    /// before starting (slot preemption). Zero unless
    /// [`EngineConfig::preempt`] is set.
    pub preemptions_prefill: usize,
    /// Decode sessions whose KV block charge was evicted under pool
    /// pressure (KV preemption). Zero unless [`EngineConfig::preempt`] is
    /// set.
    pub preemptions_decode: usize,
}

/// Utilization of one virtual device over a replay's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct DeviceUtil {
    /// Seconds the device spent in service (sum of launch service times,
    /// both classes).
    pub busy_s: f64,
    /// Launch-to-launch idle gaps: times a launch started strictly after
    /// the device's previous completion (excluding the initial idle before
    /// the first launch).
    pub idle_gaps: usize,
    /// Launches the device served.
    pub launches: usize,
}

impl DeviceUtil {
    /// Busy fraction of the device over `makespan_s` (0 when the makespan
    /// is zero).
    #[must_use]
    pub fn busy_fraction(&self, makespan_s: f64) -> f64 {
        if makespan_s > 0.0 {
            self.busy_s / makespan_s
        } else {
            0.0
        }
    }
}

impl EngineReport {
    /// Completed work items across both classes.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.prefill.completed() + self.decode.completed()
    }

    /// Rejected work items across both classes.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.prefill.rejected.len() + self.decode.rejected.len()
    }

    /// Prefill-class latency summary.
    #[must_use]
    pub fn prefill_latency(&self) -> Option<LatencyStats> {
        self.prefill.latency_stats()
    }

    /// Decode-class latency summary.
    #[must_use]
    pub fn decode_latency(&self) -> Option<LatencyStats> {
        self.decode.latency_stats()
    }

    /// A compact human-readable summary: the shared timeline and budget
    /// headline plus one line per class.
    #[must_use]
    pub fn summary(&self) -> String {
        let stats = |s: Option<LatencyStats>| {
            s.map_or_else(|| "no completions".to_string(), |s| s.to_string())
        };
        let devices = if self.device_util.is_empty() {
            String::new()
        } else {
            let per_device: Vec<String> = self
                .device_util
                .iter()
                .enumerate()
                .map(|(d, u)| {
                    format!(
                        "d{d} {:.0}% busy ({} launches, {} gaps)",
                        u.busy_fraction(self.makespan_s) * 100.0,
                        u.launches,
                        u.idle_gaps
                    )
                })
                .collect();
            format!("\n  devices: {}", per_device.join(" | "))
        };
        let preempt = if self.preemptions_prefill + self.preemptions_decode > 0 {
            format!(
                " | preempted {} launches / {} sessions",
                self.preemptions_prefill, self.preemptions_decode
            )
        } else {
            String::new()
        };
        format!(
            "engine[{}]: {} launches in {:.3} ms makespan | shared budget {:.1} MB peak {:.1} MB \
             ({:.1} prefill + {:.1} decode){preempt}\n  prefill: {}\n  decode:  {}{}",
            self.policy,
            self.launches,
            self.makespan_s * 1e3,
            self.mem_budget_bytes as f64 / 1e6,
            self.mem_peak_bytes as f64 / 1e6,
            self.mem_peak_prefill_bytes as f64 / 1e6,
            self.mem_peak_decode_bytes as f64 / 1e6,
            stats(self.prefill_latency()),
            stats(self.decode_latency()),
            devices,
        )
    }
}

/// The unified serve engine. Owns the shared schedule cache, which persists
/// across runs (and, via [`ScheduleCache::save`] / [`ScheduleCache::load`]
/// / [`ScheduleCache::merge`], across processes).
#[derive(Debug, Clone)]
pub struct ServeEngine {
    config: EngineConfig,
    planner: Planner,
    cache: ScheduleCache,
    /// The telemetry of the most recent run, when recording was configured.
    telemetry: Option<Telemetry>,
    /// Per-device track executor state of the most recent run, when
    /// [`EngineConfig::tracks`] was set.
    track_stats: Option<Vec<DeviceTracks>>,
}

impl ServeEngine {
    /// Creates an engine with an empty schedule cache.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self::with_cache(config, ScheduleCache::new())
    }

    /// Creates an engine warm-started with an existing cache.
    #[must_use]
    pub fn with_cache(config: EngineConfig, cache: ScheduleCache) -> Self {
        let planner = Planner::new(config.planner.clone());
        Self {
            config,
            planner,
            cache,
            telemetry: None,
            track_stats: None,
        }
    }

    /// The structured telemetry of the most recent [`ServeEngine::run`]:
    /// `Some` only when [`EngineConfig::telemetry`] was set for that run.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Per-device track executor state after the last run (`None` unless
    /// [`EngineConfig::tracks`] was set): per-track busy seconds and
    /// overlap-vs-scalar commit counts.
    #[must_use]
    pub fn track_stats(&self) -> Option<&[DeviceTracks]> {
        self.track_stats.as_deref()
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared schedule cache.
    #[must_use]
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// Mutable access to the shared schedule cache (e.g. to merge a shard).
    pub fn cache_mut(&mut self) -> &mut ScheduleCache {
        &mut self.cache
    }

    /// Consumes the engine, returning its cache (for persistence).
    #[must_use]
    pub fn into_cache(self) -> ScheduleCache {
        self.cache
    }

    /// Replays a generated [`MixedTrace`]: its prefill leg becomes a request
    /// stream (ids in trace order, all asking for `method` with the same
    /// relative `deadline_s`), interleaved with its decode leg by arrival
    /// time.
    ///
    /// # Errors
    ///
    /// Same as [`ServeEngine::run`].
    pub fn run_mixed(
        &mut self,
        trace: &MixedTrace,
        method: mas_dataflow::DataflowKind,
        deadline_s: Option<f64>,
    ) -> Result<EngineReport> {
        let stream = ServeRequest::stream_from_trace(&trace.prefill, method, deadline_s);
        self.run(&stream, &trace.decode)
    }

    /// Replays a mixed stream — prefill requests plus a decode trace — on
    /// one device timeline and returns the aggregate report.
    ///
    /// Events are processed in arrival order (prefill requests additionally
    /// ordered by id, decode steps in trace order; a prefill request ties
    /// ahead of a decode step arriving at the identical instant). The
    /// report is a pure function of the inputs, the configuration and the
    /// cache contents (the cache changes wall-clock planning cost, never
    /// results).
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if a prefill batch that passed
    /// admission fails to plan or simulate. Decode-only streams never plan
    /// and so never fail.
    pub fn run(&mut self, prefill: &[ServeRequest], decode: &DecodeTrace) -> Result<EngineReport> {
        let hw = self.planner.hardware().clone();

        // Pre-plan prefill-only runs: the batch composition of a pure
        // prefill stream is independent of the timeline, so the legacy
        // coalesce pass predicts it exactly and the unique uncached keys
        // can plan up front — concurrently when configured — just as the
        // legacy runtime did. The prediction is only a planning warm-up:
        // the event loop below is authoritative, and if a binding shared
        // budget sheds prefill load (something `coalesce` does not model),
        // the drifted batches simply plan on demand at dispatch. Mixed
        // runs skip the warm-up entirely (composition there can depend on
        // cross-class contention) and plan misses at dispatch.
        let mut inserted_this_run: BTreeSet<CacheKey> = BTreeSet::new();
        if decode.steps.is_empty() && !prefill.is_empty() {
            let coalesced = coalesce(
                prefill,
                self.config.batching,
                &self.config.admission,
                &hw,
                self.config.devices,
            );
            let mut missing: BTreeMap<CacheKey, AttentionWorkload> = BTreeMap::new();
            for batch in &coalesced.batches {
                let merged = batch.merged_workload();
                let key = CacheKey::of(batch.key.method, &merged, &self.config.planner);
                if !self.cache.contains(&key) {
                    missing.entry(key).or_insert(merged);
                }
            }
            let missing: Vec<(CacheKey, AttentionWorkload)> = missing.into_iter().collect();
            let tuned = self.config.planner.tiling == TilingStrategy::Search;
            let planner = &self.planner;
            let planned: Vec<(CacheKey, Result<CachedPlan>)> = if self.config.parallel_planning
                && missing.len() > 1
            {
                missing
                    .par_iter()
                    .map(|(key, workload)| (*key, plan_one(planner, key.method, workload, tuned)))
                    .collect()
            } else {
                missing
                    .iter()
                    .map(|(key, workload)| (*key, plan_one(planner, key.method, workload, tuned)))
                    .collect()
            };
            for (key, plan) in planned {
                self.cache.insert(key, plan?);
                inserted_this_run.insert(key);
            }
        }

        let budget = self.config.budget(&hw);
        let recycled = self.telemetry.take().map(Telemetry::into_event_buffer);
        let recorder = self.config.telemetry.map(|telemetry_config| {
            // Capacity hint: every work item produces a handful of events
            // (arrival, join, dispatch share, completion) plus run overhead.
            let hint = prefill.len() * 4 + decode.steps.len() * 4 + 64;
            let mut recorder = TelemetryRecorder::new(telemetry_config, hint, recycled);
            recorder.record(
                0.0,
                EventKind::RunStart {
                    policy: self.config.policy,
                    devices: self.config.devices.max(1) as u32,
                    budget_bytes: budget,
                    max_batch: self.config.batching.max_batch.max(1) as u32,
                    max_steps_per_launch: self.config.decode.effective_max_steps_per_launch()
                        as u32,
                    step_deadline_s: self.config.decode.step_deadline_s,
                },
            );
            recorder
        });
        let element_bytes = hw.element_bytes;
        let kv_element_bytes = self.config.decode.kv_element_bytes(&hw);
        let sessions: BTreeMap<u64, SessionState> = decode
            .sessions
            .iter()
            .map(|spec| {
                (
                    spec.id,
                    SessionState {
                        spec: spec.clone(),
                        admitted: false,
                        reject_reason: None,
                        completed_steps: 0,
                        rejected_steps: 0,
                        pending_steps: 0,
                        charged_bytes: 0,
                        charged_blocks: 0,
                        used_bytes: 0,
                        shared_blocks: 0,
                        prefix_group: None,
                        swapped: None,
                    },
                )
            })
            .collect();

        let mut pass = EngineRun {
            config: &self.config,
            planner: &self.planner,
            cache: &mut self.cache,
            hw,
            element_bytes,
            kv_element_bytes,
            budget,
            tuned: self.config.planner.tiling == TilingStrategy::Search,
            max_batch: self.config.batching.max_batch.max(1),
            max_steps_per_launch: self.config.decode.effective_max_steps_per_launch(),
            free_at: vec![0.0f64; self.config.devices.max(1)],
            busy_prefill: vec![0.0f64; self.config.devices.max(1)],
            busy_decode: vec![0.0f64; self.config.devices.max(1)],
            idle_gaps: vec![0usize; self.config.devices.max(1)],
            launch_counts: vec![0usize; self.config.devices.max(1)],
            open: BTreeMap::new(),
            open_prefill_members: 0,
            next_launch_id: 0,
            sessions,
            releases: Vec::new(),
            ledger: ReleaseLedger::default(),
            chunk_chains: BTreeMap::new(),
            staged: (0..self.config.devices.max(1)).map(|_| None).collect(),
            preemptions_prefill: 0,
            preemptions_decode: 0,
            tracks: self
                .config
                .tracks
                .map(|_| vec![DeviceTracks::new(); self.config.devices.max(1)]),
            estimator: BacklogEstimator::new(self.config.devices),
            kv_in_use: 0,
            kv_used: 0,
            blocks_in_use: 0,
            kv_shared_in_use: 0,
            prefix_groups: BTreeMap::new(),
            active_sessions: 0,
            prefill_charged: 0,
            inserted_this_run,
            used_keys: BTreeSet::new(),
            prefill_report: ServeReport::default(),
            decode_report: DecodeReport::default(),
            makespan_s: 0.0,
            mem_peak: MemPeak::default(),
            recorder,
        };

        // Merge the two arrival streams: prefill sorted by (arrival, id) —
        // the order the legacy coalesce pass imposed — and decode steps in
        // trace order, a prefill request winning exact-arrival ties.
        let mut prefill_sorted: Vec<&ServeRequest> = prefill.iter().collect();
        prefill_sorted.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        let mut pi = 0usize;
        let mut di = 0usize;
        while pi < prefill_sorted.len() || di < decode.steps.len() {
            let take_prefill = match (prefill_sorted.get(pi), decode.steps.get(di)) {
                (Some(p), Some(d)) => p.arrival_s <= d.arrival_s,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_prefill {
                let request = prefill_sorted[pi];
                pi += 1;
                pass.dispatch_expired(request.arrival_s)?;
                pass.apply_releases(request.arrival_s);
                pass.on_prefill(request)?;
            } else {
                let event = &decode.steps[di];
                di += 1;
                pass.dispatch_expired(event.arrival_s)?;
                pass.apply_releases(event.arrival_s);
                pass.on_decode(event);
            }
        }
        pass.flush()?;

        // Destructure the pass to end its borrows of the engine before
        // storing the sealed telemetry back on `self`.
        let EngineRun {
            mut prefill_report,
            mut decode_report,
            makespan_s,
            mem_peak,
            busy_prefill,
            busy_decode,
            idle_gaps,
            launch_counts,
            recorder,
            preemptions_prefill,
            preemptions_decode,
            tracks,
            ..
        } = pass;
        // A class's per-device busy vector is populated only when the class
        // dispatched at least one launch, so single-class runs keep the
        // other class's report exactly at its default.
        prefill_report.device_busy_s = if prefill_report.batches > 0 {
            busy_prefill.clone()
        } else {
            Vec::new()
        };
        decode_report.device_busy_s = if decode_report.launches > 0 {
            busy_decode.clone()
        } else {
            Vec::new()
        };
        let device_util: Vec<DeviceUtil> = (0..busy_prefill.len())
            .map(|d| DeviceUtil {
                busy_s: busy_prefill[d] + busy_decode[d],
                idle_gaps: idle_gaps[d],
                launches: launch_counts[d],
            })
            .collect();
        self.telemetry = recorder.map(TelemetryRecorder::finish);
        self.track_stats = tracks;

        let launches = prefill_report.batches + decode_report.launches;
        Ok(EngineReport {
            policy: self.config.policy,
            prefill: prefill_report,
            decode: decode_report,
            launches,
            makespan_s,
            mem_budget_bytes: budget,
            mem_peak_bytes: mem_peak.total,
            mem_peak_prefill_bytes: mem_peak.prefill,
            mem_peak_decode_bytes: mem_peak.decode,
            device_util,
            preemptions_prefill,
            preemptions_decode,
        })
    }
}

/// Plans one uncached prefill key: tiling via the plan-only entry point,
/// then one simulated execution. Pure function of its arguments.
pub(crate) fn plan_one(
    planner: &Planner,
    method: mas_dataflow::DataflowKind,
    workload: &AttentionWorkload,
    tuned: bool,
) -> Result<CachedPlan> {
    let planned = planner.plan(method, workload);
    let run = planner.execute(&planned, workload)?;
    Ok(CachedPlan {
        tiling: planned.tiling,
        cycles: run.report.total_cycles,
        seconds: run.report.total_seconds,
        energy_pj: run.report.total_energy_pj(),
        dram_read_bytes: run.report.dram_read_bytes,
        dram_write_bytes: run.report.dram_write_bytes,
        tuned,
    })
}

/// One not-yet-dispatched launch: same-key work items accumulating toward
/// a window, fill or feasibility dispatch.
struct OpenLaunch {
    id: u64,
    first_arrival_s: f64,
    items: Vec<WorkItem>,
    /// Shared-budget bytes charged by the members (prefill activation
    /// charges; decode items charge through their session instead).
    charged_bytes: u64,
}

/// A deferred shared-budget release, applied once virtual time passes its
/// completion instant.
enum Release {
    /// A decode session's last step completed: release its KV residency.
    Session(u64),
    /// A prefill batch completed: release its activation charge.
    PrefillBytes {
        /// The completed launch (telemetry attribution).
        launch_id: u64,
        /// Its summed member activation charge.
        bytes: u64,
    },
}

/// Live-charge ledger for shared-budget owners. Releases are saturating,
/// so a duplicated release for the same owner would silently under-report
/// occupancy instead of failing; the ledger detects the hazard — a release
/// for an owner with no live charge — so the caller can drop it (and count
/// the drop) rather than absorb it.
#[derive(Debug, Default)]
struct ReleaseLedger {
    live: BTreeSet<MemOwner>,
    drops: u64,
}

impl ReleaseLedger {
    /// Marks `owner` as holding a live charge (idempotent: growing an
    /// existing charge needs no second mark).
    fn charge(&mut self, owner: MemOwner) {
        self.live.insert(owner);
    }

    /// Consumes `owner`'s live charge. Returns `false` — counting a drop —
    /// when the owner holds none: the double-release hazard.
    fn release(&mut self, owner: MemOwner) -> bool {
        let live = self.live.remove(&owner);
        if !live {
            self.drops += 1;
        }
        live
    }

    /// Releases dropped because their owner held no live charge.
    #[cfg(test)]
    fn drops(&self) -> u64 {
        self.drops
    }
}

/// One in-flight chunked-prefill chain: the sealed batch's members and
/// launch payload, the chunk layout, and the lazy-dispatch cursor. The
/// chain id is the launch id of the chain's first chunk.
struct ChunkChain {
    requests: Vec<ServeRequest>,
    /// Summed member activation charge, released once at chain completion.
    charged_bytes: u64,
    total_batch: usize,
    /// The monolithic plan's energy, attributed to the last chunk's launch
    /// (earlier chunks carry zero) and split across members at completion.
    energy_pj: f64,
    cache_hit: bool,
    chunk_sizes: Vec<usize>,
    /// Per-chunk service seconds: the monolithic plan's seconds split
    /// proportionally to each chunk's closed-form stream demand, plus one
    /// launch-issue overhead for every chunk after the first (the modeled
    /// cost of chunking). The chain's total service is therefore the
    /// monolithic service plus `(chunks - 1)` issue overheads.
    chunk_service_s: Vec<f64>,
    /// Per-chunk four-track demands for the overlap executor; empty with
    /// the track executor off (the chunk shapes are gone by placement
    /// time, so the demands are precomputed at dispatch).
    chunk_demands: Vec<TrackDemand>,
    /// Index of the next chunk to place (`chunk_sizes.len()` = all placed).
    next_index: usize,
    /// Earliest instant the next chunk may start: the batch's ready time
    /// for chunk 0, then the previous chunk's completion.
    next_ready_s: f64,
    /// First chunk's start (member queueing ends here); set at its harden.
    first_start_s: f64,
    /// Running sum of hardened chunk service times, accumulated in chunk
    /// order (chunks harden in start order, and chain starts ascend).
    service_sum_s: f64,
    /// Chunks hardened so far; the chain finalizes at `chunk_sizes.len()`.
    done_chunks: usize,
    /// The last chunk's `(launch_id, completion_s, device)`, set at its
    /// harden — member outcomes close on it.
    last_span: Option<(u64, f64, usize)>,
}

/// A placed prefill-class launch whose effects (events, outcomes, budget
/// release, utilization tallies) are deferred until it *starts*: while
/// staged, a deadline-pressed decode launch may displace it back to the
/// queue. Device `free_at` is already advanced past the span —
/// `prev_free_s` is what displacement rolls back to.
struct StagedSpan {
    launch_id: u64,
    key: LaunchKey,
    device: usize,
    ready_s: f64,
    start_s: f64,
    service_s: f64,
    completion_s: f64,
    /// `free_at[device]` before this span was placed (displacement rolls
    /// back to it).
    prev_free_s: f64,
    /// The idle-gap verdict captured at placement (against the device's
    /// pre-placement completion), applied at harden.
    gap: bool,
    members: u32,
    total_batch: u32,
    energy_pj: f64,
    cache_hit: bool,
    cause: SealCause,
    /// What the backlog estimator is fed at harden (the merged workload's
    /// service lower bound for monolithic batches — the legacy feed — and
    /// the chunk's own service time for chunks). Always the *scalar*
    /// estimate, even when the track executor commits a shorter span, so
    /// admission stays identical across modes.
    est_service_s: f64,
    /// The scalar-model service time the span was placed with (equals
    /// `service_s` on scalar commits); a displaced span re-places with it.
    scalar_service_s: f64,
    /// The launch's four-track demand and issue overhead (`None` with the
    /// track executor off), kept so a displaced span re-places with the
    /// same profile.
    profile: Option<(TrackDemand, f64)>,
    /// The flow-shop stage spans when the track executor committed this
    /// span (`None` = scalar commit); emitted as telemetry at harden.
    stages: Option<Vec<StageSpan>>,
    /// The device's track state before this placement; displacement rolls
    /// back to it (`None` with the track executor off).
    prev_tracks: Option<DeviceTracks>,
    payload: StagedPayload,
}

/// What a prefill-class span completes into at harden.
enum StagedPayload {
    /// A monolithic prefill batch: member outcomes close on the span.
    Batch {
        requests: Vec<ServeRequest>,
        charged_bytes: u64,
    },
    /// One chunk of a chain: the chain aggregates, and finalizes when all
    /// its chunks have hardened.
    Chunk { chain: u64, index: usize },
}

/// Tracks the shared-budget high-water mark with its per-class split.
/// `pub(crate)` so telemetry replay reuses the engine's exact peak rule.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct MemPeak {
    pub(crate) total: u64,
    pub(crate) prefill: u64,
    pub(crate) decode: u64,
}

impl MemPeak {
    pub(crate) fn note(&mut self, prefill: u64, decode: u64) {
        let total = prefill.saturating_add(decode);
        if total >= self.total && total > 0 {
            self.total = total;
            self.prefill = prefill;
            self.decode = decode;
        }
    }
}

/// Per-session decode bookkeeping (admission verdict, step progress, KV
/// charge).
struct SessionState {
    spec: DecodeSessionSpec,
    admitted: bool,
    reject_reason: Option<DecodeRejectReason>,
    /// Steps that completed on a device.
    completed_steps: usize,
    /// Steps rejected after admission (e.g. deadline screening).
    rejected_steps: usize,
    /// Steps joined to a not-yet-dispatched launch.
    pending_steps: usize,
    /// Bytes currently charged against the shared budget: the max-context
    /// reservation under legacy charging, the allocated-block bytes under
    /// paged charging (grows as the session decodes).
    charged_bytes: u64,
    /// KV blocks currently allocated (paged charging only).
    charged_blocks: u64,
    /// Bytes of actual resident context tokens (prompt plus generated),
    /// used for fragmentation reporting.
    used_bytes: u64,
    /// Whole KV blocks of the session's shared prefix charged group-wide
    /// instead of privately (zero without prefix sharing). The session's
    /// own `charged_blocks`/`charged_bytes` cover only its private tail.
    shared_blocks: u64,
    /// The prefix group the session joined at admission (`None` = fully
    /// private residency).
    prefix_group: Option<u64>,
    /// Set while the session is KV-preempted: the stashed resident-token
    /// bytes and the eviction mode. The session's block charge is zero
    /// until its next step re-charges through the normal growth path.
    swapped: Option<(u64, PreemptMode)>,
}

impl SessionState {
    /// Whether every step the session will ever request has been accounted
    /// for (completed or rejected) with nothing still waiting in a launch —
    /// the point at which its KV residency can be released.
    fn finished(&self) -> bool {
        self.completed_steps + self.rejected_steps == self.spec.steps && self.pending_steps == 0
    }

    /// The session's decode step at a given context length.
    ///
    /// Callers must have validated the spec's head grouping (admission
    /// rejects invalid groupings as infeasible before building steps).
    fn step_at(&self, context_len: usize) -> DecodeStep {
        DecodeStep::new("decode", 1, self.spec.heads, context_len, self.spec.embed)
            .with_kv_heads(self.spec.kv_heads)
    }

    /// `K` plus `V` bytes of one context token at the session's shape.
    fn token_bytes(&self, element_bytes: usize) -> u64 {
        2 * self.spec.kv_heads as u64 * self.spec.embed as u64 * element_bytes as u64
    }

    /// Blocks covering `context_len` tokens at `block_tokens` per block —
    /// plain arithmetic (`DecodeStep::kv_blocks` without building a step on
    /// the per-event hot path).
    fn blocks_at(context_len: usize, block_tokens: usize) -> u64 {
        context_len.div_ceil(block_tokens.max(1)) as u64
    }

    /// `K` plus `V` bytes of one KV block at the session's shape
    /// (`DecodeStep::kv_block_bytes` without the step allocation). Clamps a
    /// zero block size to one token, like [`SessionState::blocks_at`], so a
    /// degenerate `kv_block_tokens: Some(0)` policy charges per token
    /// instead of silently disabling the budget.
    fn block_bytes(&self, block_tokens: usize, element_bytes: usize) -> u64 {
        block_tokens.max(1) as u64 * self.token_bytes(element_bytes)
    }
}

/// Group-wide bookkeeping for one shared prefix under
/// [`DecodePolicy::prefix_share`]: the whole blocks of the common prompt
/// prefix are charged against the budget once here, referenced by every
/// member session, and released when the last member releases.
struct PrefixGroupState {
    /// Member sessions currently holding the group's blocks.
    refs: usize,
    /// Shared prefix blocks charged group-wide (the longest member prefix
    /// seen so far).
    charged_blocks: u64,
    /// Budget bytes those blocks occupy.
    charged_bytes: u64,
    /// Resident-token bytes of the shared region (shared blocks are always
    /// full, so this equals `charged_bytes`; kept separate for the release
    /// event's accounting).
    used_bytes: u64,
    /// `K`+`V` bytes of one block at the group's shape — sessions whose
    /// block bytes differ cannot share and fall back to private residency.
    block_bytes: u64,
}

/// Records the decode-class charge high-water mark with its block count and
/// fragmentation snapshot, plus the high-water mark of group-shared prefix
/// bytes. `pub(crate)` so telemetry replay reuses the engine's exact peak
/// rule.
pub(crate) fn note_kv_peak(
    report: &mut DecodeReport,
    charged: u64,
    used: u64,
    blocks: u64,
    shared: u64,
) {
    if charged >= report.kv_peak_bytes && charged > 0 {
        report.kv_peak_bytes = charged;
        report.kv_peak_blocks = blocks;
        report.kv_frag_at_peak = 1.0 - used as f64 / charged as f64;
    }
    report.kv_shared_peak_bytes = report.kv_shared_peak_bytes.max(shared);
}

/// All mutable state of one engine replay. Methods mirror the legacy
/// runtimes' event-loop stages check for check; the comments note the few
/// places where the unified path adds shared-budget or cross-class
/// behavior (all of which are no-ops for single-class streams).
struct EngineRun<'a> {
    config: &'a EngineConfig,
    planner: &'a Planner,
    cache: &'a mut ScheduleCache,
    hw: HardwareConfig,
    element_bytes: usize,
    /// Bytes per stored KV element ([`DecodePolicy::kv_element_bytes`]):
    /// prices every KV residency charge and the cache-stream term of launch
    /// costing, while `element_bytes` keeps pricing activations.
    kv_element_bytes: usize,
    budget: u64,
    tuned: bool,
    max_batch: usize,
    max_steps_per_launch: usize,
    free_at: Vec<f64>,
    /// Per-device busy seconds by class. Always accounted (cheap adds);
    /// the report builder sums them into [`DeviceUtil`] and populates the
    /// per-class `device_busy_s` vectors only for classes that launched.
    busy_prefill: Vec<f64>,
    busy_decode: Vec<f64>,
    /// Per-device launch-to-launch idle-gap counts.
    idle_gaps: Vec<usize>,
    /// Per-device launch counts.
    launch_counts: Vec<usize>,
    open: BTreeMap<LaunchKey, OpenLaunch>,
    open_prefill_members: usize,
    next_launch_id: u64,
    sessions: BTreeMap<u64, SessionState>,
    releases: Vec<(f64, Release)>,
    /// Live-charge ledger guarding against double releases (see
    /// [`ReleaseLedger`]).
    ledger: ReleaseLedger,
    /// In-flight chunked-prefill chains by chain id
    /// ([`EngineConfig::chunked_prefill`]).
    chunk_chains: BTreeMap<u64, ChunkChain>,
    /// At most one staged (placed, effects-deferred, displaceable)
    /// prefill-class span per device. Always empty unless slot preemption
    /// is active ([`EngineConfig::preempt`] under
    /// [`SchedulePolicy::DecodePriority`]).
    staged: Vec<Option<StagedSpan>>,
    /// Prefill-class launches displaced by decode launches.
    preemptions_prefill: usize,
    /// Sessions whose KV charge was evicted under pool pressure.
    preemptions_decode: usize,
    /// Per-device continuous-time track clocks, `Some` only under
    /// [`EngineConfig::tracks`]. Every launch placement either commits a
    /// flow-shop schedule here or barriers the clocks behind its scalar
    /// span, so the clocks always cover everything committed to `free_at`.
    tracks: Option<Vec<DeviceTracks>>,
    estimator: BacklogEstimator,
    kv_in_use: u64,
    kv_used: u64,
    blocks_in_use: u64,
    /// Of `kv_in_use`, the bytes charged group-wide for shared prefixes
    /// (each group's blocks counted once, no matter how many members).
    kv_shared_in_use: u64,
    /// Live prefix groups under [`DecodePolicy::prefix_share`].
    prefix_groups: BTreeMap<u64, PrefixGroupState>,
    active_sessions: usize,
    prefill_charged: u64,
    inserted_this_run: BTreeSet<CacheKey>,
    used_keys: BTreeSet<CacheKey>,
    prefill_report: ServeReport,
    decode_report: DecodeReport,
    makespan_s: f64,
    mem_peak: MemPeak,
    /// The opt-in telemetry recorder. `None` (the default) keeps every
    /// recording site to a single branch, preserving the pre-telemetry
    /// replay bit for bit.
    recorder: Option<TelemetryRecorder>,
}

impl EngineRun<'_> {
    /// The batching window of a class.
    fn window_s(&self, class: WorkClass) -> f64 {
        match class {
            WorkClass::Prefill => self.config.batching.window_s,
            WorkClass::Decode => self.config.decode.window_s,
        }
    }

    /// Accounts one launch on a device's utilization tallies. Must run
    /// *before* `free_at[device]` advances to the launch's completion: the
    /// idle-gap test compares the start against the previous completion.
    fn note_device_span(&mut self, device: usize, class: WorkClass, start_s: f64, service_s: f64) {
        if self.launch_counts[device] > 0 && start_s > self.free_at[device] {
            self.idle_gaps[device] += 1;
        }
        self.launch_counts[device] += 1;
        match class {
            WorkClass::Prefill => self.busy_prefill[device] += service_s,
            WorkClass::Decode => self.busy_decode[device] += service_s,
        }
    }

    /// Attempts the overlap-aware flow-shop placement of one launch on
    /// `device` and commits whichever candidate completes earlier:
    ///
    /// * Returns `Some(placement)` — and commits it to the device's track
    ///   clocks — when the stage DAG beats the scalar span strictly.
    /// * Returns `None` — and barriers the track clocks behind
    ///   `scalar_completion_s` — when the scalar candidate wins (ties go to
    ///   scalar), the demand profile is missing, or its bound is zero.
    ///
    /// The stage durations spread the launch's *modeled* service time (not
    /// just the roofline bound) over the streams: each track's ideal
    /// seconds are stretched by `(scalar_service − issue) / bound ≥ 1`, so
    /// tiling slack and simulation overheads are conserved, and the issue
    /// overhead rides the MAC queue ahead of the first compute stage where
    /// it can hide under the first tile's DMA. With
    /// [`TrackConfig::degenerate`] the serialized DAG is provably ≥ the
    /// scalar span, so scalar always wins and replays stay bit-identical.
    fn try_track_placement(
        &mut self,
        device: usize,
        ready_s: f64,
        scalar_service_s: f64,
        scalar_completion_s: f64,
        profile: Option<&(TrackDemand, f64)>,
    ) -> Option<TrackPlacement> {
        let cfg = self.config.tracks?;
        let stage_s: Option<Vec<[f64; TRACK_COUNT]>> = profile.and_then(|(demand, issue_s)| {
            let bound = demand.stream().bound_seconds(&self.hw);
            if bound <= 0.0 {
                return None;
            }
            let stretch = ((scalar_service_s - issue_s) / bound).max(1.0);
            let mut stages: Vec<[f64; TRACK_COUNT]> = demand
                .split_stages(cfg.stages)
                .iter()
                .map(|d| {
                    let mut s = d.track_seconds(&self.hw);
                    for v in &mut s {
                        *v *= stretch;
                    }
                    s
                })
                .collect();
            if *issue_s > 0.0 {
                stages[0][TrackKind::Mac.index()] += *issue_s;
            }
            Some(stages)
        });
        let dev = &mut self.tracks.as_mut()?[device];
        if let Some(stage_s) = stage_s {
            let placement = dev.plan(ready_s, &stage_s, cfg.fused_queue);
            if placement.completion_s < scalar_completion_s {
                dev.commit(&placement);
                return Some(placement);
            }
            // Scalar wins: the launch occupies the whole device, but its
            // demand still loads specific queues — attribute it so the
            // per-track busy figures expose the workload's regime
            // (DMA-bound vs MAC-bound) on either commit path.
            let mut seconds = [0.0; TRACK_COUNT];
            for durs in &stage_s {
                for (sum, d) in seconds.iter_mut().zip(durs) {
                    *sum += d;
                }
            }
            dev.barrier(scalar_completion_s);
            dev.attribute(seconds);
            return None;
        }
        dev.barrier(scalar_completion_s);
        None
    }

    /// The earliest-free virtual device (first index on ties — the same
    /// selection both legacy runtimes used).
    fn earliest_free_device(&self) -> usize {
        self.free_at
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("times are finite"))
            .map(|(i, _)| i)
            .expect("at least one device")
    }

    /// Whether slot preemption is active: prefill-class placements stage
    /// (effects deferred, displaceable until started) only when preemption
    /// is configured *and* decode outranks prefill — the policy that says
    /// decode latency is worth displacing prefill for.
    fn staging_active(&self) -> bool {
        self.config.preempt.is_some() && self.config.policy == SchedulePolicy::DecodePriority
    }

    /// Dispatches every open launch whose window ended at or before `now`,
    /// ordered by the scheduling policy's class rank and then by launch
    /// creation order (pure creation order for a single class — the legacy
    /// order). Ready chunk-chain chunks place first: they continue work
    /// already committed to the timeline.
    fn dispatch_expired(&mut self, now_s: f64) -> Result<()> {
        // Staged spans that have started are no longer displaceable: pin
        // their effects before anything new dispatches at `now`.
        self.harden_through(now_s);
        self.dispatch_ready_chunks(now_s);
        let mut expired: Vec<(u8, u64, LaunchKey)> = self
            .open
            .iter()
            .filter(|(key, launch)| now_s >= launch.first_arrival_s + self.window_s(key.class()))
            .map(|(key, launch)| (self.config.policy.class_rank(key.class()), launch.id, *key))
            .collect();
        expired.sort_unstable();
        for (_, _, key) in expired {
            let launch = self.open.remove(&key).expect("key collected from the map");
            let ready_s = launch.first_arrival_s + self.window_s(key.class());
            self.dispatch(key, launch, ready_s, SealCause::Window, now_s)?;
        }
        Ok(())
    }

    /// Places every chunk whose chain is ready at or before `now`, in
    /// `(ready, chain id)` order. Chunk `k+1` becomes ready only at chunk
    /// `k`'s completion, so the loop walks each chain at most one virtual
    /// completion at a time — the lazy dispatch that lets decode launches
    /// slot between chunks.
    fn dispatch_ready_chunks(&mut self, now_s: f64) {
        loop {
            let next = self
                .chunk_chains
                .iter()
                .filter(|(_, chain)| {
                    chain.next_index < chain.chunk_sizes.len() && chain.next_ready_s <= now_s
                })
                .map(|(id, chain)| (chain.next_ready_s, *id))
                .min_by(|a, b| a.partial_cmp(b).expect("ready times are finite"));
            let Some((_, chain_id)) = next else { return };
            if self.staging_active() {
                // With preemption on, keep the committed horizon to one
                // running span plus one displaceable staged span per
                // device: placing another chunk would harden the
                // incumbent while it is still displaceable, walling
                // decode launches behind committed prefill work. Defer —
                // the chain stays ready and places once the incumbent
                // starts (hardens) or is displaced.
                let device = self.earliest_free_device();
                if let Some(span) = self.staged[device].as_ref() {
                    if span.start_s > now_s {
                        return;
                    }
                }
            }
            self.place_chunk(chain_id, SealCause::Chain);
        }
    }

    /// Places one chunk of a chain on the earliest-free device. `cause` is
    /// the batch's real seal cause for chunk 0 and [`SealCause::Chain`]
    /// for every later chunk.
    fn place_chunk(&mut self, chain_id: u64, cause: SealCause) {
        let chain = self.chunk_chains.get(&chain_id).expect("chain exists");
        let index = chain.next_index;
        let of = chain.chunk_sizes.len();
        let service_s = chain.chunk_service_s[index];
        let ready_s = chain.next_ready_s;
        let members = chain.requests.len() as u32;
        let total_batch = chain.total_batch as u32;
        // Member outcomes split the plan's energy via the *last* chunk's
        // launch record; earlier chunks carry zero.
        let energy_pj = if index + 1 == of {
            chain.energy_pj
        } else {
            0.0
        };
        let cache_hit = chain.cache_hit;
        // The chunk's track profile (empty with the executor off). Chunks
        // after the first carry the one launch-issue overhead their service
        // time was charged with.
        let profile = chain.chunk_demands.get(index).map(|d| {
            let issue_s = if index > 0 {
                self.hw.issue_overhead_cycles as f64 / self.hw.frequency_hz
            } else {
                0.0
            };
            (*d, issue_s)
        });
        let key = LaunchKey::PrefillChunk(ChunkKey {
            chain: chain_id,
            index: index as u32,
            of: of as u32,
        });
        // Chunk 0 reuses the chain id (it *is* the sealed batch's launch);
        // later chunks draw fresh ids from the shared launch-id space.
        let launch_id = if index == 0 {
            chain_id
        } else {
            let id = self.next_launch_id;
            self.next_launch_id += 1;
            id
        };
        self.chunk_chains
            .get_mut(&chain_id)
            .expect("chain exists")
            .next_index = index + 1;
        let completion_s = self.place_prefill_span(
            launch_id,
            key,
            ready_s,
            service_s,
            members,
            total_batch,
            energy_pj,
            cache_hit,
            cause,
            service_s,
            profile,
            StagedPayload::Chunk {
                chain: chain_id,
                index,
            },
        );
        // On the immediate (non-staging) path the last chunk hardens inside
        // `place_prefill_span`, finalizing and removing the chain — the
        // cursor update is moot then.
        if let Some(chain) = self.chunk_chains.get_mut(&chain_id) {
            chain.next_ready_s = completion_s;
        }
    }

    /// Places one prefill-class span on the earliest-free device and either
    /// hardens it immediately (the legacy path, bit-identical with
    /// preemption off) or stages it for possible displacement. Returns the
    /// span's completion instant.
    #[allow(clippy::too_many_arguments)]
    fn place_prefill_span(
        &mut self,
        launch_id: u64,
        key: LaunchKey,
        ready_s: f64,
        service_s: f64,
        members: u32,
        total_batch: u32,
        energy_pj: f64,
        cache_hit: bool,
        cause: SealCause,
        est_service_s: f64,
        profile: Option<(TrackDemand, f64)>,
        payload: StagedPayload,
    ) -> f64 {
        let staging = self.staging_active();
        let device = self.earliest_free_device();
        if staging {
            if let Some(span) = self.staged[device].as_ref() {
                // One staged span per device: pin the incumbent (its slot
                // is committed — the new span starts after it) in global
                // start order.
                let limit = span.start_s;
                self.harden_through(limit);
            }
        }
        let prev_free_s = self.free_at[device];
        let scalar_start_s = prev_free_s.max(ready_s);
        let scalar_completion_s = scalar_start_s + service_s;
        let mut start_s = scalar_start_s;
        let mut completion_s = scalar_completion_s;
        let mut span_service_s = service_s;
        let mut stages = None;
        let prev_tracks = self.tracks.as_ref().map(|t| t[device]);
        if self.tracks.is_some() {
            if let Some(p) = self.try_track_placement(
                device,
                ready_s,
                service_s,
                scalar_completion_s,
                profile.as_ref(),
            ) {
                start_s = p.start_s;
                completion_s = p.completion_s;
                span_service_s = completion_s - start_s;
                stages = Some(p.stages);
            }
        }
        let gap = self.launch_counts[device] > 0 && start_s > prev_free_s;
        self.free_at[device] = completion_s;
        let span = StagedSpan {
            launch_id,
            key,
            device,
            ready_s,
            start_s,
            service_s: span_service_s,
            completion_s,
            prev_free_s,
            gap,
            members,
            total_batch,
            energy_pj,
            cache_hit,
            cause,
            est_service_s,
            scalar_service_s: service_s,
            profile,
            stages,
            prev_tracks,
            payload,
        };
        if staging {
            self.staged[device] = Some(span);
        } else {
            self.harden_span(span);
        }
        completion_s
    }

    /// Hardens every staged span whose start is at or before `limit_s`, in
    /// ascending start order. Global start order keeps per-device event
    /// order equal to start order and chunk events in chain order.
    fn harden_through(&mut self, limit_s: f64) {
        loop {
            let next = self
                .staged
                .iter()
                .enumerate()
                .filter_map(|(d, slot)| slot.as_ref().map(|span| (span.start_s, d)))
                .min_by(|a, b| a.partial_cmp(b).expect("start times are finite"));
            let Some((start_s, device)) = next else {
                return;
            };
            if start_s > limit_s {
                return;
            }
            let span = self.staged[device].take().expect("selected above");
            self.harden_span(span);
        }
    }

    /// Applies a placed span's deferred effects: utilization tallies,
    /// makespans, the launch event, and the payload's completions. The
    /// effect order matches the legacy dispatch path exactly, so the
    /// immediate (preemption-off) path is bit-identical to it.
    fn harden_span(&mut self, span: StagedSpan) {
        let device = span.device;
        if span.gap {
            self.idle_gaps[device] += 1;
        }
        self.launch_counts[device] += 1;
        self.busy_prefill[device] += span.service_s;
        self.prefill_report.makespan_s = self.prefill_report.makespan_s.max(span.completion_s);
        self.makespan_s = self.makespan_s.max(span.completion_s);
        self.prefill_report.batches += 1;
        self.estimator.feed(span.ready_s, span.est_service_s);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                span.start_s,
                EventKind::LaunchDispatched {
                    launch_id: span.launch_id,
                    key: span.key,
                    device: device as u32,
                    ready_s: span.ready_s,
                    start_s: span.start_s,
                    completion_s: span.completion_s,
                    service_s: span.service_s,
                    members: span.members,
                    total_batch: span.total_batch,
                    energy_pj: span.energy_pj,
                    cache_hit: span.cache_hit,
                    cause: span.cause,
                },
            );
            if let Some(stages) = span.stages.as_ref() {
                for s in stages {
                    recorder.record(
                        s.start_s,
                        EventKind::LaunchStage {
                            launch_id: span.launch_id,
                            device: device as u32,
                            track: s.track,
                            stage: s.stage as u32,
                            start_s: s.start_s,
                            end_s: s.end_s,
                        },
                    );
                }
            }
        }
        match span.payload {
            StagedPayload::Batch {
                requests,
                charged_bytes,
            } => {
                let total = f64::from(span.total_batch);
                for request in &requests {
                    let latency_s = span.completion_s - request.arrival_s;
                    let deadline_met = request.deadline_s.is_none_or(|d| latency_s <= d);
                    let energy_pj = span.energy_pj * request.workload.batch as f64 / total;
                    self.prefill_report.total_energy_pj += energy_pj;
                    self.prefill_report.outcomes.push(RequestOutcome {
                        id: request.id,
                        workload: request.workload.name.clone(),
                        method: request.method,
                        arrival_s: request.arrival_s,
                        start_s: span.start_s,
                        completion_s: span.completion_s,
                        service_s: span.service_s,
                        deadline_s: request.deadline_s,
                        deadline_met,
                        energy_pj,
                        cache_hit: span.cache_hit,
                        batch_id: span.launch_id,
                        device,
                    });
                    if let Some(recorder) = self.recorder.as_mut() {
                        recorder.record(
                            span.completion_s,
                            EventKind::PrefillCompleted {
                                id: request.id,
                                launch_id: span.launch_id,
                            },
                        );
                        recorder.observe_latency(WorkClass::Prefill, latency_s);
                    }
                }
                if charged_bytes > 0 {
                    self.ledger.charge(MemOwner::PrefillLaunch(span.launch_id));
                    self.releases.push((
                        span.completion_s,
                        Release::PrefillBytes {
                            launch_id: span.launch_id,
                            bytes: charged_bytes,
                        },
                    ));
                }
            }
            StagedPayload::Chunk { chain, index } => {
                let c = self.chunk_chains.get_mut(&chain).expect("chain exists");
                if index == 0 {
                    c.first_start_s = span.start_s;
                }
                c.service_sum_s += span.service_s;
                c.done_chunks += 1;
                if index + 1 == c.chunk_sizes.len() {
                    c.last_span = Some((span.launch_id, span.completion_s, device));
                }
                if c.done_chunks == c.chunk_sizes.len() {
                    self.finalize_chain(chain);
                }
            }
        }
    }

    /// Completes a chunked-prefill chain once every chunk has hardened:
    /// member outcomes span the whole chain (queueing ends at the first
    /// chunk's start, service sums over every chunk, the last chunk's
    /// completion and device close the outcome, the chain id is the batch
    /// id) and the chain's activation charge releases exactly once.
    fn finalize_chain(&mut self, chain_id: u64) {
        let chain = self.chunk_chains.remove(&chain_id).expect("chain exists");
        let (last_launch_id, completion_s, device) = chain
            .last_span
            .expect("last chunk hardened before finalize");
        let total = chain.total_batch as f64;
        for request in &chain.requests {
            let latency_s = completion_s - request.arrival_s;
            let deadline_met = request.deadline_s.is_none_or(|d| latency_s <= d);
            let energy_pj = chain.energy_pj * request.workload.batch as f64 / total;
            self.prefill_report.total_energy_pj += energy_pj;
            self.prefill_report.outcomes.push(RequestOutcome {
                id: request.id,
                workload: request.workload.name.clone(),
                method: request.method,
                arrival_s: request.arrival_s,
                start_s: chain.first_start_s,
                completion_s,
                service_s: chain.service_sum_s,
                deadline_s: request.deadline_s,
                deadline_met,
                energy_pj,
                cache_hit: chain.cache_hit,
                batch_id: chain_id,
                device,
            });
            if let Some(recorder) = self.recorder.as_mut() {
                // The completion event references the last chunk's launch
                // (the one whose completion closes the outcome); replay
                // re-derives the chain id from its chunk key.
                recorder.record(
                    completion_s,
                    EventKind::PrefillCompleted {
                        id: request.id,
                        launch_id: last_launch_id,
                    },
                );
                recorder.observe_latency(WorkClass::Prefill, latency_s);
            }
        }
        if chain.charged_bytes > 0 {
            self.ledger.charge(MemOwner::PrefillLaunch(chain_id));
            self.releases.push((
                completion_s,
                Release::PrefillBytes {
                    launch_id: chain_id,
                    bytes: chain.charged_bytes,
                },
            ));
        }
    }

    /// Applies every deferred release whose completion instant has passed,
    /// in the order the releases were scheduled.
    fn apply_releases(&mut self, now_s: f64) {
        let releases = std::mem::take(&mut self.releases);
        let mut kept = Vec::with_capacity(releases.len());
        for (release_s, release) in releases {
            if release_s > now_s {
                kept.push((release_s, release));
                continue;
            }
            match release {
                Release::Session(session_id) => {
                    // Double-release guard: a session with no live charge
                    // has already released — applying the duplicate would
                    // silently under-report through the saturating
                    // subtractions below, so it is dropped and counted.
                    if !self.ledger.release(MemOwner::Session(session_id)) {
                        debug_assert!(false, "duplicate release for session {session_id}");
                        if let Some(recorder) = self.recorder.as_mut() {
                            recorder.note_release_drop();
                        }
                        continue;
                    }
                    let s = self.sessions.get_mut(&session_id).expect("session exists");
                    if let Some(recorder) = self.recorder.as_mut() {
                        // Recorded before zeroing so the event carries the
                        // exact released deltas.
                        recorder.record(
                            now_s,
                            EventKind::BudgetRelease {
                                owner: MemOwner::Session(session_id),
                                bytes: s.charged_bytes,
                                used_bytes: s.used_bytes,
                                blocks: s.charged_blocks,
                                scheduled_s: release_s,
                            },
                        );
                    }
                    self.kv_in_use = self.kv_in_use.saturating_sub(s.charged_bytes);
                    self.kv_used = self.kv_used.saturating_sub(s.used_bytes);
                    self.blocks_in_use = self.blocks_in_use.saturating_sub(s.charged_blocks);
                    s.charged_bytes = 0;
                    s.charged_blocks = 0;
                    s.used_bytes = 0;
                    self.active_sessions = self.active_sessions.saturating_sub(1);
                    // Refcount semantics for the shared prefix: the group's
                    // blocks are released only with its last member.
                    if let Some(g) = s.prefix_group.take() {
                        s.shared_blocks = 0;
                        let gs = self.prefix_groups.get_mut(&g).expect("group exists");
                        gs.refs -= 1;
                        if gs.refs == 0 {
                            let gs = self.prefix_groups.remove(&g).expect("present");
                            let live = self.ledger.release(MemOwner::PrefixGroup(g));
                            debug_assert!(live, "duplicate release for prefix group {g}");
                            if let Some(recorder) = self.recorder.as_mut() {
                                recorder.record(
                                    now_s,
                                    EventKind::BudgetRelease {
                                        owner: MemOwner::PrefixGroup(g),
                                        bytes: gs.charged_bytes,
                                        used_bytes: gs.used_bytes,
                                        blocks: gs.charged_blocks,
                                        scheduled_s: release_s,
                                    },
                                );
                            }
                            self.kv_in_use = self.kv_in_use.saturating_sub(gs.charged_bytes);
                            self.kv_used = self.kv_used.saturating_sub(gs.used_bytes);
                            self.blocks_in_use =
                                self.blocks_in_use.saturating_sub(gs.charged_blocks);
                            self.kv_shared_in_use =
                                self.kv_shared_in_use.saturating_sub(gs.charged_bytes);
                        }
                    }
                }
                Release::PrefillBytes { launch_id, bytes } => {
                    if !self.ledger.release(MemOwner::PrefillLaunch(launch_id)) {
                        debug_assert!(false, "duplicate release for prefill launch {launch_id}");
                        if let Some(recorder) = self.recorder.as_mut() {
                            recorder.note_release_drop();
                        }
                        continue;
                    }
                    if let Some(recorder) = self.recorder.as_mut() {
                        recorder.record(
                            now_s,
                            EventKind::BudgetRelease {
                                owner: MemOwner::PrefillLaunch(launch_id),
                                bytes,
                                used_bytes: 0,
                                blocks: 0,
                                scheduled_s: release_s,
                            },
                        );
                    }
                    self.prefill_charged = self.prefill_charged.saturating_sub(bytes);
                }
            }
        }
        self.releases = kept;
    }

    /// Handles one prefill arrival: admission (backlog, estimated queue
    /// delay, shared budget), feasibility-preserving join, fill dispatch.
    fn on_prefill(&mut self, request: &ServeRequest) -> Result<()> {
        let now_s = request.arrival_s;
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                now_s,
                EventKind::PrefillArrival {
                    id: request.id,
                    workload: request.workload.name.clone(),
                    method: request.method,
                    batch: request.workload.batch as u32,
                    deadline_s: request.deadline_s,
                },
            );
        }

        // Admission against the post-expiry backlog: open prefill members
        // plus the estimated delay of the already-dispatched launch queue
        // (which, on the unified timeline, includes decode launches).
        if let Err(reason) = self.config.admission.admit(
            request.method,
            &request.workload,
            request.deadline_s,
            self.open_prefill_members,
            self.estimator.queue_delay_s(now_s),
            &self.hw,
        ) {
            self.prefill_report.rejected.push(RejectedRequest {
                id: request.id,
                workload: request.workload.name.clone(),
                arrival_s: now_s,
                reason,
            });
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    now_s,
                    EventKind::PrefillRejected {
                        id: request.id,
                        reason,
                    },
                );
            }
            return Ok(());
        }

        // Shared-budget admission: the request's activation footprint (its
        // four Q/K/V/O operands) must fit beside the resident decode KV.
        let charge = 4 * request.workload.operand_bytes(self.element_bytes);
        if self
            .prefill_charged
            .saturating_add(self.kv_in_use)
            .saturating_add(charge)
            > self.budget
        {
            self.prefill_report.rejected.push(RejectedRequest {
                id: request.id,
                workload: request.workload.name.clone(),
                arrival_s: now_s,
                reason: RejectReason::MemoryPressure,
            });
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    now_s,
                    EventKind::PrefillRejected {
                        id: request.id,
                        reason: RejectReason::MemoryPressure,
                    },
                );
            }
            return Ok(());
        }

        // Join (or open) the launch for this key. If the merged workload
        // would outgrow the device, dispatch the current batch first —
        // per-request feasibility is preserved under merging.
        let batch_key = BatchKey::of(request);
        let key = LaunchKey::Prefill(batch_key);
        if let Some(launch) = self.open.get(&key) {
            let existing: usize = launch
                .items
                .iter()
                .map(|item| match item {
                    WorkItem::Prefill(r) => r.workload.batch,
                    WorkItem::Decode(_) => unreachable!("prefill launches hold prefill items"),
                })
                .sum();
            let prospective = AttentionWorkload::new(
                "prospective",
                existing + request.workload.batch,
                batch_key.heads,
                batch_key.seq_len,
                batch_key.embed,
            );
            if !workload_is_feasible(batch_key.method, &prospective, &self.hw) {
                let launch = self.open.remove(&key).expect("present");
                self.dispatch(key, launch, now_s, SealCause::Feasibility, now_s)?;
            }
        }
        let next_id = self.next_launch_id;
        let mut created = false;
        let launch = self.open.entry(key).or_insert_with(|| {
            created = true;
            OpenLaunch {
                id: next_id,
                first_arrival_s: now_s,
                items: Vec::new(),
                charged_bytes: 0,
            }
        });
        launch.items.push(WorkItem::Prefill(request.clone()));
        launch.charged_bytes += charge;
        let full = launch.items.len() >= self.max_batch;
        let (launch_id, members) = (launch.id, launch.items.len());
        if created {
            self.next_launch_id += 1;
        }
        self.open_prefill_members += 1;
        self.prefill_charged += charge;
        self.mem_peak.note(self.prefill_charged, self.kv_in_use);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                now_s,
                EventKind::PrefillJoin {
                    launch_id,
                    members: members as u32,
                    charged_bytes: charge,
                },
            );
        }
        if full {
            let launch = self.open.remove(&key).expect("just inserted");
            self.dispatch(key, launch, now_s, SealCause::Fill, now_s)?;
        }
        Ok(())
    }

    /// Handles one decode-step arrival: session admission at first sight
    /// (against the shared budget), deadline screening, paged block growth,
    /// launch join, fill dispatch.
    #[allow(clippy::too_many_lines)]
    fn on_decode(&mut self, event: &DecodeStepEvent) {
        let now_s = event.arrival_s;
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                now_s,
                EventKind::DecodeArrival {
                    session_id: event.session_id,
                    step_index: event.step_index as u32,
                },
            );
        }

        // Admit the session at its first seen step (steps of malformed
        // traces referencing unknown sessions are rejected, not a panic).
        let Some(session) = self.sessions.get_mut(&event.session_id) else {
            self.decode_report.rejected.push(RejectedDecodeStep {
                session_id: event.session_id,
                step_index: event.step_index,
                arrival_s: now_s,
                reason: DecodeRejectReason::UnknownSession,
            });
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    now_s,
                    EventKind::DecodeStepRejected {
                        session_id: event.session_id,
                        step_index: event.step_index as u32,
                        reason: DecodeRejectReason::UnknownSession,
                    },
                );
            }
            return;
        };
        let context_len = session.spec.prompt_len + event.step_index + 1;
        if !session.admitted && session.reject_reason.is_none() {
            let spec = &session.spec;
            let grouping_valid =
                spec.kv_heads > 0 && spec.kv_heads <= spec.heads && spec.heads % spec.kv_heads == 0;
            // Cross-session prefix sharing needs the policy switch, a
            // declared group, paged charging, and a group whose block shape
            // matches (a mismatched shape falls back to private residency
            // rather than mixing block geometries in one group).
            let sharing = match (self.config.decode.kv_block_tokens, spec.prefix_group) {
                (Some(bt), Some(g)) if self.config.decode.prefix_share && grouping_valid => {
                    let block_bytes = session.block_bytes(bt, self.kv_element_bytes);
                    match self.prefix_groups.get(&g) {
                        Some(gs) if gs.block_bytes != block_bytes => None,
                        _ => Some((bt, g, block_bytes)),
                    }
                }
                _ => None,
            };
            // Shared prefix blocks already charged group-wide are free for
            // this session; only the group's growth plus the private tail
            // hit the budget.
            let (shared_blocks, group_delta_blocks) = match sharing {
                Some((bt, g, _)) => {
                    let shared = (spec.shared_prefix_len.min(spec.prompt_len) / bt.max(1)) as u64;
                    let already = self.prefix_groups.get(&g).map_or(0, |gs| gs.charged_blocks);
                    (shared, shared.saturating_sub(already))
                }
                None => (0, 0),
            };
            // Initial charge: worst-case max context under legacy charging,
            // the first step's blocks under paged charging (minus the
            // blocks the prefix group already holds).
            let (initial_bytes, initial_blocks) = if !grouping_valid {
                (0, 0)
            } else {
                match self.config.decode.kv_block_tokens {
                    None => (
                        spec.max_context() as u64 * session.token_bytes(self.kv_element_bytes),
                        0,
                    ),
                    Some(bt) => {
                        let blocks = SessionState::blocks_at(context_len, bt)
                            .saturating_sub(shared_blocks)
                            + group_delta_blocks;
                        (
                            blocks * session.block_bytes(bt, self.kv_element_bytes),
                            blocks,
                        )
                    }
                }
            };
            // `step_at` requires a valid grouping; `||` short-circuits past
            // it for malformed specs. The budget check sees resident
            // prefill activations too — the cross-class squeeze.
            let verdict = if !grouping_valid
                || !decode_step_fits_with_kv(
                    &session.step_at(session.spec.max_context()),
                    self.config.decode.kv_tile_rows,
                    &self.hw,
                    self.kv_element_bytes,
                ) {
                Some(DecodeRejectReason::InfeasibleSession)
            } else if self
                .kv_in_use
                .saturating_add(self.prefill_charged)
                .saturating_add(initial_bytes)
                > self.budget
            {
                Some(DecodeRejectReason::KvBudgetExceeded)
            } else if self
                .config
                .decode
                .max_sessions
                .is_some_and(|limit| self.active_sessions >= limit)
            {
                Some(DecodeRejectReason::SessionLimit)
            } else {
                None
            };
            match verdict {
                Some(reason) => {
                    session.reject_reason = Some(reason);
                    self.decode_report
                        .rejected_sessions
                        .push((event.session_id, reason));
                    if let Some(recorder) = self.recorder.as_mut() {
                        recorder.record(
                            now_s,
                            EventKind::SessionRejected {
                                session_id: event.session_id,
                                reason,
                            },
                        );
                    }
                }
                None => {
                    session.admitted = true;
                    self.ledger.charge(MemOwner::Session(event.session_id));
                    // The session itself is charged only its private tail;
                    // the group's growth is charged on the group entry.
                    let private_blocks = initial_blocks - group_delta_blocks;
                    let token_bytes = session.token_bytes(self.kv_element_bytes);
                    let (private_bytes, delta_bytes) = match sharing {
                        Some((_, _, block_bytes)) => (
                            private_blocks * block_bytes,
                            group_delta_blocks * block_bytes,
                        ),
                        None => (initial_bytes, 0),
                    };
                    session.charged_bytes = private_bytes;
                    session.charged_blocks = private_blocks;
                    // The prompt is resident from admission; each joined
                    // step adds one token below. Shared-prefix tokens are
                    // resident on the group, not the session.
                    let shared_tokens = match sharing {
                        Some((bt, _, _)) => shared_blocks * bt as u64,
                        None => 0,
                    };
                    session.used_bytes =
                        (session.spec.prompt_len as u64 - shared_tokens) * token_bytes;
                    self.kv_in_use += private_bytes + delta_bytes;
                    self.kv_used += session.used_bytes + delta_bytes;
                    self.blocks_in_use += private_blocks + group_delta_blocks;
                    self.active_sessions += 1;
                    let mut group_refs = 0u32;
                    if let Some((_, g, block_bytes)) = sharing {
                        session.shared_blocks = shared_blocks;
                        session.prefix_group = Some(g);
                        self.ledger.charge(MemOwner::PrefixGroup(g));
                        let gs = self.prefix_groups.entry(g).or_insert(PrefixGroupState {
                            refs: 0,
                            charged_blocks: 0,
                            charged_bytes: 0,
                            used_bytes: 0,
                            block_bytes,
                        });
                        gs.refs += 1;
                        gs.charged_blocks += group_delta_blocks;
                        gs.charged_bytes += delta_bytes;
                        // Shared blocks hold only full prompt tokens.
                        gs.used_bytes += delta_bytes;
                        group_refs = gs.refs as u32;
                        self.kv_shared_in_use += delta_bytes;
                        self.decode_report.shared_sessions += 1;
                    }
                    note_kv_peak(
                        &mut self.decode_report,
                        self.kv_in_use,
                        self.kv_used,
                        self.blocks_in_use,
                        self.kv_shared_in_use,
                    );
                    self.mem_peak.note(self.prefill_charged, self.kv_in_use);
                    self.decode_report.sessions_admitted += 1;
                    if let Some(recorder) = self.recorder.as_mut() {
                        recorder.record(
                            now_s,
                            EventKind::SessionOpen {
                                session_id: event.session_id,
                                prompt_len: session.spec.prompt_len as u32,
                                charged_bytes: private_bytes,
                                used_bytes: session.used_bytes,
                                blocks: private_blocks,
                            },
                        );
                        if let Some((_, g, _)) = sharing {
                            recorder.record(
                                now_s,
                                EventKind::PrefixShared {
                                    group: g,
                                    session_id: event.session_id,
                                    delta_bytes,
                                    delta_blocks: group_delta_blocks,
                                    used_delta_bytes: delta_bytes,
                                    refs: group_refs,
                                },
                            );
                        }
                    }
                }
            }
        }
        let session = self.sessions.get_mut(&event.session_id).expect("present");
        if !session.admitted {
            let reason = session
                .reject_reason
                .expect("unadmitted sessions carry a reason");
            self.decode_report.rejected.push(RejectedDecodeStep {
                session_id: event.session_id,
                step_index: event.step_index,
                arrival_s: now_s,
                reason,
            });
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    now_s,
                    EventKind::DecodeStepRejected {
                        session_id: event.session_id,
                        step_index: event.step_index as u32,
                        reason,
                    },
                );
            }
            return;
        }

        // Per-step deadline screening at this step's context length.
        let (heads, kv_heads, embed) = (
            session.spec.heads,
            session.spec.kv_heads,
            session.spec.embed,
        );
        if let Some(deadline) = self.config.decode.step_deadline_s {
            let step = session.step_at(context_len);
            if deadline < decode_step_lower_bound_s_with_kv(&step, &self.hw, self.kv_element_bytes)
            {
                session.rejected_steps += 1;
                // A session whose every remaining step is screened out
                // must still release its KV residency.
                if session.finished() {
                    self.releases
                        .push((now_s, Release::Session(event.session_id)));
                }
                self.decode_report.rejected.push(RejectedDecodeStep {
                    session_id: event.session_id,
                    step_index: event.step_index,
                    arrival_s: now_s,
                    reason: DecodeRejectReason::DeadlineImpossible,
                });
                if let Some(recorder) = self.recorder.as_mut() {
                    recorder.record(
                        now_s,
                        EventKind::DecodeStepRejected {
                            session_id: event.session_id,
                            step_index: event.step_index as u32,
                            reason: DecodeRejectReason::DeadlineImpossible,
                        },
                    );
                }
                return;
            }
        }
        // A swapped-out session resumes at its next surviving step: `Hold`
        // restores the stashed resident bytes from host memory off the
        // device timeline; `Recompute` additionally re-prices the evicted
        // context as prefill-chunk work folded into this step's launch.
        // Charged blocks re-grow through the normal paged path below.
        // (`note_kv_peak` is deliberately not called here: restoring cannot
        // exceed the pre-eviction peak.)
        let mut recompute_tokens = 0usize;
        if let Some((stashed_used, mode)) = session.swapped.take() {
            session.used_bytes = stashed_used;
            self.kv_used += stashed_used;
            if mode == PreemptMode::Recompute {
                recompute_tokens = context_len.saturating_sub(1);
            }
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    now_s,
                    EventKind::SessionResumed {
                        session_id: event.session_id,
                        restored_used_bytes: stashed_used,
                        recompute_tokens: recompute_tokens as u32,
                    },
                );
            }
        }
        // Paged charging: grow the session's block allocation to cover this
        // step's context. Growth runs *after* the deadline screen — a
        // screened step generates no token, so it must not keep a block. A
        // step that cannot get its block from the shared pool (now also
        // drained by prefill activations) is shed as a pool overflow while
        // the session keeps its residency.
        if let Some(bt) = self.config.decode.kv_block_tokens {
            // A sharing session grows only its private tail: the group's
            // shared prefix blocks stay charged once, group-wide.
            let needed =
                SessionState::blocks_at(context_len, bt).saturating_sub(session.shared_blocks);
            if needed > session.charged_blocks {
                let delta_blocks = needed - session.charged_blocks;
                let delta_bytes = delta_blocks * session.block_bytes(bt, self.kv_element_bytes);
                let over_budget = |engine: &Self| {
                    engine
                        .kv_in_use
                        .saturating_add(engine.prefill_charged)
                        .saturating_add(delta_bytes)
                        > engine.budget
                };
                let mut over = over_budget(self);
                // KV preemption: before shedding the step, try evicting
                // idle sessions' residency to make room for the growth.
                if over && self.config.preempt.is_some() {
                    self.try_evict_for(delta_bytes, event.session_id, now_s);
                    over = over_budget(self);
                }
                let session = self.sessions.get_mut(&event.session_id).expect("present");
                if over {
                    session.rejected_steps += 1;
                    if session.finished() {
                        self.releases
                            .push((now_s, Release::Session(event.session_id)));
                    }
                    self.decode_report.rejected.push(RejectedDecodeStep {
                        session_id: event.session_id,
                        step_index: event.step_index,
                        arrival_s: now_s,
                        reason: DecodeRejectReason::KvPoolExhausted,
                    });
                    if let Some(recorder) = self.recorder.as_mut() {
                        recorder.record(
                            now_s,
                            EventKind::DecodeStepRejected {
                                session_id: event.session_id,
                                step_index: event.step_index as u32,
                                reason: DecodeRejectReason::KvPoolExhausted,
                            },
                        );
                    }
                    return;
                }
                session.charged_bytes += delta_bytes;
                session.charged_blocks = needed;
                self.kv_in_use += delta_bytes;
                self.blocks_in_use += delta_blocks;
                note_kv_peak(
                    &mut self.decode_report,
                    self.kv_in_use,
                    self.kv_used,
                    self.blocks_in_use,
                    self.kv_shared_in_use,
                );
                self.mem_peak.note(self.prefill_charged, self.kv_in_use);
                if let Some(recorder) = self.recorder.as_mut() {
                    recorder.record(
                        now_s,
                        EventKind::KvGrow {
                            session_id: event.session_id,
                            delta_bytes,
                            delta_blocks,
                        },
                    );
                }
            }
        }
        let session = self.sessions.get_mut(&event.session_id).expect("present");
        session.pending_steps += 1;
        // The step's token becomes resident context.
        let token = session.token_bytes(self.kv_element_bytes);
        session.used_bytes += token;
        self.kv_used += token;
        note_kv_peak(
            &mut self.decode_report,
            self.kv_in_use,
            self.kv_used,
            self.blocks_in_use,
            self.kv_shared_in_use,
        );

        // Join (or open) the launch for this shape key.
        let key = LaunchKey::Decode(DecodeKey {
            heads,
            kv_heads,
            embed,
        });
        let next_id = self.next_launch_id;
        let mut created = false;
        let launch = self.open.entry(key).or_insert_with(|| {
            created = true;
            OpenLaunch {
                id: next_id,
                first_arrival_s: now_s,
                items: Vec::new(),
                charged_bytes: 0,
            }
        });
        launch.items.push(WorkItem::Decode(DecodeStepItem {
            session_id: event.session_id,
            step_index: event.step_index,
            context_len,
            arrival_s: now_s,
            recompute_tokens,
        }));
        let full =
            launch.items.len() >= self.max_steps_per_launch || self.config.decode.window_s == 0.0;
        let (launch_id, members) = (launch.id, launch.items.len());
        if created {
            self.next_launch_id += 1;
        }
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                now_s,
                EventKind::DecodeJoin {
                    launch_id,
                    session_id: event.session_id,
                    step_index: event.step_index as u32,
                    context_len: context_len as u32,
                    members: members as u32,
                    token_bytes: token,
                },
            );
        }
        if full {
            let launch = self.open.remove(&key).expect("just inserted");
            self.dispatch_decode(
                DecodeKey {
                    heads,
                    kv_heads,
                    embed,
                },
                launch,
                now_s,
                SealCause::Fill,
                now_s,
            );
        }
    }

    /// Dispatches one launch of either class. `now_s` is the stream
    /// instant of the dispatch ([`f64::INFINITY`] at flush): decode
    /// launches use it to judge whether a staged span has started yet.
    fn dispatch(
        &mut self,
        key: LaunchKey,
        launch: OpenLaunch,
        ready_s: f64,
        cause: SealCause,
        now_s: f64,
    ) -> Result<()> {
        match key {
            LaunchKey::Prefill(batch_key) => {
                self.dispatch_prefill(batch_key, launch, ready_s, cause)
            }
            LaunchKey::Decode(decode_key) => {
                self.dispatch_decode(decode_key, launch, ready_s, cause, now_s);
                Ok(())
            }
            LaunchKey::PrefillChunk(_) => {
                unreachable!("chunk launches are placed by their chain, never opened")
            }
        }
    }

    /// Dispatches one prefill micro-batch: plan (cached), launch on the
    /// earliest-free device, record per-request outcomes, schedule the
    /// activation-charge release at completion.
    fn dispatch_prefill(
        &mut self,
        batch_key: BatchKey,
        launch: OpenLaunch,
        ready_s: f64,
        cause: SealCause,
    ) -> Result<()> {
        let OpenLaunch {
            id: launch_id,
            items,
            charged_bytes,
            ..
        } = launch;
        let requests: Vec<ServeRequest> = items
            .into_iter()
            .map(|item| match item {
                WorkItem::Prefill(request) => request,
                WorkItem::Decode(_) => unreachable!("prefill launches hold prefill items"),
            })
            .collect();
        let total_batch: usize = requests.iter().map(|r| r.workload.batch).sum();
        let merged = AttentionWorkload::new(
            format!(
                "serve-batch-{}x{}h{}n{}e{}",
                requests.len(),
                total_batch,
                batch_key.heads,
                batch_key.seq_len,
                batch_key.embed
            ),
            total_batch,
            batch_key.heads,
            batch_key.seq_len,
            batch_key.embed,
        );
        let cache_key = CacheKey::of(batch_key.method, &merged, &self.config.planner);
        if !self.cache.contains(&cache_key) {
            let plan = plan_one(self.planner, batch_key.method, &merged, self.tuned)?;
            self.cache.insert(cache_key, plan);
            self.inserted_this_run.insert(cache_key);
        }
        let plan = *self.cache.lookup(&cache_key).expect("planned above");
        // A launch is a cache hit when its key predates this run or an
        // earlier launch of this run already planned it — the legacy
        // accounting.
        let hit =
            self.used_keys.contains(&cache_key) || !self.inserted_this_run.contains(&cache_key);
        if hit {
            self.prefill_report.cache_hits += 1;
        } else {
            self.prefill_report.cache_misses += 1;
            self.used_keys.insert(cache_key);
        }

        self.open_prefill_members -= requests.len();

        // Chunked prefill: a batch longer than the chunk budget lowers
        // into a chain of chunk launches. Chunk 0 places now with the
        // batch's real seal cause; later chunks place lazily as virtual
        // time reaches each predecessor's completion. A single-chunk
        // layout falls through to the monolithic path below (and so stays
        // bit-identical to it).
        if let Some(policy) = self.config.chunked_prefill {
            let chunk_sizes = policy.chunk_sizes(batch_key.seq_len);
            if chunk_sizes.len() > 1 {
                let chain_id = launch_id;
                // Split the monolithic plan's seconds across chunks in
                // proportion to each chunk's closed-form stream demand
                // (later chunks re-stream more prior KV, so they cost
                // more per token); every chunk after the first adds one
                // launch-issue overhead.
                let issue_s = self.hw.issue_overhead_cycles as f64 / self.hw.frequency_hz;
                let mut prefilled = 0usize;
                let mut chunk_demands: Vec<TrackDemand> =
                    Vec::with_capacity(if self.tracks.is_some() {
                        chunk_sizes.len()
                    } else {
                        0
                    });
                let raw: Vec<f64> = chunk_sizes
                    .iter()
                    .map(|&tokens| {
                        let chunk = PrefillChunk::new(
                            total_batch,
                            batch_key.heads,
                            prefilled,
                            tokens,
                            batch_key.embed,
                        );
                        prefilled += tokens;
                        if self.tracks.is_some() {
                            chunk_demands.push(TrackDemand::of_prefill_chunk_with_kv(
                                &chunk,
                                &self.hw,
                                self.kv_element_bytes,
                            ));
                        }
                        prefill_chunk_service_s_with_kv(&chunk, &self.hw, self.kv_element_bytes)
                    })
                    .collect();
                let raw_sum: f64 = raw.iter().sum();
                let chunk_service_s: Vec<f64> = raw
                    .iter()
                    .enumerate()
                    .map(|(k, r)| plan.seconds * r / raw_sum + if k > 0 { issue_s } else { 0.0 })
                    .collect();
                self.chunk_chains.insert(
                    chain_id,
                    ChunkChain {
                        requests,
                        charged_bytes,
                        total_batch,
                        energy_pj: plan.energy_pj,
                        cache_hit: hit,
                        chunk_sizes,
                        chunk_service_s,
                        chunk_demands,
                        next_index: 0,
                        next_ready_s: ready_s,
                        first_start_s: 0.0,
                        service_sum_s: 0.0,
                        done_chunks: 0,
                        last_span: None,
                    },
                );
                self.place_chunk(chain_id, cause);
                return Ok(());
            }
        }

        let members = requests.len() as u32;
        let est_service_s = service_time_lower_bound_s(&merged, &self.hw);
        // A monolithic batch's plan already amortizes its issue cost into
        // `plan.seconds`; the whole modeled service spreads over the
        // streams via the stretch factor.
        let profile = self
            .tracks
            .is_some()
            .then(|| (TrackDemand::of_prefill(&merged, &self.hw), 0.0));
        self.place_prefill_span(
            launch_id,
            LaunchKey::Prefill(batch_key),
            ready_s,
            plan.seconds,
            members,
            total_batch as u32,
            plan.energy_pj,
            hit,
            cause,
            est_service_s,
            profile,
            StagedPayload::Batch {
                requests,
                charged_bytes,
            },
        );
        Ok(())
    }

    /// Dispatches one batched decode launch: closed-form service time,
    /// earliest-free device, per-step outcomes, session-finish releases.
    /// With slot preemption active, a launch whose members would miss the
    /// step deadline may first displace a staged (not-yet-started)
    /// prefill-class span; `now_s` judges "started" ([`f64::INFINITY`] at
    /// flush disables displacement — everything has started by then).
    fn dispatch_decode(
        &mut self,
        decode_key: DecodeKey,
        launch: OpenLaunch,
        ready_s: f64,
        cause: SealCause,
        now_s: f64,
    ) {
        let OpenLaunch {
            id: launch_id,
            items,
            ..
        } = launch;
        let pending: Vec<DecodeStepItem> = items
            .into_iter()
            .map(|item| match item {
                WorkItem::Decode(step) => step,
                WorkItem::Prefill(_) => unreachable!("decode launches hold decode items"),
            })
            .collect();
        let steps: Vec<DecodeStep> = pending
            .iter()
            .map(|p| {
                DecodeStep::new(
                    "decode",
                    1,
                    decode_key.heads,
                    p.context_len,
                    decode_key.embed,
                )
                .with_kv_heads(decode_key.kv_heads)
            })
            .collect();
        // Recompute-priced resumes fold their evicted context back in as a
        // prefill-chunk demand on the same launch; without any, the legacy
        // closed form applies verbatim (bit-identical).
        let service_s = if pending.iter().any(|p| p.recompute_tokens > 0) {
            let mut demand = StreamDemand::default();
            for step in &steps {
                demand.accumulate(&StreamDemand::of_decode_step_with_kv(
                    step,
                    &self.hw,
                    self.kv_element_bytes,
                ));
            }
            for p in &pending {
                if p.recompute_tokens > 0 {
                    let chunk = PrefillChunk::new(
                        1,
                        decode_key.heads,
                        0,
                        p.recompute_tokens,
                        decode_key.embed,
                    )
                    .with_kv_heads(decode_key.kv_heads);
                    demand.accumulate(&StreamDemand::of_prefill_chunk_with_kv(
                        &chunk,
                        &self.hw,
                        self.kv_element_bytes,
                    ));
                }
            }
            demand.bound_seconds(&self.hw)
                + self.hw.issue_overhead_cycles as f64 / self.hw.frequency_hz
        } else {
            launch_service_s_with_kv(&steps, &self.hw, self.kv_element_bytes)
        };
        // The launch's four-track demand (same step + recompute-chunk sum
        // as the scalar service, split by direction); the decode issue
        // overhead is explicit in the scalar closed form, so it stays a
        // separate term the flow-shop can hide under the KV stream.
        let profile = self.tracks.is_some().then(|| {
            let mut demand = TrackDemand::default();
            for step in &steps {
                demand.accumulate(&TrackDemand::of_decode_step_with_kv(
                    step,
                    &self.hw,
                    self.kv_element_bytes,
                ));
            }
            for p in &pending {
                if p.recompute_tokens > 0 {
                    let chunk = PrefillChunk::new(
                        1,
                        decode_key.heads,
                        0,
                        p.recompute_tokens,
                        decode_key.embed,
                    )
                    .with_kv_heads(decode_key.kv_heads);
                    demand.accumulate(&TrackDemand::of_prefill_chunk_with_kv(
                        &chunk,
                        &self.hw,
                        self.kv_element_bytes,
                    ));
                }
            }
            let issue_s = self.hw.issue_overhead_cycles as f64 / self.hw.frequency_hz;
            (demand, issue_s)
        });
        let mut device = self.earliest_free_device();
        let mut start_s = self.free_at[device].max(ready_s);
        let mut requeue: Option<StagedSpan> = None;
        if self.staging_active() && now_s.is_finite() {
            if let Some(deadline) = self.config.decode.step_deadline_s {
                let misses = |start: f64| {
                    pending
                        .iter()
                        .filter(|p| start + service_s - p.arrival_s > deadline)
                        .count()
                };
                if misses(start_s) > 0 {
                    // Candidate victims: staged spans that have not started
                    // yet. Pick the one whose rollback yields the earliest
                    // decode start; displace only if that actually fixes a
                    // deadline miss.
                    let candidate = self
                        .staged
                        .iter()
                        .enumerate()
                        .filter_map(|(d, slot)| {
                            slot.as_ref().and_then(|span| {
                                (span.start_s > now_s).then_some((span.prev_free_s.max(ready_s), d))
                            })
                        })
                        .min_by(|a, b| a.partial_cmp(b).expect("times are finite"));
                    if let Some((cand_start, d)) = candidate {
                        if cand_start < start_s && misses(cand_start) < misses(start_s) {
                            let victim = self.staged[d].take().expect("candidate");
                            self.free_at[d] = victim.prev_free_s;
                            // Roll the device's track clocks back too: the
                            // victim is always the device's last placement
                            // (a newer one would have hardened it), so its
                            // pre-placement snapshot is current.
                            if let (Some(tracks), Some(prev)) =
                                (self.tracks.as_mut(), victim.prev_tracks)
                            {
                                tracks[d] = prev;
                            }
                            self.preemptions_prefill += 1;
                            if let Some(recorder) = self.recorder.as_mut() {
                                recorder.record(
                                    now_s,
                                    EventKind::Preempted {
                                        victim: PreemptVictim::Launch {
                                            launch_id: victim.launch_id,
                                            key: victim.key,
                                            device: d as u32,
                                            start_s: victim.start_s,
                                        },
                                    },
                                );
                            }
                            requeue = Some(victim);
                            device = self.earliest_free_device();
                            start_s = self.free_at[device].max(ready_s);
                        }
                    }
                }
            }
        }
        if self.staged[device].is_some() {
            // Pin the incumbent staged span (the decode launch starts after
            // it) so per-device event order stays start order.
            let limit = self.staged[device].as_ref().expect("present").start_s;
            self.harden_through(limit);
        }
        let scalar_completion_s = start_s + service_s;
        let mut completion_s = scalar_completion_s;
        let mut span_service_s = service_s;
        let mut stage_spans: Option<Vec<StageSpan>> = None;
        if self.tracks.is_some() {
            if let Some(p) = self.try_track_placement(
                device,
                ready_s,
                service_s,
                scalar_completion_s,
                profile.as_ref(),
            ) {
                start_s = p.start_s;
                completion_s = p.completion_s;
                span_service_s = completion_s - start_s;
                stage_spans = Some(p.stages);
            }
        }
        self.note_device_span(device, WorkClass::Decode, start_s, span_service_s);
        self.free_at[device] = completion_s;
        self.decode_report.makespan_s = self.decode_report.makespan_s.max(completion_s);
        self.makespan_s = self.makespan_s.max(completion_s);
        self.decode_report.launches += 1;
        // Decode launches occupy the shared timeline too: account them in
        // the backlog estimate prefill admission sees. Always the scalar
        // service, so admission decisions match across executor modes.
        self.estimator.feed(ready_s, service_s);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                start_s,
                EventKind::LaunchDispatched {
                    launch_id,
                    key: LaunchKey::Decode(decode_key),
                    device: device as u32,
                    ready_s,
                    start_s,
                    completion_s,
                    service_s: span_service_s,
                    members: pending.len() as u32,
                    total_batch: pending.len() as u32,
                    energy_pj: 0.0,
                    cache_hit: false,
                    cause,
                },
            );
            if let Some(stages) = stage_spans.as_ref() {
                for s in stages {
                    recorder.record(
                        s.start_s,
                        EventKind::LaunchStage {
                            launch_id,
                            device: device as u32,
                            track: s.track,
                            stage: s.stage as u32,
                            start_s: s.start_s,
                            end_s: s.end_s,
                        },
                    );
                }
            }
        }
        for p in pending {
            let deadline_s = self.config.decode.step_deadline_s;
            let latency_s = completion_s - p.arrival_s;
            let session = self
                .sessions
                .get_mut(&p.session_id)
                .expect("session exists");
            session.completed_steps += 1;
            session.pending_steps -= 1;
            if session.finished() {
                self.releases
                    .push((completion_s, Release::Session(p.session_id)));
            }
            self.decode_report.outcomes.push(DecodeStepOutcome {
                session_id: p.session_id,
                step_index: p.step_index,
                context_len: p.context_len,
                arrival_s: p.arrival_s,
                start_s,
                completion_s,
                service_s: span_service_s,
                deadline_s,
                deadline_met: deadline_s.is_none_or(|d| latency_s <= d),
                launch_id,
                device,
            });
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    completion_s,
                    EventKind::DecodeCompleted {
                        session_id: p.session_id,
                        step_index: p.step_index as u32,
                        context_len: p.context_len as u32,
                        launch_id,
                    },
                );
                recorder.observe_latency(WorkClass::Decode, latency_s);
            }
        }
        // The displaced span re-places now — behind the decode launch, never
        // dropped. A chunk victim rewinds its chain to the displaced index;
        // the chain re-places it with the same identity.
        if let Some(victim) = requeue {
            match victim.payload {
                StagedPayload::Batch {
                    requests,
                    charged_bytes,
                } => {
                    self.place_prefill_span(
                        victim.launch_id,
                        victim.key,
                        victim.ready_s,
                        victim.scalar_service_s,
                        victim.members,
                        victim.total_batch,
                        victim.energy_pj,
                        victim.cache_hit,
                        victim.cause,
                        victim.est_service_s,
                        victim.profile,
                        StagedPayload::Batch {
                            requests,
                            charged_bytes,
                        },
                    );
                }
                StagedPayload::Chunk { chain, index } => {
                    let state = self.chunk_chains.get_mut(&chain).expect("chain is live");
                    state.next_index = index;
                    state.next_ready_s = victim.ready_s;
                    self.place_chunk(chain, victim.cause);
                }
            }
        }
    }

    /// Evicts idle sessions' KV residency (largest session id first) until
    /// the pending growth `delta_bytes` would fit the budget, or no victim
    /// remains. A victim must be admitted, unfinished, not already swapped,
    /// have no step riding an open launch, hold a nonzero charge, and not
    /// share a prefix group (group blocks are held collectively — evicting
    /// one member cannot reclaim them). The victim's session stays
    /// admitted: its tokens swap out and come back at its next step.
    fn try_evict_for(&mut self, delta_bytes: u64, keep: u64, now_s: f64) {
        let mode = self.config.preempt.expect("caller gates on preempt");
        loop {
            if self
                .kv_in_use
                .saturating_add(self.prefill_charged)
                .saturating_add(delta_bytes)
                <= self.budget
            {
                return;
            }
            let victim = self
                .sessions
                .iter()
                .filter(|(id, s)| {
                    **id != keep
                        && s.admitted
                        && !s.finished()
                        && s.swapped.is_none()
                        && s.pending_steps == 0
                        && s.charged_bytes > 0
                        && s.prefix_group.is_none()
                })
                .map(|(id, _)| *id)
                .next_back();
            let Some(vid) = victim else { return };
            let s = self.sessions.get_mut(&vid).expect("present");
            let bytes = s.charged_bytes;
            let blocks = s.charged_blocks;
            let used = s.used_bytes;
            s.swapped = Some((used, mode));
            s.charged_bytes = 0;
            s.charged_blocks = 0;
            s.used_bytes = 0;
            self.kv_in_use = self.kv_in_use.saturating_sub(bytes);
            self.kv_used = self.kv_used.saturating_sub(used);
            self.blocks_in_use = self.blocks_in_use.saturating_sub(blocks);
            self.preemptions_decode += 1;
            // The ledger entry stays live: the session is still admitted
            // and its one finish-release is still owed. No `note_kv_peak`:
            // eviction only lowers the gauges.
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record(
                    now_s,
                    EventKind::Preempted {
                        victim: PreemptVictim::Session {
                            session_id: vid,
                            mode,
                            bytes,
                            used_bytes: used,
                            blocks,
                        },
                    },
                );
            }
        }
    }

    /// Flushes the straggler launches at their window ends, ordered by
    /// `(ready, policy class rank, creation order)` — for a single class
    /// this is exactly the legacy flush order. Chunk chains opened by
    /// flushed batches drain to completion afterwards, then every still-
    /// staged span hardens.
    fn flush(&mut self) -> Result<()> {
        let mut rest: Vec<(LaunchKey, OpenLaunch)> =
            std::mem::take(&mut self.open).into_iter().collect();
        rest.sort_by(|(key_a, a), (key_b, b)| {
            let ready_a = a.first_arrival_s + self.window_s(key_a.class());
            let ready_b = b.first_arrival_s + self.window_s(key_b.class());
            ready_a
                .partial_cmp(&ready_b)
                .expect("ready times are finite")
                .then(
                    self.config
                        .policy
                        .class_rank(key_a.class())
                        .cmp(&self.config.policy.class_rank(key_b.class())),
                )
                .then(a.id.cmp(&b.id))
        });
        for (key, launch) in rest {
            let ready_s = launch.first_arrival_s + self.window_s(key.class());
            self.dispatch(key, launch, ready_s, SealCause::Flush, f64::INFINITY)?;
        }
        self.dispatch_ready_chunks(f64::INFINITY);
        self.harden_through(f64::INFINITY);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_policy_covers_every_token_exactly_once() {
        let p = ChunkPolicy::new(128);
        assert_eq!(p.chunk_sizes(512), vec![128, 128, 128, 128]);
        assert_eq!(p.chunk_sizes(300), vec![128, 128, 44]);
        assert_eq!(p.chunk_sizes(100), vec![100], "budget >= prompt: one chunk");
        assert_eq!(p.chunk_sizes(128), vec![128]);
        // A zero budget disables chunking rather than dividing by zero.
        assert_eq!(ChunkPolicy::new(0).chunk_sizes(512), vec![512]);
        for seq in [1usize, 127, 128, 129, 1000, 4096] {
            assert_eq!(p.chunk_sizes(seq).iter().sum::<usize>(), seq, "seq {seq}");
        }
    }

    #[test]
    fn preempt_mode_round_trips_display_and_parse() {
        for mode in [PreemptMode::Hold, PreemptMode::Recompute] {
            assert_eq!(mode.to_string().parse::<PreemptMode>().unwrap(), mode);
        }
        assert!("swap".parse::<PreemptMode>().is_err());
        assert_eq!(PreemptMode::default(), PreemptMode::Hold);
    }

    /// The double-release hazard (satellite of the chunked-prefill PR): a
    /// second release for the same owner must be rejected and counted, not
    /// silently absorbed by saturating arithmetic.
    #[test]
    fn release_ledger_rejects_duplicate_releases() {
        let mut ledger = ReleaseLedger::default();
        ledger.charge(MemOwner::Session(7));
        assert!(
            ledger.release(MemOwner::Session(7)),
            "first release is live"
        );
        assert!(
            !ledger.release(MemOwner::Session(7)),
            "second release of the same owner is a duplicate"
        );
        assert_eq!(ledger.drops(), 1);
        // A release for an owner never charged is also a duplicate.
        assert!(!ledger.release(MemOwner::PrefillLaunch(3)));
        assert_eq!(ledger.drops(), 2);
        // Charging is idempotent: re-charging a live owner keeps one entry.
        ledger.charge(MemOwner::PrefixGroup(1));
        ledger.charge(MemOwner::PrefixGroup(1));
        assert!(ledger.release(MemOwner::PrefixGroup(1)));
        assert!(!ledger.release(MemOwner::PrefixGroup(1)));
        assert_eq!(ledger.drops(), 3);
    }
}
