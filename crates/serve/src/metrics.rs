//! Per-request outcomes and aggregate serving metrics.

use serde::Serialize;

use mas_dataflow::DataflowKind;

use crate::queue::RejectReason;

/// Nearest-rank percentile of a set of values: the smallest value whose rank
/// is at least `⌈p/100 · n⌉`. `None` for an empty set. The single percentile
/// definition used by every latency figure in this crate (aggregate and
/// per-network rollups alike).
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile values are finite"));
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over values the caller has *already sorted ascending* —
/// the fast path when several percentiles are read from one set (sort once,
/// index many). Equal to [`percentile`] on sorted input by construction;
/// unsorted input yields nonsense, not an error.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    // `p·n/100` multiplied before dividing: `(p/100)·n` rounds up through an
    // inexact intermediate exactly at rank boundaries (e.g.
    // `(55/100)·100 = 55.000000000000007` puts p55 of 100 samples at rank 56
    // instead of 55), while `p·n` is exact for every realistic p and n.
    let rank = ((p * n as f64) / 100.0).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// The latency summary every report in this crate exposes: sample count,
/// mean and the p50/p99 nearest-rank percentiles, computed by the one
/// [`percentile`] definition. Built once from a latency set
/// ([`LatencyStats::of`]) instead of re-deriving each figure ad hoc — the
/// legacy prefill and decode reports and the engine's per-class breakdowns
/// all share this type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Number of latency samples.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median (nearest-rank p50) latency in seconds.
    pub p50_s: f64,
    /// Nearest-rank 99th-percentile latency in seconds.
    pub p99_s: f64,
}

impl LatencyStats {
    /// Summarizes a latency set, or `None` for an empty one.
    #[must_use]
    pub fn of(latencies: &[f64]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        // Sum in arrival order *before* sorting: the mean's f64 accumulation
        // order is part of the pinned bit-exact report contract.
        let sum: f64 = latencies.iter().sum();
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency values are finite"));
        Some(Self {
            count: latencies.len(),
            mean_s: sum / latencies.len() as f64,
            p50_s: percentile_sorted(&sorted, 50.0).expect("non-empty"),
            p99_s: percentile_sorted(&sorted, 99.0).expect("non-empty"),
        })
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {:.3} ms p99 {:.3} ms mean {:.3} ms (n={})",
            self.p50_s * 1e3,
            self.p99_s * 1e3,
            self.mean_s * 1e3,
            self.count
        )
    }
}

/// The fate of one completed (admitted and executed) request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestOutcome {
    /// The request id.
    pub id: u64,
    /// Name of the requested workload (for reporting; not part of any key).
    pub workload: String,
    /// The dataflow method that ran.
    pub method: DataflowKind,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Virtual time the request's batch started on its device.
    pub start_s: f64,
    /// Virtual time the request's batch completed.
    pub completion_s: f64,
    /// Simulated service time of the batch that carried this request.
    pub service_s: f64,
    /// The request's relative deadline, if any.
    pub deadline_s: Option<f64>,
    /// Whether the end-to-end latency met the deadline (`true` when no
    /// deadline was set).
    pub deadline_met: bool,
    /// Energy attributed to this request (its share of the batch's energy,
    /// proportional to its batch dimension).
    pub energy_pj: f64,
    /// Whether the batch's plan came from the schedule cache.
    pub cache_hit: bool,
    /// Id of the batch that carried this request.
    pub batch_id: u64,
    /// Virtual device the batch ran on.
    pub device: usize,
}

impl RequestOutcome {
    /// End-to-end latency: completion minus arrival (queueing + batching +
    /// service).
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// A request refused at admission.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RejectedRequest {
    /// The request id.
    pub id: u64,
    /// Name of the requested workload.
    pub workload: String,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Aggregate result of replaying one request trace.
///
/// Every field is a deterministic function of the trace and the runtime
/// configuration — pooled and serial planning produce bit-identical reports
/// (pinned by test) — so reports can be compared exactly across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServeReport {
    /// Completed requests in device launch order (batch order, members in
    /// arrival order).
    pub outcomes: Vec<RequestOutcome>,
    /// Rejected requests in arrival order.
    pub rejected: Vec<RejectedRequest>,
    /// Number of micro-batches launched.
    pub batches: usize,
    /// Batches whose plan was answered from the schedule cache.
    pub cache_hits: usize,
    /// Batches that had to be planned (and were then memoized).
    pub cache_misses: usize,
    /// Virtual time at which the last batch completed.
    pub makespan_s: f64,
    /// Total energy across all completed requests, in picojoules.
    pub total_energy_pj: f64,
    /// Seconds each virtual device spent busy with *this class* of launches,
    /// indexed by device. Empty when the class never dispatched (legacy
    /// single-class replays through the standalone runtime leave it empty on
    /// the unused class so default-equality pins hold).
    #[serde(default)]
    pub device_busy_s: Vec<f64>,
}

impl ServeReport {
    /// Number of completed requests.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Sustained throughput: completed requests per second of makespan.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / self.makespan_s
    }

    /// Latency at percentile `p` in `[0, 100]` (nearest-rank), or `None`
    /// with no completed requests.
    #[must_use]
    pub fn latency_percentile_s(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_s)
            .collect();
        percentile(&latencies, p)
    }

    /// The report's latency summary (count, mean, p50, p99), or `None` with
    /// no completed requests. The single source for every headline latency
    /// figure below.
    #[must_use]
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_s)
            .collect();
        LatencyStats::of(&latencies)
    }

    /// Median end-to-end latency.
    #[must_use]
    pub fn p50_latency_s(&self) -> Option<f64> {
        self.latency_stats().map(|s| s.p50_s)
    }

    /// 99th-percentile end-to-end latency.
    #[must_use]
    pub fn p99_latency_s(&self) -> Option<f64> {
        self.latency_stats().map(|s| s.p99_s)
    }

    /// Mean end-to-end latency.
    #[must_use]
    pub fn mean_latency_s(&self) -> Option<f64> {
        self.latency_stats().map(|s| s.mean_s)
    }

    /// Completed requests that met their deadline (requests without a
    /// deadline count as met).
    #[must_use]
    pub fn deadline_met(&self) -> usize {
        self.outcomes.iter().filter(|o| o.deadline_met).count()
    }

    /// Completed requests that missed their deadline.
    #[must_use]
    pub fn deadline_missed(&self) -> usize {
        self.completed() - self.deadline_met()
    }

    /// Fraction of completed requests that missed their deadline.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.deadline_missed() as f64 / self.completed() as f64
    }

    /// Fraction of batches answered from the schedule cache.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// A compact human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let fmt_ms =
            |s: Option<f64>| s.map_or_else(|| "-".to_string(), |v| format!("{:.3} ms", v * 1e3));
        let mut out = format!(
            "completed {} / rejected {} in {} batches | throughput {:.1} req/s | \
             latency p50 {} p99 {} | deadline misses {} ({:.1}%) | \
             cache {}/{} hits ({:.0}%) | energy {:.3e} pJ",
            self.completed(),
            self.rejected.len(),
            self.batches,
            self.throughput_rps(),
            fmt_ms(self.p50_latency_s()),
            fmt_ms(self.p99_latency_s()),
            self.deadline_missed(),
            self.deadline_miss_rate() * 100.0,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.total_energy_pj,
        );
        if !self.device_busy_s.is_empty() {
            let per_device: Vec<String> = self
                .device_busy_s
                .iter()
                .enumerate()
                .map(|(d, &busy)| {
                    let pct = if self.makespan_s > 0.0 {
                        busy / self.makespan_s * 100.0
                    } else {
                        0.0
                    };
                    format!("d{d} {pct:.1}%")
                })
                .collect();
            out.push_str(&format!(" | busy {}", per_device.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival_s: f64, completion_s: f64, deadline_met: bool) -> RequestOutcome {
        RequestOutcome {
            id,
            workload: format!("w{id}"),
            method: DataflowKind::MasAttention,
            arrival_s,
            start_s: arrival_s,
            completion_s,
            service_s: completion_s - arrival_s,
            deadline_s: Some(1.0),
            deadline_met,
            energy_pj: 10.0,
            cache_hit: false,
            batch_id: id,
            device: 0,
        }
    }

    fn report(latencies: &[f64]) -> ServeReport {
        ServeReport {
            outcomes: latencies
                .iter()
                .enumerate()
                .map(|(i, &l)| outcome(i as u64, 0.0, l, true))
                .collect(),
            makespan_s: latencies.iter().copied().fold(0.0, f64::max),
            ..ServeReport::default()
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report(&[0.4, 0.1, 0.3, 0.2]);
        assert!((r.p50_latency_s().unwrap() - 0.2).abs() < 1e-12);
        assert!((r.p99_latency_s().unwrap() - 0.4).abs() < 1e-12);
        assert!((r.latency_percentile_s(0.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((r.latency_percentile_s(100.0).unwrap() - 0.4).abs() < 1e-12);
        assert!(report(&[]).p50_latency_s().is_none());
    }

    #[test]
    fn percentile_of_one_sample_is_that_sample_at_every_p() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), Some(7.5), "p{p}");
        }
    }

    #[test]
    fn percentile_of_two_samples_splits_at_the_median() {
        let v = [2.0, 1.0];
        // Nearest rank: p ≤ 50 → rank 1 (minimum), p > 50 → rank 2.
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(1.0));
        assert_eq!(percentile(&v, 50.001), Some(2.0));
        assert_eq!(percentile(&v, 99.0), Some(2.0));
        assert_eq!(percentile(&v, 100.0), Some(2.0));
    }

    #[test]
    fn percentile_of_three_samples_hits_every_rank_boundary() {
        let v = [3.0, 1.0, 2.0];
        // Rank boundaries at 33.3̅% and 66.6̅%.
        assert_eq!(percentile(&v, 33.0), Some(1.0));
        assert_eq!(percentile(&v, 34.0), Some(2.0));
        assert_eq!(percentile(&v, 50.0), Some(2.0), "p50 of 3 is the middle");
        assert_eq!(percentile(&v, 66.0), Some(2.0));
        assert_eq!(percentile(&v, 67.0), Some(3.0));
        assert_eq!(percentile(&v, 99.0), Some(3.0));
    }

    #[test]
    fn percentile_rank_boundaries_are_exact_not_float_rounded() {
        // Regression: computing `(p/100)·n` rounds through an inexact
        // intermediate — 0.55·100 = 55.000000000000007 shifted p55 of 100
        // samples to rank 56, 0.07·100 = 7.000000000000001 shifted p7 to
        // rank 8. `p·n/100` keeps integer-valued ranks exact.
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 55.0), Some(55.0), "p55 of 100 is rank 55");
        assert_eq!(percentile(&v, 7.0), Some(7.0), "p7 of 100 is rank 7");
        assert_eq!(percentile(&v, 99.0), Some(99.0));
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 1.0), Some(1.0));
        // Same failure shape at small n: 0.28·25 = 7.000000000000001.
        let v: Vec<f64> = (1..=25).map(f64::from).collect();
        assert_eq!(percentile(&v, 28.0), Some(7.0), "p28 of 25 is rank 7");
        assert_eq!(percentile(&v, 56.0), Some(14.0), "p56 of 25 is rank 14");
    }

    #[test]
    fn out_of_range_p_clamps_to_the_extremes() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -10.0), Some(1.0));
        assert_eq!(percentile(&v, 250.0), Some(3.0));
    }

    #[test]
    fn throughput_and_deadline_accounting() {
        let mut r = report(&[0.1, 0.2]);
        r.outcomes.push(outcome(9, 0.0, 0.5, false));
        r.makespan_s = 0.5;
        assert_eq!(r.completed(), 3);
        assert_eq!(r.deadline_met(), 2);
        assert_eq!(r.deadline_missed(), 1);
        assert!((r.deadline_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.throughput_rps() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rate_handles_empty() {
        let mut r = ServeReport::default();
        assert_eq!(r.cache_hit_rate(), 0.0);
        r.cache_hits = 3;
        r.cache_misses = 1;
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_match_the_ad_hoc_figures() {
        let r = report(&[0.4, 0.1, 0.3, 0.2]);
        let stats = r.latency_stats().unwrap();
        assert_eq!(stats.count, 4);
        assert_eq!(Some(stats.p50_s), r.latency_percentile_s(50.0));
        assert_eq!(Some(stats.p99_s), r.latency_percentile_s(99.0));
        assert!((stats.mean_s - 0.25).abs() < 1e-12);
        assert!(report(&[]).latency_stats().is_none());
        assert_eq!(LatencyStats::of(&[]), None);
        let one = LatencyStats::of(&[0.002]).unwrap();
        assert_eq!(
            (one.count, one.p50_s, one.p99_s, one.mean_s),
            (1, 0.002, 0.002, 0.002)
        );
        let shown = stats.to_string();
        assert!(
            shown.contains("p50") && shown.contains("p99") && shown.contains("n=4"),
            "{shown}"
        );
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let r = report(&[0.1, 0.2]);
        let s = r.summary();
        assert!(s.contains("completed 2"));
        assert!(s.contains("p50"));
    }

    #[test]
    fn percentile_sorted_equals_percentile_on_sorted_input() {
        let unsorted = [0.4, 0.1, 0.3, 0.2, 0.9, 0.5];
        let mut sorted = unsorted.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 1.0, 7.0, 28.0, 33.0, 50.0, 55.0, 66.7, 99.0, 100.0] {
            assert_eq!(
                percentile(&unsorted, p),
                percentile_sorted(&sorted, p),
                "p{p}"
            );
        }
        assert_eq!(percentile_sorted(&[], 50.0), None);
    }

    #[test]
    fn summary_shows_device_busy_only_when_attributed() {
        let mut r = report(&[0.1, 0.2]);
        assert!(!r.summary().contains("busy"));
        r.device_busy_s = vec![0.1, 0.05];
        r.makespan_s = 0.2;
        let s = r.summary();
        assert!(s.contains("busy d0 50.0% d1 25.0%"), "{s}");
    }
}
