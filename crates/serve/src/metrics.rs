//! Per-request outcomes and aggregate serving metrics.

use serde::Serialize;

use mas_dataflow::DataflowKind;

use crate::queue::RejectReason;

/// Nearest-rank percentile of a set of values: the smallest value whose rank
/// is at least `⌈p/100 · n⌉`. `None` for an empty set. The single percentile
/// definition used by every latency figure in this crate (aggregate and
/// per-network rollups alike).
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile values are finite"));
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// The fate of one completed (admitted and executed) request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestOutcome {
    /// The request id.
    pub id: u64,
    /// Name of the requested workload (for reporting; not part of any key).
    pub workload: String,
    /// The dataflow method that ran.
    pub method: DataflowKind,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Virtual time the request's batch started on its device.
    pub start_s: f64,
    /// Virtual time the request's batch completed.
    pub completion_s: f64,
    /// Simulated service time of the batch that carried this request.
    pub service_s: f64,
    /// The request's relative deadline, if any.
    pub deadline_s: Option<f64>,
    /// Whether the end-to-end latency met the deadline (`true` when no
    /// deadline was set).
    pub deadline_met: bool,
    /// Energy attributed to this request (its share of the batch's energy,
    /// proportional to its batch dimension).
    pub energy_pj: f64,
    /// Whether the batch's plan came from the schedule cache.
    pub cache_hit: bool,
    /// Id of the batch that carried this request.
    pub batch_id: u64,
    /// Virtual device the batch ran on.
    pub device: usize,
}

impl RequestOutcome {
    /// End-to-end latency: completion minus arrival (queueing + batching +
    /// service).
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// A request refused at admission.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RejectedRequest {
    /// The request id.
    pub id: u64,
    /// Name of the requested workload.
    pub workload: String,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Aggregate result of replaying one request trace.
///
/// Every field is a deterministic function of the trace and the runtime
/// configuration — pooled and serial planning produce bit-identical reports
/// (pinned by test) — so reports can be compared exactly across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServeReport {
    /// Completed requests in device launch order (batch order, members in
    /// arrival order).
    pub outcomes: Vec<RequestOutcome>,
    /// Rejected requests in arrival order.
    pub rejected: Vec<RejectedRequest>,
    /// Number of micro-batches launched.
    pub batches: usize,
    /// Batches whose plan was answered from the schedule cache.
    pub cache_hits: usize,
    /// Batches that had to be planned (and were then memoized).
    pub cache_misses: usize,
    /// Virtual time at which the last batch completed.
    pub makespan_s: f64,
    /// Total energy across all completed requests, in picojoules.
    pub total_energy_pj: f64,
}

impl ServeReport {
    /// Number of completed requests.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Sustained throughput: completed requests per second of makespan.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / self.makespan_s
    }

    /// Latency at percentile `p` in `[0, 100]` (nearest-rank), or `None`
    /// with no completed requests.
    #[must_use]
    pub fn latency_percentile_s(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_s)
            .collect();
        percentile(&latencies, p)
    }

    /// Median end-to-end latency.
    #[must_use]
    pub fn p50_latency_s(&self) -> Option<f64> {
        self.latency_percentile_s(50.0)
    }

    /// 99th-percentile end-to-end latency.
    #[must_use]
    pub fn p99_latency_s(&self) -> Option<f64> {
        self.latency_percentile_s(99.0)
    }

    /// Mean end-to-end latency.
    #[must_use]
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let sum: f64 = self.outcomes.iter().map(RequestOutcome::latency_s).sum();
        Some(sum / self.outcomes.len() as f64)
    }

    /// Completed requests that met their deadline (requests without a
    /// deadline count as met).
    #[must_use]
    pub fn deadline_met(&self) -> usize {
        self.outcomes.iter().filter(|o| o.deadline_met).count()
    }

    /// Completed requests that missed their deadline.
    #[must_use]
    pub fn deadline_missed(&self) -> usize {
        self.completed() - self.deadline_met()
    }

    /// Fraction of completed requests that missed their deadline.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.deadline_missed() as f64 / self.completed() as f64
    }

    /// Fraction of batches answered from the schedule cache.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// A compact human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let fmt_ms =
            |s: Option<f64>| s.map_or_else(|| "-".to_string(), |v| format!("{:.3} ms", v * 1e3));
        format!(
            "completed {} / rejected {} in {} batches | throughput {:.1} req/s | \
             latency p50 {} p99 {} | deadline misses {} ({:.1}%) | \
             cache {}/{} hits ({:.0}%) | energy {:.3e} pJ",
            self.completed(),
            self.rejected.len(),
            self.batches,
            self.throughput_rps(),
            fmt_ms(self.p50_latency_s()),
            fmt_ms(self.p99_latency_s()),
            self.deadline_missed(),
            self.deadline_miss_rate() * 100.0,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.total_energy_pj,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival_s: f64, completion_s: f64, deadline_met: bool) -> RequestOutcome {
        RequestOutcome {
            id,
            workload: format!("w{id}"),
            method: DataflowKind::MasAttention,
            arrival_s,
            start_s: arrival_s,
            completion_s,
            service_s: completion_s - arrival_s,
            deadline_s: Some(1.0),
            deadline_met,
            energy_pj: 10.0,
            cache_hit: false,
            batch_id: id,
            device: 0,
        }
    }

    fn report(latencies: &[f64]) -> ServeReport {
        ServeReport {
            outcomes: latencies
                .iter()
                .enumerate()
                .map(|(i, &l)| outcome(i as u64, 0.0, l, true))
                .collect(),
            makespan_s: latencies.iter().copied().fold(0.0, f64::max),
            ..ServeReport::default()
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report(&[0.4, 0.1, 0.3, 0.2]);
        assert!((r.p50_latency_s().unwrap() - 0.2).abs() < 1e-12);
        assert!((r.p99_latency_s().unwrap() - 0.4).abs() < 1e-12);
        assert!((r.latency_percentile_s(0.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((r.latency_percentile_s(100.0).unwrap() - 0.4).abs() < 1e-12);
        assert!(report(&[]).p50_latency_s().is_none());
    }

    #[test]
    fn throughput_and_deadline_accounting() {
        let mut r = report(&[0.1, 0.2]);
        r.outcomes.push(outcome(9, 0.0, 0.5, false));
        r.makespan_s = 0.5;
        assert_eq!(r.completed(), 3);
        assert_eq!(r.deadline_met(), 2);
        assert_eq!(r.deadline_missed(), 1);
        assert!((r.deadline_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.throughput_rps() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rate_handles_empty() {
        let mut r = ServeReport::default();
        assert_eq!(r.cache_hit_rate(), 0.0);
        r.cache_hits = 3;
        r.cache_misses = 1;
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let r = report(&[0.1, 0.2]);
        let s = r.summary();
        assert!(s.contains("completed 2"));
        assert!(s.contains("p50"));
    }
}
