//! Request coalescing and micro-batching.
//!
//! Admitted requests are grouped by *batch key* — the `(method, heads,
//! seq_len, embed)` shape of the attention they ask for. Requests sharing a
//! key within a batching window are merged into one device launch whose
//! workload has the summed batch dimension: identical requests coalesce
//! outright, and compatible shapes micro-batch (the `(batch, head)` slices
//! of the merged workload are independent, so the dataflows execute them in
//! one schedule). A batch is dispatched when it fills
//! ([`BatchPolicy::max_batch`] member requests) or when its window
//! ([`BatchPolicy::window_s`] seconds after its first member's arrival)
//! expires, whichever comes first.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mas_dataflow::AttentionWorkload;
use mas_sim::HardwareConfig;

pub use crate::key::BatchKey;
use crate::queue::{AdmissionPolicy, BacklogEstimator, RejectReason};
use crate::request::ServeRequest;

/// Micro-batching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Maximum number of member requests per batch; a batch dispatches as
    /// soon as it reaches this size.
    pub max_batch: usize,
    /// Batching window in seconds: a batch dispatches at
    /// `first_arrival + window_s` at the latest. `0.0` disables coalescing
    /// (every request is its own batch).
    pub window_s: f64,
}

impl BatchPolicy {
    /// How full a launch of `members` requests is relative to `max_batch`,
    /// in `[0, 1]` (clamped above; `max_batch == 0` yields `0.0`). The
    /// batch-fill gauge telemetry and reports express launch efficiency in
    /// this unit.
    #[must_use]
    pub fn fill_fraction(&self, members: usize) -> f64 {
        if self.max_batch == 0 {
            return 0.0;
        }
        (members as f64 / self.max_batch as f64).min(1.0)
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            window_s: 2e-3,
        }
    }
}

/// One dispatched micro-batch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Batch {
    /// Creation-order id (deterministic for a given request stream).
    pub id: u64,
    /// The coalescing key shared by every member.
    pub key: BatchKey,
    /// Virtual time at which the batch became ready to launch: the arrival
    /// of the member that filled it, or the end of its batching window.
    pub ready_s: f64,
    /// Member requests in arrival order.
    pub requests: Vec<ServeRequest>,
}

impl Batch {
    /// Total batch dimension of the merged workload (sum of member batches).
    #[must_use]
    pub fn total_batch(&self) -> usize {
        self.requests.iter().map(|r| r.workload.batch).sum()
    }

    /// The merged workload this batch launches as one schedule.
    #[must_use]
    pub fn merged_workload(&self) -> AttentionWorkload {
        AttentionWorkload::new(
            format!(
                "serve-batch-{}x{}h{}n{}e{}",
                self.requests.len(),
                self.total_batch(),
                self.key.heads,
                self.key.seq_len,
                self.key.embed
            ),
            self.total_batch(),
            self.key.heads,
            self.key.seq_len,
            self.key.embed,
        )
    }
}

/// Result of the admission + batching pass over one request stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoalesceOutcome {
    /// Dispatched batches, sorted by `(ready_s, id)` — device launch order.
    pub batches: Vec<Batch>,
    /// Rejected requests with their reasons, in arrival order.
    pub rejected: Vec<(ServeRequest, RejectReason)>,
}

struct OpenBatch {
    id: u64,
    first_arrival_s: f64,
    requests: Vec<ServeRequest>,
}

/// Screens a request stream through admission control and groups the
/// admitted requests into micro-batches.
///
/// `devices` is the number of virtual devices batches will replay across
/// (used to estimate the launch-queue delay that backs
/// [`AdmissionPolicy::max_est_queue_s`]). Requests are processed in
/// `(arrival_s, id)` order regardless of input order; the result is a pure
/// function of the inputs.
#[must_use]
pub fn coalesce(
    requests: &[ServeRequest],
    policy: BatchPolicy,
    admission: &AdmissionPolicy,
    hw: &HardwareConfig,
    devices: usize,
) -> CoalesceOutcome {
    let mut stream: Vec<&ServeRequest> = requests.iter().collect();
    stream.sort_by(|a, b| {
        a.arrival_s
            .partial_cmp(&b.arrival_s)
            .expect("arrival times are finite")
            .then(a.id.cmp(&b.id))
    });

    let max_batch = policy.max_batch.max(1);
    let mut open: HashMap<BatchKey, OpenBatch> = HashMap::new();
    let mut closed: Vec<Batch> = Vec::new();
    let mut rejected: Vec<(ServeRequest, RejectReason)> = Vec::new();
    let mut next_id: u64 = 0;
    let mut backlog_est = BacklogEstimator::new(devices);

    let dispatch = |batch: Batch, closed: &mut Vec<Batch>, backlog_est: &mut BacklogEstimator| {
        backlog_est.feed(
            batch.ready_s,
            crate::queue::service_time_lower_bound_s(&batch.merged_workload(), hw),
        );
        closed.push(batch);
    };

    for &request in &stream {
        let now_s = request.arrival_s;

        // Dispatch every open batch whose window ended at or before `now`,
        // in creation (= window-expiry) order: map discovery order is
        // arbitrary, but the backlog estimator consumes dispatches, so the
        // order must be deterministic. Launch order is additionally fixed by
        // the final `(ready_s, id)` sort.
        let mut expired: Vec<(u64, BatchKey)> = open
            .iter()
            .filter(|(_, b)| now_s >= b.first_arrival_s + policy.window_s)
            .map(|(k, b)| (b.id, *k))
            .collect();
        expired.sort_unstable_by_key(|(id, _)| *id);
        for (_, key) in expired {
            let b = open.remove(&key).expect("key collected from the map");
            dispatch(
                Batch {
                    id: b.id,
                    key,
                    ready_s: b.first_arrival_s + policy.window_s,
                    requests: b.requests,
                },
                &mut closed,
                &mut backlog_est,
            );
        }

        // Admission against the post-expiry backlog: open members plus the
        // estimated delay of the already-dispatched launch queue.
        let backlog: usize = open.values().map(|b| b.requests.len()).sum();
        if let Err(reason) = admission.admit(
            request.method,
            &request.workload,
            request.deadline_s,
            backlog,
            backlog_est.queue_delay_s(now_s),
            hw,
        ) {
            rejected.push((request.clone(), reason));
            continue;
        }

        // Join (or open) the batch for this key. If the merged workload
        // would outgrow the device (operands over DRAM, or even the naive
        // tiling over L1), dispatch the current batch first — per-request
        // feasibility is preserved under merging.
        let key = BatchKey::of(request);
        if let Some(b) = open.get(&key) {
            let prospective = AttentionWorkload::new(
                "prospective",
                b.requests.iter().map(|r| r.workload.batch).sum::<usize>() + request.workload.batch,
                key.heads,
                key.seq_len,
                key.embed,
            );
            if !crate::queue::workload_is_feasible(key.method, &prospective, hw) {
                let b = open.remove(&key).expect("present");
                dispatch(
                    Batch {
                        id: b.id,
                        key,
                        ready_s: now_s,
                        requests: b.requests,
                    },
                    &mut closed,
                    &mut backlog_est,
                );
            }
        }
        let batch = open.entry(key).or_insert_with(|| {
            let b = OpenBatch {
                id: next_id,
                first_arrival_s: now_s,
                requests: Vec::new(),
            };
            next_id += 1;
            b
        });
        batch.requests.push(request.clone());
        if batch.requests.len() >= max_batch {
            let b = open.remove(&key).expect("just inserted");
            dispatch(
                Batch {
                    id: b.id,
                    key,
                    ready_s: now_s,
                    requests: b.requests,
                },
                &mut closed,
                &mut backlog_est,
            );
        }
    }

    // Dispatch the stragglers at their window ends.
    for (key, b) in open.drain() {
        closed.push(Batch {
            id: b.id,
            key,
            ready_s: b.first_arrival_s + policy.window_s,
            requests: b.requests,
        });
    }

    closed.sort_by(|a, b| {
        a.ready_s
            .partial_cmp(&b.ready_s)
            .expect("ready times are finite")
            .then(a.id.cmp(&b.id))
    });
    CoalesceOutcome {
        batches: closed,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_dataflow::DataflowKind;

    #[test]
    fn fill_fraction_is_clamped_and_zero_safe() {
        let p = BatchPolicy {
            max_batch: 8,
            window_s: 0.0,
        };
        assert_eq!(p.fill_fraction(0), 0.0);
        assert_eq!(p.fill_fraction(2), 0.25);
        assert_eq!(p.fill_fraction(8), 1.0);
        assert_eq!(p.fill_fraction(20), 1.0, "overfull launches clamp to 1");
        let degenerate = BatchPolicy {
            max_batch: 0,
            window_s: 0.0,
        };
        assert_eq!(degenerate.fill_fraction(3), 0.0);
    }

    fn hw() -> HardwareConfig {
        HardwareConfig::edge_default()
    }

    fn req(id: u64, arrival_s: f64, heads: usize, seq: usize) -> ServeRequest {
        ServeRequest::new(
            id,
            arrival_s,
            DataflowKind::MasAttention,
            AttentionWorkload::new(format!("r{id}"), 1, heads, seq, 64),
            None,
        )
    }

    fn policy(max_batch: usize, window_s: f64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            window_s,
        }
    }

    #[test]
    fn identical_shapes_coalesce_within_the_window() {
        let reqs = vec![
            req(0, 0.0, 8, 256),
            req(1, 0.0005, 8, 256),
            req(2, 0.001, 8, 256),
        ];
        let out = coalesce(
            &reqs,
            policy(8, 0.002),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].requests.len(), 3);
        assert_eq!(out.batches[0].total_batch(), 3);
        let merged = out.batches[0].merged_workload();
        assert_eq!((merged.batch, merged.heads, merged.seq_len), (3, 8, 256));
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn different_shapes_never_merge() {
        let reqs = vec![
            req(0, 0.0, 8, 256),
            req(1, 0.0, 12, 256),
            req(2, 0.0, 8, 512),
        ];
        let out = coalesce(
            &reqs,
            policy(8, 0.01),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        assert_eq!(out.batches.len(), 3);
        assert!(out.batches.iter().all(|b| b.requests.len() == 1));
    }

    #[test]
    fn a_full_batch_dispatches_at_the_filling_arrival() {
        let reqs: Vec<ServeRequest> = (0..5).map(|i| req(i, i as f64 * 1e-4, 8, 256)).collect();
        let out = coalesce(
            &reqs,
            policy(4, 1.0),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        assert_eq!(out.batches.len(), 2);
        // First four fill a batch at the fourth arrival.
        assert_eq!(out.batches[0].requests.len(), 4);
        assert!((out.batches[0].ready_s - 3e-4).abs() < 1e-12);
        // The fifth waits out its own window.
        assert_eq!(out.batches[1].requests.len(), 1);
        assert!((out.batches[1].ready_s - (4e-4 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn window_expiry_dispatches_before_a_late_arrival_joins() {
        let reqs = vec![req(0, 0.0, 8, 256), req(1, 0.5, 8, 256)];
        let out = coalesce(
            &reqs,
            policy(8, 0.001),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        assert_eq!(out.batches.len(), 2, "the late request starts a new batch");
        assert!((out.batches[0].ready_s - 0.001).abs() < 1e-12);
    }

    #[test]
    fn zero_window_disables_coalescing() {
        let reqs = vec![req(0, 0.0, 8, 256), req(1, 0.0, 8, 256)];
        let out = coalesce(
            &reqs,
            policy(8, 0.0),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        assert_eq!(out.batches.len(), 2);
    }

    #[test]
    fn queue_full_rejections_surface_in_order() {
        let admission = AdmissionPolicy {
            max_queue_depth: Some(2),
            ..AdmissionPolicy::default()
        };
        // Three simultaneous arrivals, depth 2: the third is shed.
        let reqs = vec![
            req(0, 0.0, 8, 256),
            req(1, 0.0, 8, 256),
            req(2, 0.0, 8, 256),
        ];
        let out = coalesce(&reqs, policy(8, 1.0), &admission, &hw(), 1);
        assert_eq!(
            out.batches.iter().map(|b| b.requests.len()).sum::<usize>(),
            2
        );
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].0.id, 2);
        assert_eq!(out.rejected[0].1, RejectReason::QueueFull);
    }

    #[test]
    fn merging_never_outgrows_the_device() {
        // Each request alone fits DRAM (~0.94 GB of operands), but eight
        // merged copies (~7.5 GB) would not: the batcher must split instead
        // of building an infeasible launch.
        let hw = hw();
        let big = AttentionWorkload::new("big", 1, 32, 28672, 128);
        assert!(crate::queue::workload_is_feasible(
            DataflowKind::MasAttention,
            &big,
            &hw
        ));
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| ServeRequest::new(i, 0.0, DataflowKind::MasAttention, big.clone(), None))
            .collect();
        let out = coalesce(&reqs, policy(8, 1.0), &AdmissionPolicy::admit_all(), &hw, 1);
        assert!(
            out.batches.len() > 1,
            "an infeasible 8-way merge must split into several batches"
        );
        assert_eq!(
            out.batches.iter().map(|b| b.requests.len()).sum::<usize>(),
            8,
            "splitting must not drop requests"
        );
        for b in &out.batches {
            assert!(
                crate::queue::workload_is_feasible(
                    DataflowKind::MasAttention,
                    &b.merged_workload(),
                    &hw
                ),
                "every dispatched batch must fit the device"
            );
        }
    }

    #[test]
    fn coalesce_is_input_order_independent() {
        let mut reqs = vec![
            req(0, 0.0, 8, 256),
            req(1, 0.01, 12, 256),
            req(2, 0.02, 8, 256),
        ];
        let a = coalesce(
            &reqs,
            policy(8, 0.05),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        reqs.reverse();
        let b = coalesce(
            &reqs,
            policy(8, 0.05),
            &AdmissionPolicy::admit_all(),
            &hw(),
            1,
        );
        assert_eq!(a, b);
    }
}
