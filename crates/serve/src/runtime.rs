//! The legacy prefill serving runtime, now a thin shim over the unified
//! [`ServeEngine`].
//!
//! [`ServeRuntime::run_trace`] replays a timestamped prefill request stream
//! through the engine with an empty decode leg and returns the
//! prefill-class report, which is bit-identical to the pre-unification
//! runtime (same admission checks in the same order, same batch ids, same
//! earliest-free device timeline; pinned by this module's tests and by
//! `tests/e2e.rs`):
//!
//! 1. **Admit + batch.** The stream is screened by the
//!    [`AdmissionPolicy`](crate::queue::AdmissionPolicy) and coalesced into
//!    micro-batches keyed by [`BatchKey`](crate::key::BatchKey).
//! 2. **Plan (cached).** Each batch maps to a `CacheKey`; keys missing
//!    from the shared `ScheduleCache` are planned — tiling selection via
//!    `mas-attention`'s plan-only entry point, then one `mas-sim` execution
//!    — and memoized. Distinct keys plan concurrently on the persistent
//!    worker pool; results are merged in deterministic key order, so pooled
//!    and serial planning produce bit-identical reports.
//! 3. **Replay.** Batches launch in `(ready, id)` order on the earliest-free
//!    virtual device; per-request latency, energy share and deadline
//!    verdicts fall out of the deterministic timeline.
//!
//! Virtual (simulated) time and host time are decoupled: the report's
//! latencies are simulated-device quantities, while the wall-clock cost of
//! `run_trace` itself is dominated by planning — which the cache
//! amortizes away for every repeated key.
//!
//! To co-schedule prefill with decode traffic on one device timeline and
//! one shared memory budget, use [`ServeEngine`] directly.

use mas_attention::PlannerConfig;
use mas_sim::Result;

use crate::batcher::BatchPolicy;
use crate::cache::ScheduleCache;
use crate::engine::{EngineConfig, ServeEngine};
use crate::metrics::ServeReport;
use crate::queue::AdmissionPolicy;
use crate::request::ServeRequest;
use crate::telemetry::{Telemetry, TelemetryConfig};

/// Configuration of the serving runtime.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Planner (hardware, energy model, tiling strategy, tuning budget).
    pub planner: PlannerConfig,
    /// Admission control policy.
    pub admission: AdmissionPolicy,
    /// Micro-batching policy.
    pub batching: BatchPolicy,
    /// Number of virtual devices batches are scheduled across.
    pub devices: usize,
    /// Whether uncached batch plans are computed concurrently on the worker
    /// pool. The serial path exists for determinism baselines and produces
    /// bit-identical reports.
    pub parallel_planning: bool,
    /// Structured telemetry recording ([`crate::telemetry`]). `None` (the
    /// default) records nothing and leaves replays bit-identical to the
    /// pre-telemetry runtime.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            planner: PlannerConfig::default(),
            admission: AdmissionPolicy::default(),
            batching: BatchPolicy::default(),
            devices: 1,
            parallel_planning: true,
            telemetry: None,
        }
    }
}

impl From<ServeConfig> for EngineConfig {
    /// Lifts a prefill-only configuration into the engine. The legacy
    /// runtime predates the shared memory budget, so the lifted
    /// configuration *disables* it (an effectively unbounded budget):
    /// prefill-only replays through [`ServeRuntime`] are bit-identical to
    /// the pre-unification runtime in every regime, including memory-bound
    /// corners where the engine's default half-DRAM pool would shed load.
    /// Decode and scheduling policies take their defaults (unobservable
    /// with no decode traffic).
    fn from(config: ServeConfig) -> Self {
        Self {
            planner: config.planner,
            admission: config.admission,
            batching: config.batching,
            devices: config.devices,
            parallel_planning: config.parallel_planning,
            shared_budget_bytes: Some(u64::MAX),
            telemetry: config.telemetry,
            ..EngineConfig::default()
        }
    }
}

/// The streaming serving runtime. Owns the shared schedule cache, which
/// persists across traces (and, via [`ScheduleCache::save`] /
/// [`ScheduleCache::load`] / [`ScheduleCache::merge`], across processes).
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    config: ServeConfig,
    engine: ServeEngine,
}

impl ServeRuntime {
    /// Creates a runtime with an empty schedule cache.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self::with_cache(config, ScheduleCache::new())
    }

    /// Creates a runtime warm-started with an existing cache.
    #[must_use]
    pub fn with_cache(config: ServeConfig, cache: ScheduleCache) -> Self {
        let engine = ServeEngine::with_cache(config.clone().into(), cache);
        Self { config, engine }
    }

    /// The runtime's configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared schedule cache.
    #[must_use]
    pub fn cache(&self) -> &ScheduleCache {
        self.engine.cache()
    }

    /// Mutable access to the shared schedule cache (e.g. to merge a shard).
    pub fn cache_mut(&mut self) -> &mut ScheduleCache {
        self.engine.cache_mut()
    }

    /// Consumes the runtime, returning its cache (for persistence).
    #[must_use]
    pub fn into_cache(self) -> ScheduleCache {
        self.engine.into_cache()
    }

    /// The telemetry captured by the most recent
    /// [`run_trace`](Self::run_trace) call, or `None` when recording is
    /// disabled
    /// ([`ServeConfig::telemetry`]) or nothing has run yet.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.engine.telemetry()
    }

    /// Replays a request trace and returns the aggregate report.
    ///
    /// The report is a pure function of the requests, the configuration and
    /// the cache contents (the cache changes *wall-clock* planning cost,
    /// never results).
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if a batch that passed admission
    /// fails to build or simulate (this indicates an infeasibility the
    /// admission check cannot see; rejected requests never reach planning).
    pub fn run_trace(&mut self, requests: &[ServeRequest]) -> Result<ServeReport> {
        let report = self
            .engine
            .run(requests, &mas_workloads::DecodeTrace::empty())?;
        Ok(report.prefill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RequestOutcome;
    use mas_dataflow::{AttentionWorkload, DataflowKind};

    fn small_config() -> ServeConfig {
        ServeConfig::default()
    }

    fn reqs(n: usize, gap_s: f64) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::new(
                    i as u64,
                    i as f64 * gap_s,
                    DataflowKind::MasAttention,
                    AttentionWorkload::new("toy", 1, 2, 128, 64),
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn identical_requests_share_one_plan() {
        let mut rt = ServeRuntime::new(small_config());
        let report = rt.run_trace(&reqs(6, 1e-5)).unwrap();
        assert_eq!(report.completed(), 6);
        assert_eq!(report.cache_misses, 1, "one shape → one planning run");
        assert_eq!(rt.cache().len(), 1);
        assert!(report.makespan_s > 0.0);
        assert!(report.total_energy_pj > 0.0);
    }

    #[test]
    fn a_second_replay_is_all_hits_and_identical() {
        let mut rt = ServeRuntime::new(small_config());
        let stream = reqs(5, 1e-4);
        let cold = rt.run_trace(&stream).unwrap();
        let warm = rt.run_trace(&stream).unwrap();
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, warm.batches);
        // The cache changes planning cost (and the hit flags), never results.
        let strip = |r: &ServeReport| -> Vec<RequestOutcome> {
            r.outcomes
                .iter()
                .cloned()
                .map(|mut o| {
                    o.cache_hit = false;
                    o
                })
                .collect()
        };
        assert_eq!(strip(&warm), strip(&cold));
        assert_eq!(warm.makespan_s, cold.makespan_s);
        assert_eq!(warm.total_energy_pj, cold.total_energy_pj);
    }

    #[test]
    fn queueing_latency_grows_under_a_burst() {
        let mut config = small_config();
        config.batching.window_s = 0.0; // no coalescing: requests serialize
        let mut rt = ServeRuntime::new(config);
        let burst: Vec<ServeRequest> = (0..4)
            .map(|i| {
                ServeRequest::new(
                    i,
                    0.0,
                    DataflowKind::Flat,
                    AttentionWorkload::new("toy", 1, 2, 128, 64),
                    None,
                )
            })
            .collect();
        let report = rt.run_trace(&burst).unwrap();
        assert_eq!(report.batches, 4);
        let mut latencies: Vec<f64> = report
            .outcomes
            .iter()
            .map(RequestOutcome::latency_s)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Head-of-line service vs. tail: 4 serialized identical services.
        let service = report.outcomes[0].service_s;
        assert!((latencies[0] - service).abs() < 1e-9);
        assert!((latencies[3] - 4.0 * service).abs() < 1e-9);
    }

    #[test]
    fn extra_devices_cut_the_makespan() {
        let mk = |devices: usize| {
            let mut config = small_config();
            config.batching.window_s = 0.0;
            config.devices = devices;
            let mut rt = ServeRuntime::new(config);
            rt.run_trace(&reqs(4, 0.0)).unwrap().makespan_s
        };
        let one = mk(1);
        let two = mk(2);
        assert!(
            two < one,
            "two devices ({two} s) must beat one ({one} s) on a 4-burst"
        );
    }

    #[test]
    fn sustained_overload_sheds_load_at_the_estimated_backlog_bound() {
        // Offered load far above device capacity: a tight estimated-backlog
        // bound must start rejecting once the launch queue falls behind,
        // instead of growing latency without bound.
        let mut config = small_config();
        config.batching.window_s = 0.0; // no coalescing: pure queueing
        config.admission.max_est_queue_s = Some(2e-4);
        let mut rt = ServeRuntime::new(config);
        // 50 simultaneous BERT-Small requests; each takes ~100 µs+, so the
        // estimated queue blows through 200 µs after a handful of launches.
        let burst: Vec<ServeRequest> = (0..50)
            .map(|i| {
                ServeRequest::new(
                    i,
                    0.0,
                    DataflowKind::MasAttention,
                    AttentionWorkload::new("BERT-Small", 1, 8, 512, 64),
                    None,
                )
            })
            .collect();
        let report = rt.run_trace(&burst).unwrap();
        assert!(
            !report.rejected.is_empty(),
            "overload must shed load: {}",
            report.summary()
        );
        assert!(report.completed() > 0, "head of the queue is still served");
        assert!(report
            .rejected
            .iter()
            .all(|r| r.reason == crate::queue::RejectReason::QueueFull));
        // The head of the line was admitted, the tail shed.
        let max_completed_id = report.outcomes.iter().map(|o| o.id).max().unwrap();
        let min_rejected_id = report.rejected.iter().map(|r| r.id).min().unwrap();
        assert!(min_rejected_id > 0);
        assert_eq!(
            max_completed_id + u64::try_from(report.rejected.len()).unwrap(),
            49
        );
    }

    #[test]
    fn rejected_requests_never_reach_planning() {
        let mut config = small_config();
        config.admission.max_queue_depth = Some(1);
        config.batching.window_s = 1.0;
        config.batching.max_batch = 100;
        let mut rt = ServeRuntime::new(config);
        let report = rt.run_trace(&reqs(3, 0.0)).unwrap();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.rejected.len(), 2);
        assert_eq!(report.completed() + report.rejected.len(), 3);
    }
}
