//! Autoregressive decode serving: KV-resident sessions and batched steps.
//!
//! The prefill path ([`crate::runtime`]) serves independent fixed-shape
//! requests. Decode traffic is different in kind: a *session* opens with a
//! prompt already in its KV cache, then issues one step request per generated
//! token, and every step depends on the session's cached `K`/`V` rows staying
//! resident on the device. This module adapts the serving pipeline to that
//! shape:
//!
//! * **Block-granular KV residency** — by default
//!   ([`DecodePolicy::kv_block_tokens`]) sessions charge the shared device
//!   KV budget ([`DecodePolicy::kv_budget_bytes`], defaulting to half of
//!   device DRAM) *as they actually grow*, in fixed-size token blocks
//!   (vLLM-style paged allocation, modeling
//!   `mas_tensor::paged::PagedKvCache` over a `KvBlockPool`). Admission
//!   screens only the first step's blocks; a later step that cannot get a
//!   new block is shed as a *pool overflow*
//!   ([`DecodeRejectReason::KvPoolExhausted`]) while its session keeps
//!   decoding at its old residency. The legacy policy
//!   (`kv_block_tokens: None`) reserves worst-case *max-context* bytes per
//!   session up front — the over-reservation that caps concurrency, kept
//!   for comparison and pinned by the paged-admission tests. Either way,
//!   charged bytes release when the session's last step completes.
//! * **Grouped-query head sharing** — sessions carry
//!   `kv_heads ≤ heads` shared K/V heads
//!   ([`mas_workloads::DecodeSessionSpec::kv_heads`]); residency and
//!   cache-stream traffic shrink by `kv_heads / heads` (Llama3-8B decodes
//!   at a quarter of its MHA KV bytes). Invalid groupings reject the
//!   session at admission instead of panicking.
//! * **Cross-session step batching** — step requests that share a
//!   `(heads, kv_heads, embed)` shape and arrive within
//!   [`DecodePolicy::window_s`] coalesce into one batched launch (each
//!   session contributes its own query row and cache; the slices are
//!   independent, like the `(batch, head)` slices of a merged prefill
//!   workload). Batching amortizes the per-launch issue overhead — the
//!   dominant cost of single-token kernels.
//! * **Decode cost model** — a launch's service time is the physical bound
//!   of its summed per-step work (MAC, VEC and DRAM components from
//!   [`DecodeStep`], each linear in the member's context length) plus one
//!   issue overhead, replayed on the earliest-free virtual device exactly
//!   like prefill batches.
//!
//! The numerical kernel this models is `mas_tensor::decode::decode_attention`
//! over a `mas_tensor::decode::KvCache` (contiguous) or
//! `mas_tensor::paged::decode_attention_paged` over a block table (paged,
//! bit-identical); the differential test harnesses pin both step-by-step
//! against the full-prefill oracle.

use serde::{Deserialize, Serialize};

use mas_dataflow::decode::{DecodeStep, PrefillChunk};
use mas_dataflow::{KvDtype, StreamDemand};
use mas_sim::HardwareConfig;
use mas_workloads::DecodeTrace;

use mas_attention::PlannerConfig;

use crate::engine::{EngineConfig, ServeEngine};
use crate::metrics::{percentile, LatencyStats};

/// Why a decode session or step was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeRejectReason {
    /// The session's step working set cannot run on the device at all
    /// (streaming footprint over L1, KV cache over device DRAM, or an
    /// invalid grouped-query head configuration).
    InfeasibleSession,
    /// Admitting the session's *initial* KV residency (max context under
    /// legacy charging, the first step's blocks under paged charging) would
    /// exceed the device KV budget.
    KvBudgetExceeded,
    /// The concurrent-session limit was reached.
    SessionLimit,
    /// The per-step deadline is below the step's physical service-time lower
    /// bound, so it would be missed even on an idle device.
    DeadlineImpossible,
    /// The step references a session id absent from the trace's session
    /// table (a malformed or partially assembled trace).
    UnknownSession,
    /// Under paged charging: the step needed a new KV block but the shared
    /// block pool is exhausted — a pool overflow. The session keeps its
    /// existing blocks; only this step is shed.
    KvPoolExhausted,
}

impl DecodeRejectReason {
    /// Stable snake_case identifier for machine-readable output (Prometheus
    /// label values, trace-event args). Distinct per variant and free of
    /// spaces, unlike the prose [`Display`](std::fmt::Display) form.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DecodeRejectReason::InfeasibleSession => "infeasible_session",
            DecodeRejectReason::KvBudgetExceeded => "kv_budget_exceeded",
            DecodeRejectReason::SessionLimit => "session_limit",
            DecodeRejectReason::DeadlineImpossible => "deadline_impossible",
            DecodeRejectReason::UnknownSession => "unknown_session",
            DecodeRejectReason::KvPoolExhausted => "kv_pool_exhausted",
        }
    }
}

impl std::fmt::Display for DecodeRejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DecodeRejectReason::InfeasibleSession => "infeasible session",
            DecodeRejectReason::KvBudgetExceeded => "KV budget exceeded",
            DecodeRejectReason::SessionLimit => "session limit reached",
            DecodeRejectReason::DeadlineImpossible => {
                "deadline below decode service-time lower bound"
            }
            DecodeRejectReason::UnknownSession => "unknown session id",
            DecodeRejectReason::KvPoolExhausted => "shared KV block pool exhausted",
        })
    }
}

/// Decode admission and batching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodePolicy {
    /// Device bytes available for resident KV caches. `None` defaults to
    /// half of device DRAM (the other half is headroom for operands and
    /// prefill traffic).
    pub kv_budget_bytes: Option<u64>,
    /// Maximum concurrently open sessions. `None` disables the bound (the
    /// KV budget is then the only residency limit).
    pub max_sessions: Option<usize>,
    /// Step-coalescing window in seconds: a launch dispatches at
    /// `first_step_arrival + window_s` at the latest. `0.0` disables
    /// batching (every step launches alone).
    pub window_s: f64,
    /// Maximum member steps per launch; a launch dispatches as soon as it
    /// reaches this size.
    pub max_steps_per_launch: usize,
    /// Uniform per-step latency SLO relative to the step's arrival
    /// (`None` = best effort). Steps whose SLO is below the physical lower
    /// bound at their context length are rejected up front.
    pub step_deadline_s: Option<f64>,
    /// KV-cache streaming granularity (rows per sub-tile) used for the L1
    /// footprint feasibility screen.
    pub kv_tile_rows: usize,
    /// KV residency charging granularity. `Some(block_tokens)` charges the
    /// shared block pool on *actual growth*: a session pays for the blocks
    /// its current context occupies (`DecodeStep::paged_kv_bytes`), admission
    /// screens only the first step's blocks, and a step that cannot get a
    /// new block is shed with [`DecodeRejectReason::KvPoolExhausted`] (a
    /// *pool overflow*) while the session keeps decoding at its old
    /// residency. `None` is the legacy contiguous policy: reserve worst-case
    /// max-context bytes for the whole session lifetime.
    pub kv_block_tokens: Option<usize>,
    /// KV storage dtype used to price residency charges and the cache-stream
    /// term of launch costing. `None` inherits the device element size
    /// (`hw.element_bytes`); `Some(KvDtype::F16)` prices KV at 2 bytes per
    /// element — halving residency charges relative to f32 activations and
    /// admitting ~2× the sessions under the same budget. The compute dtype
    /// is unchanged (kernels widen KV tiles to f32).
    #[serde(default)]
    pub kv_dtype: Option<KvDtype>,
    /// Cross-session KV prefix sharing. When `true` and a session declares a
    /// prefix group (`DecodeSessionSpec::prefix_group`), the whole blocks of
    /// its shared prefix ([`DecodeStep::shared_kv_bytes`]) are charged
    /// against the budget *once per group* instead of once per session —
    /// modeling the pool-level radix index + copy-on-write block tables of
    /// `mas_tensor::paged`. Requires paged charging (`kv_block_tokens`);
    /// ignored (fully private residency) under legacy contiguous charging.
    /// Default `false` keeps every existing replay bit-identical.
    #[serde(default)]
    pub prefix_share: bool,
}

impl Default for DecodePolicy {
    fn default() -> Self {
        Self {
            kv_budget_bytes: None,
            max_sessions: None,
            window_s: 2e-3,
            max_steps_per_launch: 16,
            step_deadline_s: None,
            kv_tile_rows: 64,
            kv_block_tokens: Some(16),
            kv_dtype: None,
            prefix_share: false,
        }
    }
}

impl DecodePolicy {
    /// The effective KV budget on `hw` (explicit bytes, or half of DRAM).
    #[must_use]
    pub fn kv_budget(&self, hw: &HardwareConfig) -> u64 {
        self.kv_budget_bytes.unwrap_or(hw.dram_bytes as u64 / 2)
    }

    /// The launch-size cap the engine actually enforces: a degenerate
    /// `max_steps_per_launch == 0` clamps to 1 (every step launches alone),
    /// exactly like the `kv_block_tokens == 0` → one-token-blocks
    /// normalization. This is the *single* normalization site — the engine
    /// must never re-derive the clamp inline, so the replayed policy and
    /// the telemetry-reconstructed one can't drift.
    #[must_use]
    pub fn effective_max_steps_per_launch(&self) -> usize {
        self.max_steps_per_launch.max(1)
    }

    /// Bytes per stored KV element under this policy on `hw`: the explicit
    /// [`DecodePolicy::kv_dtype`]'s width, or the device element size.
    #[must_use]
    pub fn kv_element_bytes(&self, hw: &HardwareConfig) -> usize {
        self.kv_dtype
            .map_or(hw.element_bytes, |dtype| dtype.element_bytes())
    }
}

/// Physical lower bound on the service time of one decode step on an idle
/// device: a solo [`launch_service_s`] — the largest of peak-throughput MAC
/// time, peak-throughput VEC (softmax) time and minimum DRAM traffic time,
/// plus one launch overhead. Queueing and batching delay only add to this,
/// so admission screening against it can never disagree with dispatch
/// costing.
#[must_use]
pub fn decode_step_lower_bound_s(step: &DecodeStep, hw: &HardwareConfig) -> f64 {
    launch_service_s(std::slice::from_ref(step), hw)
}

/// [`decode_step_lower_bound_s`] with the KV cache-stream term priced at
/// `kv_element_bytes` ([`StreamDemand::of_decode_step_with_kv`]): narrower
/// KV storage lowers the DRAM-bound floor of long-context steps.
#[must_use]
pub fn decode_step_lower_bound_s_with_kv(
    step: &DecodeStep,
    hw: &HardwareConfig,
    kv_element_bytes: usize,
) -> f64 {
    launch_service_s_with_kv(std::slice::from_ref(step), hw, kv_element_bytes)
}

/// Service time of one batched launch: member step work is summed per bound
/// component (each member streams its own KV cache and computes its own
/// query row), the binding component sets the time, and the launch pays one
/// issue overhead — which is what batching amortizes.
#[must_use]
pub fn launch_service_s(steps: &[DecodeStep], hw: &HardwareConfig) -> f64 {
    launch_service_s_with_kv(steps, hw, hw.element_bytes)
}

/// [`launch_service_s`] with every member's KV cache-stream term priced at
/// `kv_element_bytes` (see [`StreamDemand::of_decode_step_with_kv`]).
#[must_use]
pub fn launch_service_s_with_kv(
    steps: &[DecodeStep],
    hw: &HardwareConfig,
    kv_element_bytes: usize,
) -> f64 {
    let mut demand = StreamDemand::default();
    for step in steps {
        demand.accumulate(&StreamDemand::of_decode_step_with_kv(
            step,
            hw,
            kv_element_bytes,
        ));
    }
    demand.bound_seconds(hw) + hw.issue_overhead_cycles as f64 / hw.frequency_hz
}

/// Service time of one chunked-prefill chunk launch: the chunk's summed
/// causal-row demand ([`StreamDemand::of_prefill_chunk_with_kv`], the exact
/// closed-form sum of the decode steps it fuses) bounded by the binding
/// component, plus one issue overhead per chunk — which is the chunking
/// trade: more chunks bound the per-launch occupancy that stalls decode,
/// at one extra issue overhead each.
#[must_use]
pub fn prefill_chunk_service_s_with_kv(
    chunk: &PrefillChunk,
    hw: &HardwareConfig,
    kv_element_bytes: usize,
) -> f64 {
    StreamDemand::of_prefill_chunk_with_kv(chunk, hw, kv_element_bytes).bound_seconds(hw)
        + hw.issue_overhead_cycles as f64 / hw.frequency_hz
}

/// The fate of one completed decode step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecodeStepOutcome {
    /// The session the step belongs to.
    pub session_id: u64,
    /// Zero-based index of the step within its session.
    pub step_index: usize,
    /// Context length attended (prompt plus generated tokens so far,
    /// including this step's).
    pub context_len: usize,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Virtual time the step's launch started on its device.
    pub start_s: f64,
    /// Virtual time the step's launch completed.
    pub completion_s: f64,
    /// Simulated service time of the launch that carried this step.
    pub service_s: f64,
    /// The step's relative deadline, if any.
    pub deadline_s: Option<f64>,
    /// Whether the end-to-end step latency met the deadline (`true` when no
    /// deadline was set).
    pub deadline_met: bool,
    /// Creation-order id of the launch that carried this step.
    pub launch_id: u64,
    /// Virtual device the launch ran on.
    pub device: usize,
}

impl DecodeStepOutcome {
    /// End-to-end step latency: completion minus arrival.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// A decode step refused at admission (with its session's reason when the
/// whole session was rejected).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RejectedDecodeStep {
    /// The session the step belongs to.
    pub session_id: u64,
    /// Zero-based index of the step within its session.
    pub step_index: usize,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Why it was rejected.
    pub reason: DecodeRejectReason,
}

/// Aggregate result of replaying one decode trace. A pure function of the
/// trace, the policy and the hardware.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DecodeReport {
    /// Completed steps in launch order (members in arrival order).
    pub outcomes: Vec<DecodeStepOutcome>,
    /// Rejected steps in arrival order.
    pub rejected: Vec<RejectedDecodeStep>,
    /// Sessions rejected at open, with reasons, in open order.
    pub rejected_sessions: Vec<(u64, DecodeRejectReason)>,
    /// Sessions admitted.
    pub sessions_admitted: usize,
    /// Batched launches dispatched.
    pub launches: usize,
    /// Virtual time at which the last launch completed.
    pub makespan_s: f64,
    /// Peak bytes charged against the KV budget at once — allocated-block
    /// bytes under paged charging, worst-case reservations under legacy
    /// charging.
    pub kv_peak_bytes: u64,
    /// Peak KV blocks allocated at once across all sessions (zero under
    /// legacy charging, which has no block granularity).
    pub kv_peak_blocks: u64,
    /// Internal fragmentation at the charge peak: the fraction of charged
    /// bytes not holding an actual context token — partial-tail-block waste
    /// under paged charging, the full over-reservation under legacy
    /// charging.
    pub kv_frag_at_peak: f64,
    /// Seconds each virtual device spent busy with decode launches, indexed
    /// by device. Empty when no decode launch dispatched (so prefill-only
    /// engine runs keep this report equal to its default, as pinned).
    #[serde(default)]
    pub device_busy_s: Vec<f64>,
    /// Peak bytes of group-shared prefix blocks resident at once (charged
    /// once per prefix group). Zero unless `DecodePolicy::prefix_share` is
    /// on and some admitted session declared a prefix group.
    #[serde(default)]
    pub kv_shared_peak_bytes: u64,
    /// Sessions admitted with prefix sharing active (their shared prefix
    /// blocks were charged group-wide rather than privately).
    #[serde(default)]
    pub shared_sessions: usize,
}

impl DecodeReport {
    /// Number of completed steps.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Sustained decode throughput: completed steps per second of makespan.
    #[must_use]
    pub fn steps_per_s(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / self.makespan_s
    }

    /// Mean member steps per launch (the batching factor).
    #[must_use]
    pub fn mean_launch_size(&self) -> f64 {
        if self.launches == 0 {
            return 0.0;
        }
        self.completed() as f64 / self.launches as f64
    }

    /// Step latency at percentile `p` (nearest rank), or `None` with no
    /// completed steps.
    #[must_use]
    pub fn latency_percentile_s(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(DecodeStepOutcome::latency_s)
            .collect();
        percentile(&latencies, p)
    }

    /// The report's latency summary (count, mean, p50, p99), or `None` with
    /// no completed steps — the same [`LatencyStats`] type the prefill and
    /// engine reports expose.
    #[must_use]
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(DecodeStepOutcome::latency_s)
            .collect();
        LatencyStats::of(&latencies)
    }

    /// Completed steps that missed their deadline.
    #[must_use]
    pub fn deadline_missed(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.deadline_met).count()
    }

    /// Steps shed because the shared KV block pool was exhausted (pool
    /// overflows). Always zero under legacy max-context charging, which
    /// over-reserves instead.
    #[must_use]
    pub fn pool_overflows(&self) -> usize {
        self.rejected
            .iter()
            .filter(|r| r.reason == DecodeRejectReason::KvPoolExhausted)
            .count()
    }

    /// A compact human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let fmt_ms =
            |s: Option<f64>| s.map_or_else(|| "-".to_string(), |v| format!("{:.3} ms", v * 1e3));
        let mut out = format!(
            "decode: {} steps ({} sessions) / {} rejected in {} launches (mean {:.1} steps) | \
             {:.0} steps/s | latency p50 {} p99 {} | deadline misses {} | peak KV {:.1} MB \
             ({} blocks, {:.1}% frag) | pool overflows {}",
            self.completed(),
            self.sessions_admitted,
            self.rejected.len(),
            self.launches,
            self.mean_launch_size(),
            self.steps_per_s(),
            fmt_ms(self.latency_percentile_s(50.0)),
            fmt_ms(self.latency_percentile_s(99.0)),
            self.deadline_missed(),
            self.kv_peak_bytes as f64 / 1e6,
            self.kv_peak_blocks,
            self.kv_frag_at_peak * 100.0,
            self.pool_overflows(),
        );
        if self.shared_sessions > 0 {
            out.push_str(&format!(
                " | shared prefixes: {} sessions, {:.1} MB shared peak",
                self.shared_sessions,
                self.kv_shared_peak_bytes as f64 / 1e6,
            ));
        }
        if !self.device_busy_s.is_empty() {
            let per_device: Vec<String> = self
                .device_busy_s
                .iter()
                .enumerate()
                .map(|(d, &busy)| {
                    let pct = if self.makespan_s > 0.0 {
                        busy / self.makespan_s * 100.0
                    } else {
                        0.0
                    };
                    format!("d{d} {pct:.1}%")
                })
                .collect();
            out.push_str(&format!(" | busy {}", per_device.join(" ")));
        }
        out
    }
}

/// The decode serving runtime: replays a [`DecodeTrace`] with sticky KV
/// residency, cross-session step batching and the closed-form decode cost
/// model, on `devices` virtual devices.
///
/// Since the prefill/decode unification this is a thin shim over
/// [`ServeEngine`]: it runs the engine with an empty prefill stream and
/// returns the decode-class breakdown, which is bit-identical to the
/// pre-unification runtime (the engine's event loop performs the same
/// checks in the same order, and this module's behavioral tests pin it).
/// Use the engine directly to co-schedule decode with prefill traffic on
/// one timeline.
#[derive(Debug, Clone)]
pub struct DecodeRuntime {
    hw: HardwareConfig,
    policy: DecodePolicy,
    devices: usize,
}

impl DecodeRuntime {
    /// Creates a runtime for `hw` with the given policy on one device.
    #[must_use]
    pub fn new(hw: HardwareConfig, policy: DecodePolicy) -> Self {
        Self {
            hw,
            policy,
            devices: 1,
        }
    }

    /// Sets the number of virtual devices launches replay across.
    #[must_use]
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// The runtime's policy.
    #[must_use]
    pub fn policy(&self) -> &DecodePolicy {
        &self.policy
    }

    /// Replays a decode trace and returns the aggregate report. The report
    /// is a pure function of the trace, the policy and the hardware.
    #[must_use]
    pub fn run_trace(&self, trace: &DecodeTrace) -> DecodeReport {
        let config = EngineConfig {
            planner: PlannerConfig {
                hardware: self.hw.clone(),
                ..PlannerConfig::default()
            },
            decode: self.policy,
            devices: self.devices,
            ..EngineConfig::default()
        };
        ServeEngine::new(config)
            .run(&[], trace)
            .expect("decode-only streams never plan and so never fail")
            .decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_workloads::{
        decode_trace, DecodeSessionSpec, DecodeStepEvent, DecodeTraceConfig, Network,
    };

    fn hw() -> HardwareConfig {
        HardwareConfig::edge_default()
    }

    /// A hand-built trace: `sessions` sessions of `steps` steps each, step i
    /// of every session arriving at `i * gap_s` (cross-session simultaneous).
    fn lockstep_trace(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
        let specs: Vec<DecodeSessionSpec> = (0..sessions)
            .map(|id| DecodeSessionSpec {
                id,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: prompt,
                steps,
                prefix_group: None,
                shared_prefix_len: 0,
            })
            .collect();
        let mut events = Vec::new();
        for step_index in 0..steps {
            for id in 0..sessions {
                events.push(DecodeStepEvent {
                    session_id: id,
                    step_index,
                    arrival_s: step_index as f64 * gap_s + 1e-9,
                });
            }
        }
        DecodeTrace {
            sessions: specs,
            steps: events,
        }
    }

    #[test]
    fn lower_bound_grows_linearly_with_context() {
        let hw = hw();
        let short = DecodeStep::new("s", 1, 8, 128, 64);
        let long = short.with_context(1024);
        let lb_short = decode_step_lower_bound_s(&short, &hw);
        let lb_long = decode_step_lower_bound_s(&long, &hw);
        assert!(lb_long > lb_short);
        // Linear in context up to the fixed launch overhead.
        let overhead = hw.issue_overhead_cycles as f64 / hw.frequency_hz;
        let ratio = (lb_long - overhead) / (lb_short - overhead);
        assert!((ratio - 8.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn batched_launch_beats_solo_launches() {
        let hw = hw();
        let steps: Vec<DecodeStep> = (0..8)
            .map(|i| DecodeStep::new("s", 1, 8, 128 + i, 64))
            .collect();
        let batched = launch_service_s(&steps, &hw);
        let solo: f64 = steps
            .iter()
            .map(|s| launch_service_s(std::slice::from_ref(s), &hw))
            .sum();
        assert!(
            batched < solo,
            "batched {batched} must beat serial solo {solo}"
        );
    }

    #[test]
    fn lockstep_sessions_batch_into_shared_launches() {
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(report.completed(), 24);
        assert_eq!(report.sessions_admitted, 4);
        assert!(report.rejected.is_empty());
        // Four simultaneous same-shape steps share one launch per tick.
        assert_eq!(report.launches, 6);
        assert!((report.mean_launch_size() - 4.0).abs() < 1e-12);
        // Context grows by one per step.
        let first = report.outcomes.iter().find(|o| o.step_index == 0).unwrap();
        let last = report.outcomes.iter().find(|o| o.step_index == 5).unwrap();
        assert_eq!(first.context_len, 33);
        assert_eq!(last.context_len, 38);
    }

    #[test]
    fn kv_budget_sheds_whole_sessions() {
        // Each session: 2 * 8 heads * 64 embed * 38 tokens * 2 B = ~77.8 kB.
        let per_session = DecodeStep::new("s", 1, 8, 38, 64).kv_cache_bytes(hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(2 * per_session + per_session / 2),
            // Legacy contiguous charging: this test pins whole-session
            // max-context shedding.
            kv_block_tokens: None,
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 2);
        assert_eq!(report.rejected_sessions.len(), 2);
        assert!(report
            .rejected_sessions
            .iter()
            .all(|(_, r)| *r == DecodeRejectReason::KvBudgetExceeded));
        // Every step of a rejected session is rejected; admitted ones all run.
        assert_eq!(report.completed(), 12);
        assert_eq!(report.rejected.len(), 12);
        assert!(report.kv_peak_bytes <= policy.kv_budget(&hw()));
    }

    #[test]
    fn f16_kv_policy_charges_half_and_admits_double() {
        // Same trace, same budget: pricing KV at f16 (2 B) instead of f32
        // (4 B) halves each session's worst-case reservation, so twice the
        // sessions fit. The budget is sized for exactly two f32 sessions.
        let per_session_f32 = DecodeStep::new("s", 1, 8, 38, 64).kv_cache_bytes(4);
        let base = DecodePolicy {
            kv_budget_bytes: Some(2 * per_session_f32 + per_session_f32 / 2),
            kv_block_tokens: None,
            kv_dtype: Some(KvDtype::F32),
            ..DecodePolicy::default()
        };
        let half = DecodePolicy {
            kv_dtype: Some(KvDtype::F16),
            ..base
        };
        assert_eq!(base.kv_element_bytes(&hw()), 4);
        assert_eq!(half.kv_element_bytes(&hw()), 2);
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let f32_report = DecodeRuntime::new(hw(), base).run_trace(&trace);
        let f16_report = DecodeRuntime::new(hw(), half).run_trace(&trace);
        assert_eq!(f32_report.sessions_admitted, 2);
        assert_eq!(f16_report.sessions_admitted, 4);
        assert!(f16_report.rejected.is_empty());
        // Charges are exactly half per admitted session.
        assert_eq!(f16_report.kv_peak_bytes, f32_report.kv_peak_bytes);
        assert_eq!(f32_report.completed(), 12);
        assert_eq!(f16_report.completed(), 24);
    }

    #[test]
    fn kv_bytes_release_when_a_session_finishes() {
        // Session 0 finishes its 2 steps early; session 1 opens much later
        // and must reuse the released budget.
        let specs = vec![
            DecodeSessionSpec {
                id: 0,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
                prefix_group: None,
                shared_prefix_len: 0,
            },
            DecodeSessionSpec {
                id: 1,
                network: Network::BertSmall,
                start_s: 1.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
                prefix_group: None,
                shared_prefix_len: 0,
            },
        ];
        let mut events = Vec::new();
        for (id, base) in [(0u64, 0.0f64), (1, 1.0)] {
            for step_index in 0..2 {
                events.push(DecodeStepEvent {
                    session_id: id,
                    step_index,
                    arrival_s: base + step_index as f64 * 0.01,
                });
            }
        }
        let trace = DecodeTrace {
            sessions: specs,
            steps: events,
        };
        let per_session = DecodeStep::new("s", 1, 8, 34, 64).kv_cache_bytes(hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(per_session), // room for exactly one at a time
            kv_block_tokens: None,              // legacy max-context charging
            ..DecodePolicy::default()
        };
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 2, "{}", report.summary());
        assert!(report.rejected_sessions.is_empty());
        assert_eq!(report.completed(), 4);
        assert_eq!(report.kv_peak_bytes, per_session);
    }

    #[test]
    fn session_limit_bounds_concurrency() {
        let policy = DecodePolicy {
            max_sessions: Some(3),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(5, 2, 16, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 3);
        assert!(report
            .rejected_sessions
            .iter()
            .all(|(_, r)| *r == DecodeRejectReason::SessionLimit));
    }

    #[test]
    fn impossible_step_deadlines_are_screened() {
        let policy = DecodePolicy {
            step_deadline_s: Some(1e-12),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(1, 3, 16, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.rejected.len(), 3);
        assert!(report
            .rejected
            .iter()
            .all(|r| r.reason == DecodeRejectReason::DeadlineImpossible));
    }

    #[test]
    fn generous_deadlines_are_met_under_light_load() {
        let policy = DecodePolicy {
            step_deadline_s: Some(0.5),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(2, 4, 16, 0.05);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.completed(), 8);
        assert_eq!(report.deadline_missed(), 0);
    }

    #[test]
    fn infeasible_sessions_are_rejected_up_front() {
        let specs = vec![DecodeSessionSpec {
            id: 0,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 32,
            kv_heads: 32,
            embed: 128,
            prompt_len: 1 << 28, // ~2 TB of KV at max context
            steps: 1,
            prefix_group: None,
            shared_prefix_len: 0,
        }];
        let trace = DecodeTrace {
            sessions: specs,
            steps: vec![DecodeStepEvent {
                session_id: 0,
                step_index: 0,
                arrival_s: 0.0,
            }],
        };
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(
            report.rejected_sessions,
            vec![(0, DecodeRejectReason::InfeasibleSession)]
        );
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn deadline_rejected_sessions_still_release_their_kv() {
        // Session 0's steps are all screened out (impossible deadline), so
        // its KV must be released; session 1 opens later with a budget sized
        // for one session and must be admitted.
        let specs = vec![
            DecodeSessionSpec {
                id: 0,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
                prefix_group: None,
                shared_prefix_len: 0,
            },
            DecodeSessionSpec {
                id: 1,
                network: Network::BertSmall,
                start_s: 1.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
                prefix_group: None,
                shared_prefix_len: 0,
            },
        ];
        let mut events = Vec::new();
        for (id, base) in [(0u64, 0.0f64), (1, 1.0)] {
            for step_index in 0..2 {
                events.push(DecodeStepEvent {
                    session_id: id,
                    step_index,
                    arrival_s: base + step_index as f64 * 0.01,
                });
            }
        }
        let trace = DecodeTrace {
            sessions: specs,
            steps: events,
        };
        let per_session = DecodeStep::new("s", 1, 8, 34, 64).kv_cache_bytes(hw().element_bytes);
        // A deadline only the *short-context* session-1 steps could meet is
        // hard to construct; instead make every step impossible and assert
        // session 1 is admitted (KV freed) even though all steps reject.
        let policy = DecodePolicy {
            kv_budget_bytes: Some(per_session),
            step_deadline_s: Some(1e-12),
            kv_block_tokens: None, // legacy max-context charging
            ..DecodePolicy::default()
        };
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(
            report.sessions_admitted,
            2,
            "session 0's KV must release when its steps are all screened: {}",
            report.summary()
        );
        assert!(report.rejected_sessions.is_empty());
        assert_eq!(report.rejected.len(), 4);
    }

    #[test]
    fn malformed_traces_are_rejected_not_panicked() {
        // A step referencing a session id absent from the table, and a
        // session whose first event is mid-stream (step_index > 0).
        let trace = DecodeTrace {
            sessions: vec![DecodeSessionSpec {
                id: 0,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 16,
                steps: 3,
                prefix_group: None,
                shared_prefix_len: 0,
            }],
            steps: vec![
                DecodeStepEvent {
                    session_id: 99,
                    step_index: 0,
                    arrival_s: 0.0,
                },
                DecodeStepEvent {
                    session_id: 0,
                    step_index: 1, // resumed mid-session: admitted here
                    arrival_s: 0.01,
                },
            ],
        };
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(
            report.rejected[0].reason,
            DecodeRejectReason::UnknownSession
        );
        assert_eq!(report.completed(), 1, "the mid-stream session still runs");
        assert_eq!(report.outcomes[0].context_len, 16 + 1 + 1);
        assert_eq!(report.sessions_admitted, 1);
    }

    #[test]
    fn zero_max_steps_per_launch_normalizes_to_one() {
        // The single normalization site (satellite of the chunked-prefill
        // PR): a degenerate 0 behaves exactly like 1, and the engine replay
        // under both policies is identical.
        let zero = DecodePolicy {
            max_steps_per_launch: 0,
            ..DecodePolicy::default()
        };
        let one = DecodePolicy {
            max_steps_per_launch: 1,
            ..DecodePolicy::default()
        };
        assert_eq!(zero.effective_max_steps_per_launch(), 1);
        assert_eq!(one.effective_max_steps_per_launch(), 1);
        assert_eq!(
            DecodePolicy::default().effective_max_steps_per_launch(),
            DecodePolicy::default().max_steps_per_launch
        );
        let trace = lockstep_trace(3, 4, 16, 0.01);
        let with_zero = DecodeRuntime::new(hw(), zero).run_trace(&trace);
        let with_one = DecodeRuntime::new(hw(), one).run_trace(&trace);
        assert_eq!(with_zero, with_one);
        // Size-1 launches: nothing ever coalesces.
        assert_eq!(with_zero.launches, with_zero.completed());
    }

    #[test]
    fn chunk_service_time_matches_its_fused_decode_steps() {
        // A chunk's service time is the fused decode chain's demand bound
        // plus ONE issue overhead (that is the fusion saving), priced under
        // any KV dtype.
        let hw = hw();
        let chunk = PrefillChunk::new(1, 8, 64, 16, 64);
        for kv_eb in [hw.element_bytes, hw.element_bytes / 2] {
            let fused = prefill_chunk_service_s_with_kv(&chunk, &hw, kv_eb);
            let chain = launch_service_s_with_kv(&chunk.decode_steps(), &hw, kv_eb);
            assert!((fused - chain).abs() < 1e-15, "fused {fused} chain {chain}");
        }
        // More chunks over the same prompt slice can only add issue
        // overheads.
        let whole = prefill_chunk_service_s_with_kv(
            &PrefillChunk::new(1, 8, 0, 128, 64),
            &hw,
            hw.element_bytes,
        );
        let halves = prefill_chunk_service_s_with_kv(
            &PrefillChunk::new(1, 8, 0, 64, 64),
            &hw,
            hw.element_bytes,
        ) + prefill_chunk_service_s_with_kv(
            &PrefillChunk::new(1, 8, 64, 64, 64),
            &hw,
            hw.element_bytes,
        );
        assert!(halves > whole);
    }

    #[test]
    fn lower_bound_is_a_solo_launch() {
        let hw = hw();
        let step = DecodeStep::new("s", 1, 8, 333, 64);
        assert_eq!(
            decode_step_lower_bound_s(&step, &hw),
            launch_service_s(std::slice::from_ref(&step), &hw)
        );
    }

    #[test]
    fn generated_traces_replay_deterministically() {
        let cfg =
            DecodeTraceConfig::poisson(vec![Network::BertSmall, Network::T5Mini], 20, 200.0, 9);
        let trace = decode_trace(&cfg);
        let runtime = DecodeRuntime::new(hw(), DecodePolicy::default());
        let a = runtime.run_trace(&trace);
        let b = runtime.run_trace(&trace);
        assert_eq!(a, b);
        assert_eq!(a.completed() + a.rejected.len(), trace.total_steps());
        assert!(a.steps_per_s() > 0.0);
        assert!(a.latency_percentile_s(50.0).unwrap() <= a.latency_percentile_s(99.0).unwrap());
        let s = a.summary();
        assert!(s.contains("steps/s"));
    }

    #[test]
    fn zero_window_disables_batching() {
        let policy = DecodePolicy {
            window_s: 0.0,
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(3, 2, 16, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.launches, 6, "every step launches alone");
        assert!((report.mean_launch_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_devices_cut_decode_makespan() {
        let policy = DecodePolicy {
            window_s: 0.0,
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(6, 4, 512, 0.0);
        let one = DecodeRuntime::new(hw(), policy)
            .run_trace(&trace)
            .makespan_s;
        let two = DecodeRuntime::new(hw(), policy)
            .with_devices(2)
            .run_trace(&trace)
            .makespan_s;
        assert!(two < one, "two devices ({two} s) must beat one ({one} s)");
    }

    #[test]
    fn paged_charging_grows_with_actual_context_not_max() {
        // One session, prompt 8, 4 steps, 16-token blocks: the charge starts
        // at one block (context 9) and never reaches the max-context
        // worst case the legacy policy would reserve.
        let trace = lockstep_trace(1, 4, 8, 0.01);
        let step_at = |t: usize| DecodeStep::new("s", 1, 8, t, 64);
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(report.completed(), 4);
        assert_eq!(report.pool_overflows(), 0);
        // Context ends at 12 tokens: still one 16-token block.
        assert_eq!(report.kv_peak_blocks, 1);
        assert_eq!(
            report.kv_peak_bytes,
            step_at(12).kv_block_bytes(16, hw().element_bytes)
        );
        let legacy = step_at(12).kv_cache_bytes(hw().element_bytes);
        assert!(report.kv_peak_bytes <= 2 * legacy);
        // Fragmentation at peak: 12 of 16 slots used.
        assert!((report.kv_frag_at_peak - 4.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn paged_pool_overflow_sheds_steps_not_sessions() {
        // Budget of exactly two 16-token blocks per the session's shape: the
        // session is admitted (first step needs one block) and decodes until
        // context crosses 32 tokens, after which every step that needs a
        // third block is shed as a pool overflow.
        let block = DecodeStep::new("s", 1, 8, 1, 64).kv_block_bytes(16, hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(2 * block),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(1, 30, 8, 0.01); // context 9..=38
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 1);
        assert!(report.rejected_sessions.is_empty(), "sessions are kept");
        // Steps up to context 32 run: contexts 9..=32 are steps 0..=23.
        assert_eq!(report.completed(), 24);
        assert_eq!(report.pool_overflows(), 6);
        assert!(report
            .rejected
            .iter()
            .all(|r| r.reason == DecodeRejectReason::KvPoolExhausted));
        assert_eq!(report.kv_peak_bytes, 2 * block);
        assert_eq!(report.kv_peak_blocks, 2);
        assert!(report.kv_peak_bytes <= policy.kv_budget(&hw()));
    }

    #[test]
    fn deadline_screened_steps_do_not_keep_blocks() {
        // Impossible deadline: every step is screened out before it
        // generates a token, so under paged charging no step may grow the
        // session's block allocation past the admission-time charge.
        let policy = DecodePolicy {
            step_deadline_s: Some(1e-12),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(1, 40, 8, 0.01); // context would reach 48
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.rejected.len(), 40);
        // Admission charged ceil(9 / 16) = 1 block; screened steps added
        // none (pre-fix this grew to ceil(48 / 16) = 3).
        assert_eq!(report.kv_peak_blocks, 1);
    }

    #[test]
    fn gqa_sessions_charge_fewer_kv_bytes() {
        // Same trace shape, one MHA (8/8) and one GQA (8/2) session set: the
        // grouped sessions' peak charge is a quarter of the MHA one.
        let mk_trace = |kv_heads: usize| {
            let mut t = lockstep_trace(2, 4, 32, 0.01);
            for s in &mut t.sessions {
                s.kv_heads = kv_heads;
            }
            t
        };
        let runtime = DecodeRuntime::new(hw(), DecodePolicy::default());
        let mha = runtime.run_trace(&mk_trace(8));
        let gqa = runtime.run_trace(&mk_trace(2));
        assert_eq!(mha.completed(), gqa.completed());
        assert_eq!(gqa.kv_peak_bytes * 4, mha.kv_peak_bytes);
        // GQA steps stream less DRAM, so they can only be faster.
        assert!(gqa.makespan_s <= mha.makespan_s);
    }

    #[test]
    fn zero_block_tokens_degrades_to_per_token_charging_not_a_free_pass() {
        // A degenerate Some(0) policy must not zero out block bytes and
        // bypass the budget: it clamps to one-token blocks, so a budget
        // sized for one session still sheds the rest.
        let per_session = DecodeStep::new("s", 1, 8, 38, 64).kv_cache_bytes(hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(per_session),
            kv_block_tokens: Some(0),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert!(report.sessions_admitted < 4, "{}", report.summary());
        assert!(report.kv_peak_bytes > 0);
        assert!(report.kv_peak_bytes <= per_session);
        // Behaves exactly like one-token blocks.
        let one = DecodePolicy {
            kv_block_tokens: Some(1),
            ..policy
        };
        let with_one = DecodeRuntime::new(hw(), one).run_trace(&trace);
        assert_eq!(report.outcomes, with_one.outcomes);
        assert_eq!(report.kv_peak_bytes, with_one.kv_peak_bytes);
    }

    #[test]
    fn invalid_head_grouping_rejects_the_session_not_panics() {
        let mut trace = lockstep_trace(1, 2, 16, 0.01);
        trace.sessions[0].kv_heads = 3; // 8 % 3 != 0
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(
            report.rejected_sessions,
            vec![(0, DecodeRejectReason::InfeasibleSession)]
        );
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn paged_and_legacy_charging_complete_the_same_steps_without_pressure() {
        // With an unconstrained budget the charging policy must not change
        // scheduling: identical outcomes, only the residency accounting
        // differs.
        let mut trace = lockstep_trace(3, 5, 40, 0.01);
        // Sessions *declare* a long generation budget but the trace only
        // replays 5 steps — legacy charging reserves the declared worst
        // case, paged charging only the blocks actually grown into.
        for s in &mut trace.sessions {
            s.steps = 100;
        }
        let paged = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        let legacy_policy = DecodePolicy {
            kv_block_tokens: None,
            ..DecodePolicy::default()
        };
        let legacy = DecodeRuntime::new(hw(), legacy_policy).run_trace(&trace);
        assert_eq!(paged.outcomes, legacy.outcomes);
        assert_eq!(paged.launches, legacy.launches);
        assert!(paged.kv_peak_bytes < legacy.kv_peak_bytes);
        assert_eq!(legacy.kv_peak_blocks, 0, "legacy charging has no blocks");
        // Legacy fragmentation exposes the over-reservation: most of the
        // worst-case charge is not yet actual context.
        assert!(legacy.kv_frag_at_peak > paged.kv_frag_at_peak);
    }
}
