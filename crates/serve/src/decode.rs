//! Autoregressive decode serving: KV-resident sessions and batched steps.
//!
//! The prefill path ([`crate::runtime`]) serves independent fixed-shape
//! requests. Decode traffic is different in kind: a *session* opens with a
//! prompt already in its KV cache, then issues one step request per generated
//! token, and every step depends on the session's cached `K`/`V` rows staying
//! resident on the device. This module adapts the serving pipeline to that
//! shape:
//!
//! * **Block-granular KV residency** — by default
//!   ([`DecodePolicy::kv_block_tokens`]) sessions charge the shared device
//!   KV budget ([`DecodePolicy::kv_budget_bytes`], defaulting to half of
//!   device DRAM) *as they actually grow*, in fixed-size token blocks
//!   (vLLM-style paged allocation, modeling
//!   `mas_tensor::paged::PagedKvCache` over a `KvBlockPool`). Admission
//!   screens only the first step's blocks; a later step that cannot get a
//!   new block is shed as a *pool overflow*
//!   ([`DecodeRejectReason::KvPoolExhausted`]) while its session keeps
//!   decoding at its old residency. The legacy policy
//!   (`kv_block_tokens: None`) reserves worst-case *max-context* bytes per
//!   session up front — the over-reservation that caps concurrency, kept
//!   for comparison and pinned by the paged-admission tests. Either way,
//!   charged bytes release when the session's last step completes.
//! * **Grouped-query head sharing** — sessions carry
//!   `kv_heads ≤ heads` shared K/V heads
//!   ([`mas_workloads::DecodeSessionSpec::kv_heads`]); residency and
//!   cache-stream traffic shrink by `kv_heads / heads` (Llama3-8B decodes
//!   at a quarter of its MHA KV bytes). Invalid groupings reject the
//!   session at admission instead of panicking.
//! * **Cross-session step batching** — step requests that share a
//!   `(heads, kv_heads, embed)` shape and arrive within
//!   [`DecodePolicy::window_s`] coalesce into one batched launch (each
//!   session contributes its own query row and cache; the slices are
//!   independent, like the `(batch, head)` slices of a merged prefill
//!   workload). Batching amortizes the per-launch issue overhead — the
//!   dominant cost of single-token kernels.
//! * **Decode cost model** — a launch's service time is the physical bound
//!   of its summed per-step work (MAC, VEC and DRAM components from
//!   [`DecodeStep`], each linear in the member's context length) plus one
//!   issue overhead, replayed on the earliest-free virtual device exactly
//!   like prefill batches.
//!
//! The numerical kernel this models is `mas_tensor::decode::decode_attention`
//! over a `mas_tensor::decode::KvCache` (contiguous) or
//! `mas_tensor::paged::decode_attention_paged` over a block table (paged,
//! bit-identical); the differential test harnesses pin both step-by-step
//! against the full-prefill oracle.

use serde::{Deserialize, Serialize};

use mas_dataflow::decode::{decode_step_fits, DecodeStep};
use mas_sim::HardwareConfig;
use mas_workloads::{DecodeSessionSpec, DecodeTrace};

use crate::metrics::percentile;

/// Why a decode session or step was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeRejectReason {
    /// The session's step working set cannot run on the device at all
    /// (streaming footprint over L1, KV cache over device DRAM, or an
    /// invalid grouped-query head configuration).
    InfeasibleSession,
    /// Admitting the session's *initial* KV residency (max context under
    /// legacy charging, the first step's blocks under paged charging) would
    /// exceed the device KV budget.
    KvBudgetExceeded,
    /// The concurrent-session limit was reached.
    SessionLimit,
    /// The per-step deadline is below the step's physical service-time lower
    /// bound, so it would be missed even on an idle device.
    DeadlineImpossible,
    /// The step references a session id absent from the trace's session
    /// table (a malformed or partially assembled trace).
    UnknownSession,
    /// Under paged charging: the step needed a new KV block but the shared
    /// block pool is exhausted — a pool overflow. The session keeps its
    /// existing blocks; only this step is shed.
    KvPoolExhausted,
}

impl std::fmt::Display for DecodeRejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DecodeRejectReason::InfeasibleSession => "infeasible session",
            DecodeRejectReason::KvBudgetExceeded => "KV budget exceeded",
            DecodeRejectReason::SessionLimit => "session limit reached",
            DecodeRejectReason::DeadlineImpossible => {
                "deadline below decode service-time lower bound"
            }
            DecodeRejectReason::UnknownSession => "unknown session id",
            DecodeRejectReason::KvPoolExhausted => "shared KV block pool exhausted",
        })
    }
}

/// Decode admission and batching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodePolicy {
    /// Device bytes available for resident KV caches. `None` defaults to
    /// half of device DRAM (the other half is headroom for operands and
    /// prefill traffic).
    pub kv_budget_bytes: Option<u64>,
    /// Maximum concurrently open sessions. `None` disables the bound (the
    /// KV budget is then the only residency limit).
    pub max_sessions: Option<usize>,
    /// Step-coalescing window in seconds: a launch dispatches at
    /// `first_step_arrival + window_s` at the latest. `0.0` disables
    /// batching (every step launches alone).
    pub window_s: f64,
    /// Maximum member steps per launch; a launch dispatches as soon as it
    /// reaches this size.
    pub max_steps_per_launch: usize,
    /// Uniform per-step latency SLO relative to the step's arrival
    /// (`None` = best effort). Steps whose SLO is below the physical lower
    /// bound at their context length are rejected up front.
    pub step_deadline_s: Option<f64>,
    /// KV-cache streaming granularity (rows per sub-tile) used for the L1
    /// footprint feasibility screen.
    pub kv_tile_rows: usize,
    /// KV residency charging granularity. `Some(block_tokens)` charges the
    /// shared block pool on *actual growth*: a session pays for the blocks
    /// its current context occupies (`DecodeStep::paged_kv_bytes`), admission
    /// screens only the first step's blocks, and a step that cannot get a
    /// new block is shed with [`DecodeRejectReason::KvPoolExhausted`] (a
    /// *pool overflow*) while the session keeps decoding at its old
    /// residency. `None` is the legacy contiguous policy: reserve worst-case
    /// max-context bytes for the whole session lifetime.
    pub kv_block_tokens: Option<usize>,
}

impl Default for DecodePolicy {
    fn default() -> Self {
        Self {
            kv_budget_bytes: None,
            max_sessions: None,
            window_s: 2e-3,
            max_steps_per_launch: 16,
            step_deadline_s: None,
            kv_tile_rows: 64,
            kv_block_tokens: Some(16),
        }
    }
}

impl DecodePolicy {
    /// The effective KV budget on `hw` (explicit bytes, or half of DRAM).
    #[must_use]
    pub fn kv_budget(&self, hw: &HardwareConfig) -> u64 {
        self.kv_budget_bytes.unwrap_or(hw.dram_bytes as u64 / 2)
    }
}

/// Physical lower bound on the service time of one decode step on an idle
/// device: a solo [`launch_service_s`] — the largest of peak-throughput MAC
/// time, peak-throughput VEC (softmax) time and minimum DRAM traffic time,
/// plus one launch overhead. Queueing and batching delay only add to this,
/// so admission screening against it can never disagree with dispatch
/// costing.
#[must_use]
pub fn decode_step_lower_bound_s(step: &DecodeStep, hw: &HardwareConfig) -> f64 {
    launch_service_s(std::slice::from_ref(step), hw)
}

/// Service time of one batched launch: member step work is summed per bound
/// component (each member streams its own KV cache and computes its own
/// query row), the binding component sets the time, and the launch pays one
/// issue overhead — which is what batching amortizes.
#[must_use]
pub fn launch_service_s(steps: &[DecodeStep], hw: &HardwareConfig) -> f64 {
    let mut mac_ops = 0.0f64;
    let mut vec_ops = 0.0f64;
    let mut dram_bytes = 0.0f64;
    for step in steps {
        mac_ops += step.mac_ops() as f64;
        vec_ops += step.softmax_elements() as f64 * hw.softmax_ops_per_element as f64;
        dram_bytes += step.min_dram_traffic_bytes(hw.element_bytes) as f64;
    }
    let mac_s = mac_ops / hw.peak_macs_per_second();
    let vec_s = vec_ops / (hw.vec_ops_per_cycle_total() as f64 * hw.frequency_hz);
    let dram_s = dram_bytes / hw.dram_bandwidth_bytes_per_s;
    mac_s.max(vec_s).max(dram_s) + hw.issue_overhead_cycles as f64 / hw.frequency_hz
}

/// The fate of one completed decode step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecodeStepOutcome {
    /// The session the step belongs to.
    pub session_id: u64,
    /// Zero-based index of the step within its session.
    pub step_index: usize,
    /// Context length attended (prompt plus generated tokens so far,
    /// including this step's).
    pub context_len: usize,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Virtual time the step's launch started on its device.
    pub start_s: f64,
    /// Virtual time the step's launch completed.
    pub completion_s: f64,
    /// Simulated service time of the launch that carried this step.
    pub service_s: f64,
    /// The step's relative deadline, if any.
    pub deadline_s: Option<f64>,
    /// Whether the end-to-end step latency met the deadline (`true` when no
    /// deadline was set).
    pub deadline_met: bool,
    /// Creation-order id of the launch that carried this step.
    pub launch_id: u64,
    /// Virtual device the launch ran on.
    pub device: usize,
}

impl DecodeStepOutcome {
    /// End-to-end step latency: completion minus arrival.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// A decode step refused at admission (with its session's reason when the
/// whole session was rejected).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RejectedDecodeStep {
    /// The session the step belongs to.
    pub session_id: u64,
    /// Zero-based index of the step within its session.
    pub step_index: usize,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Why it was rejected.
    pub reason: DecodeRejectReason,
}

/// Aggregate result of replaying one decode trace. A pure function of the
/// trace, the policy and the hardware.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DecodeReport {
    /// Completed steps in launch order (members in arrival order).
    pub outcomes: Vec<DecodeStepOutcome>,
    /// Rejected steps in arrival order.
    pub rejected: Vec<RejectedDecodeStep>,
    /// Sessions rejected at open, with reasons, in open order.
    pub rejected_sessions: Vec<(u64, DecodeRejectReason)>,
    /// Sessions admitted.
    pub sessions_admitted: usize,
    /// Batched launches dispatched.
    pub launches: usize,
    /// Virtual time at which the last launch completed.
    pub makespan_s: f64,
    /// Peak bytes charged against the KV budget at once — allocated-block
    /// bytes under paged charging, worst-case reservations under legacy
    /// charging.
    pub kv_peak_bytes: u64,
    /// Peak KV blocks allocated at once across all sessions (zero under
    /// legacy charging, which has no block granularity).
    pub kv_peak_blocks: u64,
    /// Internal fragmentation at the charge peak: the fraction of charged
    /// bytes not holding an actual context token — partial-tail-block waste
    /// under paged charging, the full over-reservation under legacy
    /// charging.
    pub kv_frag_at_peak: f64,
}

impl DecodeReport {
    /// Number of completed steps.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Sustained decode throughput: completed steps per second of makespan.
    #[must_use]
    pub fn steps_per_s(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / self.makespan_s
    }

    /// Mean member steps per launch (the batching factor).
    #[must_use]
    pub fn mean_launch_size(&self) -> f64 {
        if self.launches == 0 {
            return 0.0;
        }
        self.completed() as f64 / self.launches as f64
    }

    /// Step latency at percentile `p` (nearest rank), or `None` with no
    /// completed steps.
    #[must_use]
    pub fn latency_percentile_s(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(DecodeStepOutcome::latency_s)
            .collect();
        percentile(&latencies, p)
    }

    /// Completed steps that missed their deadline.
    #[must_use]
    pub fn deadline_missed(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.deadline_met).count()
    }

    /// Steps shed because the shared KV block pool was exhausted (pool
    /// overflows). Always zero under legacy max-context charging, which
    /// over-reserves instead.
    #[must_use]
    pub fn pool_overflows(&self) -> usize {
        self.rejected
            .iter()
            .filter(|r| r.reason == DecodeRejectReason::KvPoolExhausted)
            .count()
    }

    /// A compact human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let fmt_ms =
            |s: Option<f64>| s.map_or_else(|| "-".to_string(), |v| format!("{:.3} ms", v * 1e3));
        format!(
            "decode: {} steps ({} sessions) / {} rejected in {} launches (mean {:.1} steps) | \
             {:.0} steps/s | latency p50 {} p99 {} | deadline misses {} | peak KV {:.1} MB \
             ({} blocks, {:.1}% frag) | pool overflows {}",
            self.completed(),
            self.sessions_admitted,
            self.rejected.len(),
            self.launches,
            self.mean_launch_size(),
            self.steps_per_s(),
            fmt_ms(self.latency_percentile_s(50.0)),
            fmt_ms(self.latency_percentile_s(99.0)),
            self.deadline_missed(),
            self.kv_peak_bytes as f64 / 1e6,
            self.kv_peak_blocks,
            self.kv_frag_at_peak * 100.0,
            self.pool_overflows(),
        )
    }
}

/// Shape key decode steps coalesce under: launches merge only steps whose
/// kernels share the per-head geometry (including the grouped-query KV
/// head count, which changes the cache-stream traffic per step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct LaunchKey {
    heads: usize,
    kv_heads: usize,
    embed: usize,
}

struct PendingStep {
    session_id: u64,
    step_index: usize,
    context_len: usize,
    arrival_s: f64,
}

struct OpenLaunch {
    id: u64,
    first_arrival_s: f64,
    steps: Vec<PendingStep>,
}

struct SessionState {
    spec: DecodeSessionSpec,
    admitted: bool,
    reject_reason: Option<DecodeRejectReason>,
    /// Steps that completed on a device.
    completed_steps: usize,
    /// Steps rejected after admission (e.g. deadline screening).
    rejected_steps: usize,
    /// Steps joined to a not-yet-dispatched launch.
    pending_steps: usize,
    /// Bytes currently charged against the KV budget: the max-context
    /// reservation under legacy charging, the allocated-block bytes under
    /// paged charging (grows as the session decodes).
    charged_bytes: u64,
    /// KV blocks currently allocated (paged charging only).
    charged_blocks: u64,
    /// Bytes of actual resident context tokens (prompt plus generated),
    /// used for fragmentation reporting.
    used_bytes: u64,
}

impl SessionState {
    /// Whether every step the session will ever request has been accounted
    /// for (completed or rejected) with nothing still waiting in a launch —
    /// the point at which its KV residency can be released.
    fn finished(&self) -> bool {
        self.completed_steps + self.rejected_steps == self.spec.steps && self.pending_steps == 0
    }

    /// The session's decode step at a given context length.
    ///
    /// Callers must have validated the spec's head grouping (admission
    /// rejects invalid groupings as infeasible before building steps).
    fn step_at(&self, context_len: usize) -> DecodeStep {
        DecodeStep::new("decode", 1, self.spec.heads, context_len, self.spec.embed)
            .with_kv_heads(self.spec.kv_heads)
    }

    /// `K` plus `V` bytes of one context token at the session's shape.
    fn token_bytes(&self, element_bytes: usize) -> u64 {
        2 * self.spec.kv_heads as u64 * self.spec.embed as u64 * element_bytes as u64
    }

    /// Blocks covering `context_len` tokens at `block_tokens` per block —
    /// plain arithmetic (`DecodeStep::kv_blocks` without building a step on
    /// the per-event hot path).
    fn blocks_at(context_len: usize, block_tokens: usize) -> u64 {
        context_len.div_ceil(block_tokens.max(1)) as u64
    }

    /// `K` plus `V` bytes of one KV block at the session's shape
    /// (`DecodeStep::kv_block_bytes` without the step allocation). Clamps a
    /// zero block size to one token, like [`SessionState::blocks_at`], so a
    /// degenerate `kv_block_tokens: Some(0)` policy charges per token
    /// instead of silently disabling the budget.
    fn block_bytes(&self, block_tokens: usize, element_bytes: usize) -> u64 {
        block_tokens.max(1) as u64 * self.token_bytes(element_bytes)
    }
}

/// Records the charge high-water mark with its block count and
/// fragmentation snapshot.
fn note_kv_peak(report: &mut DecodeReport, charged: u64, used: u64, blocks: u64) {
    if charged >= report.kv_peak_bytes && charged > 0 {
        report.kv_peak_bytes = charged;
        report.kv_peak_blocks = blocks;
        report.kv_frag_at_peak = 1.0 - used as f64 / charged as f64;
    }
}

/// The decode serving runtime: replays a [`DecodeTrace`] with sticky KV
/// residency, cross-session step batching and the closed-form decode cost
/// model, on `devices` virtual devices.
#[derive(Debug, Clone)]
pub struct DecodeRuntime {
    hw: HardwareConfig,
    policy: DecodePolicy,
    devices: usize,
}

impl DecodeRuntime {
    /// Creates a runtime for `hw` with the given policy on one device.
    #[must_use]
    pub fn new(hw: HardwareConfig, policy: DecodePolicy) -> Self {
        Self {
            hw,
            policy,
            devices: 1,
        }
    }

    /// Sets the number of virtual devices launches replay across.
    #[must_use]
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// The runtime's policy.
    #[must_use]
    pub fn policy(&self) -> &DecodePolicy {
        &self.policy
    }

    /// Replays a decode trace and returns the aggregate report. The report
    /// is a pure function of the trace, the policy and the hardware.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run_trace(&self, trace: &DecodeTrace) -> DecodeReport {
        let kv_budget = self.policy.kv_budget(&self.hw);
        let element_bytes = self.hw.element_bytes;
        let max_launch = self.policy.max_steps_per_launch.max(1);

        let mut sessions: std::collections::BTreeMap<u64, SessionState> = trace
            .sessions
            .iter()
            .map(|spec| {
                (
                    spec.id,
                    SessionState {
                        spec: spec.clone(),
                        admitted: false,
                        reject_reason: None,
                        completed_steps: 0,
                        rejected_steps: 0,
                        pending_steps: 0,
                        charged_bytes: 0,
                        charged_blocks: 0,
                        used_bytes: 0,
                    },
                )
            })
            .collect();

        let mut report = DecodeReport::default();
        let mut open: std::collections::BTreeMap<LaunchKey, OpenLaunch> =
            std::collections::BTreeMap::new();
        let mut next_launch_id: u64 = 0;
        let mut free_at = vec![0.0f64; self.devices];
        // Charged bytes, actual context-token bytes and allocated blocks
        // across all resident sessions.
        let mut kv_in_use: u64 = 0;
        let mut kv_used: u64 = 0;
        let mut blocks_in_use: u64 = 0;
        let mut active_sessions: usize = 0;
        // KV released when a session's last step completes on the device:
        // (completion_s, session_id) pending releases, applied once virtual
        // time (the next arrival) passes them.
        let mut releases: Vec<(f64, u64)> = Vec::new();

        let dispatch = |key: LaunchKey,
                        launch: OpenLaunch,
                        ready_s: f64,
                        free_at: &mut [f64],
                        sessions: &mut std::collections::BTreeMap<u64, SessionState>,
                        releases: &mut Vec<(f64, u64)>,
                        report: &mut DecodeReport| {
            let steps: Vec<DecodeStep> = launch
                .steps
                .iter()
                .map(|p| {
                    DecodeStep::new("decode", 1, key.heads, p.context_len, key.embed)
                        .with_kv_heads(key.kv_heads)
                })
                .collect();
            let service_s = launch_service_s(&steps, &self.hw);
            let device = free_at
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("times are finite"))
                .map(|(i, _)| i)
                .expect("at least one device");
            let start_s = free_at[device].max(ready_s);
            let completion_s = start_s + service_s;
            free_at[device] = completion_s;
            report.makespan_s = report.makespan_s.max(completion_s);
            report.launches += 1;
            for p in launch.steps {
                let deadline_s = self.policy.step_deadline_s;
                let latency_s = completion_s - p.arrival_s;
                let session = sessions.get_mut(&p.session_id).expect("session exists");
                session.completed_steps += 1;
                session.pending_steps -= 1;
                if session.finished() {
                    releases.push((completion_s, p.session_id));
                }
                report.outcomes.push(DecodeStepOutcome {
                    session_id: p.session_id,
                    step_index: p.step_index,
                    context_len: p.context_len,
                    arrival_s: p.arrival_s,
                    start_s,
                    completion_s,
                    service_s,
                    deadline_s,
                    deadline_met: deadline_s.is_none_or(|d| latency_s <= d),
                    launch_id: launch.id,
                    device,
                });
            }
        };

        for event in &trace.steps {
            let now_s = event.arrival_s;

            // Dispatch every open launch whose window ended at or before
            // `now`, in creation (= window-expiry) order.
            let mut expired: Vec<(u64, LaunchKey)> = open
                .iter()
                .filter(|(_, l)| now_s >= l.first_arrival_s + self.policy.window_s)
                .map(|(k, l)| (l.id, *k))
                .collect();
            expired.sort_unstable_by_key(|(id, _)| *id);
            for (_, key) in expired {
                let launch = open.remove(&key).expect("key collected from the map");
                let ready_s = launch.first_arrival_s + self.policy.window_s;
                dispatch(
                    key,
                    launch,
                    ready_s,
                    &mut free_at,
                    &mut sessions,
                    &mut releases,
                    &mut report,
                );
            }

            // Apply KV releases that have completed by now.
            releases.retain(|&(release_s, session_id)| {
                if release_s <= now_s {
                    let s = sessions.get_mut(&session_id).expect("session exists");
                    kv_in_use = kv_in_use.saturating_sub(s.charged_bytes);
                    kv_used = kv_used.saturating_sub(s.used_bytes);
                    blocks_in_use = blocks_in_use.saturating_sub(s.charged_blocks);
                    s.charged_bytes = 0;
                    s.charged_blocks = 0;
                    s.used_bytes = 0;
                    active_sessions = active_sessions.saturating_sub(1);
                    false
                } else {
                    true
                }
            });

            // Admit the session at its first seen step (steps of malformed
            // traces referencing unknown sessions are rejected, not a
            // panic).
            let Some(session) = sessions.get_mut(&event.session_id) else {
                report.rejected.push(RejectedDecodeStep {
                    session_id: event.session_id,
                    step_index: event.step_index,
                    arrival_s: now_s,
                    reason: DecodeRejectReason::UnknownSession,
                });
                continue;
            };
            let (admitted, reason, context_len) = {
                let context_len = session.spec.prompt_len + event.step_index + 1;
                if !session.admitted && session.reject_reason.is_none() {
                    let spec = &session.spec;
                    let grouping_valid = spec.kv_heads > 0
                        && spec.kv_heads <= spec.heads
                        && spec.heads % spec.kv_heads == 0;
                    // Initial charge: worst-case max context under legacy
                    // charging, the first step's blocks under paged
                    // charging.
                    let (initial_bytes, initial_blocks) = if !grouping_valid {
                        (0, 0)
                    } else {
                        match self.policy.kv_block_tokens {
                            None => (
                                spec.max_context() as u64 * session.token_bytes(element_bytes),
                                0,
                            ),
                            Some(bt) => {
                                let blocks = SessionState::blocks_at(context_len, bt);
                                (blocks * session.block_bytes(bt, element_bytes), blocks)
                            }
                        }
                    };
                    // `step_at` requires a valid grouping; `||` short-circuits
                    // past it for malformed specs.
                    let verdict = if !grouping_valid
                        || !decode_step_fits(
                            &session.step_at(session.spec.max_context()),
                            self.policy.kv_tile_rows,
                            &self.hw,
                        ) {
                        Some(DecodeRejectReason::InfeasibleSession)
                    } else if kv_in_use + initial_bytes > kv_budget {
                        Some(DecodeRejectReason::KvBudgetExceeded)
                    } else if self
                        .policy
                        .max_sessions
                        .is_some_and(|limit| active_sessions >= limit)
                    {
                        Some(DecodeRejectReason::SessionLimit)
                    } else {
                        None
                    };
                    match verdict {
                        Some(reason) => {
                            session.reject_reason = Some(reason);
                            report.rejected_sessions.push((event.session_id, reason));
                        }
                        None => {
                            session.admitted = true;
                            session.charged_bytes = initial_bytes;
                            session.charged_blocks = initial_blocks;
                            // The prompt is resident from admission; each
                            // joined step adds one token below.
                            session.used_bytes =
                                session.spec.prompt_len as u64 * session.token_bytes(element_bytes);
                            kv_in_use += initial_bytes;
                            kv_used += session.used_bytes;
                            blocks_in_use += initial_blocks;
                            active_sessions += 1;
                            note_kv_peak(&mut report, kv_in_use, kv_used, blocks_in_use);
                            report.sessions_admitted += 1;
                        }
                    }
                }
                (session.admitted, session.reject_reason, context_len)
            };
            if !admitted {
                report.rejected.push(RejectedDecodeStep {
                    session_id: event.session_id,
                    step_index: event.step_index,
                    arrival_s: now_s,
                    reason: reason.expect("unadmitted sessions carry a reason"),
                });
                continue;
            }

            // Per-step deadline screening at this step's context length.
            let (heads, kv_heads, embed) = (
                session.spec.heads,
                session.spec.kv_heads,
                session.spec.embed,
            );
            if let Some(deadline) = self.policy.step_deadline_s {
                let step = session.step_at(context_len);
                if deadline < decode_step_lower_bound_s(&step, &self.hw) {
                    session.rejected_steps += 1;
                    // A session whose every remaining step is screened out
                    // must still release its KV residency.
                    if session.finished() {
                        releases.push((now_s, event.session_id));
                    }
                    report.rejected.push(RejectedDecodeStep {
                        session_id: event.session_id,
                        step_index: event.step_index,
                        arrival_s: now_s,
                        reason: DecodeRejectReason::DeadlineImpossible,
                    });
                    continue;
                }
            }
            // Paged charging: grow the session's block allocation to cover
            // this step's context. Growth runs *after* the deadline screen —
            // a screened step generates no token, so it must not keep a
            // block. A step that cannot get its block is shed (pool
            // overflow) while the session keeps its residency.
            if let Some(bt) = self.policy.kv_block_tokens {
                let needed = SessionState::blocks_at(context_len, bt);
                if needed > session.charged_blocks {
                    let delta_blocks = needed - session.charged_blocks;
                    let delta_bytes = delta_blocks * session.block_bytes(bt, element_bytes);
                    if kv_in_use + delta_bytes > kv_budget {
                        session.rejected_steps += 1;
                        if session.finished() {
                            releases.push((now_s, event.session_id));
                        }
                        report.rejected.push(RejectedDecodeStep {
                            session_id: event.session_id,
                            step_index: event.step_index,
                            arrival_s: now_s,
                            reason: DecodeRejectReason::KvPoolExhausted,
                        });
                        continue;
                    }
                    session.charged_bytes += delta_bytes;
                    session.charged_blocks = needed;
                    kv_in_use += delta_bytes;
                    blocks_in_use += delta_blocks;
                    note_kv_peak(&mut report, kv_in_use, kv_used, blocks_in_use);
                }
            }
            session.pending_steps += 1;
            // The step's token becomes resident context.
            let token = session.token_bytes(element_bytes);
            session.used_bytes += token;
            kv_used += token;
            note_kv_peak(&mut report, kv_in_use, kv_used, blocks_in_use);

            // Join (or open) the launch for this shape key.
            let key = LaunchKey {
                heads,
                kv_heads,
                embed,
            };
            let launch = open.entry(key).or_insert_with(|| {
                let l = OpenLaunch {
                    id: next_launch_id,
                    first_arrival_s: now_s,
                    steps: Vec::new(),
                };
                next_launch_id += 1;
                l
            });
            launch.steps.push(PendingStep {
                session_id: event.session_id,
                step_index: event.step_index,
                context_len,
                arrival_s: now_s,
            });
            if launch.steps.len() >= max_launch || self.policy.window_s == 0.0 {
                let launch = open.remove(&key).expect("just inserted");
                dispatch(
                    key,
                    launch,
                    now_s,
                    &mut free_at,
                    &mut sessions,
                    &mut releases,
                    &mut report,
                );
            }
        }

        // Flush the stragglers at their window ends, in creation order.
        let mut rest: Vec<(LaunchKey, OpenLaunch)> = open.into_iter().collect();
        rest.sort_unstable_by_key(|(_, l)| l.id);
        for (key, launch) in rest {
            let ready_s = launch.first_arrival_s + self.policy.window_s;
            dispatch(
                key,
                launch,
                ready_s,
                &mut free_at,
                &mut sessions,
                &mut releases,
                &mut report,
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_workloads::{decode_trace, DecodeStepEvent, DecodeTraceConfig, Network};

    fn hw() -> HardwareConfig {
        HardwareConfig::edge_default()
    }

    /// A hand-built trace: `sessions` sessions of `steps` steps each, step i
    /// of every session arriving at `i * gap_s` (cross-session simultaneous).
    fn lockstep_trace(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
        let specs: Vec<DecodeSessionSpec> = (0..sessions)
            .map(|id| DecodeSessionSpec {
                id,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: prompt,
                steps,
            })
            .collect();
        let mut events = Vec::new();
        for step_index in 0..steps {
            for id in 0..sessions {
                events.push(DecodeStepEvent {
                    session_id: id,
                    step_index,
                    arrival_s: step_index as f64 * gap_s + 1e-9,
                });
            }
        }
        DecodeTrace {
            sessions: specs,
            steps: events,
        }
    }

    #[test]
    fn lower_bound_grows_linearly_with_context() {
        let hw = hw();
        let short = DecodeStep::new("s", 1, 8, 128, 64);
        let long = short.with_context(1024);
        let lb_short = decode_step_lower_bound_s(&short, &hw);
        let lb_long = decode_step_lower_bound_s(&long, &hw);
        assert!(lb_long > lb_short);
        // Linear in context up to the fixed launch overhead.
        let overhead = hw.issue_overhead_cycles as f64 / hw.frequency_hz;
        let ratio = (lb_long - overhead) / (lb_short - overhead);
        assert!((ratio - 8.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn batched_launch_beats_solo_launches() {
        let hw = hw();
        let steps: Vec<DecodeStep> = (0..8)
            .map(|i| DecodeStep::new("s", 1, 8, 128 + i, 64))
            .collect();
        let batched = launch_service_s(&steps, &hw);
        let solo: f64 = steps
            .iter()
            .map(|s| launch_service_s(std::slice::from_ref(s), &hw))
            .sum();
        assert!(
            batched < solo,
            "batched {batched} must beat serial solo {solo}"
        );
    }

    #[test]
    fn lockstep_sessions_batch_into_shared_launches() {
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(report.completed(), 24);
        assert_eq!(report.sessions_admitted, 4);
        assert!(report.rejected.is_empty());
        // Four simultaneous same-shape steps share one launch per tick.
        assert_eq!(report.launches, 6);
        assert!((report.mean_launch_size() - 4.0).abs() < 1e-12);
        // Context grows by one per step.
        let first = report.outcomes.iter().find(|o| o.step_index == 0).unwrap();
        let last = report.outcomes.iter().find(|o| o.step_index == 5).unwrap();
        assert_eq!(first.context_len, 33);
        assert_eq!(last.context_len, 38);
    }

    #[test]
    fn kv_budget_sheds_whole_sessions() {
        // Each session: 2 * 8 heads * 64 embed * 38 tokens * 2 B = ~77.8 kB.
        let per_session = DecodeStep::new("s", 1, 8, 38, 64).kv_cache_bytes(hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(2 * per_session + per_session / 2),
            // Legacy contiguous charging: this test pins whole-session
            // max-context shedding.
            kv_block_tokens: None,
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 2);
        assert_eq!(report.rejected_sessions.len(), 2);
        assert!(report
            .rejected_sessions
            .iter()
            .all(|(_, r)| *r == DecodeRejectReason::KvBudgetExceeded));
        // Every step of a rejected session is rejected; admitted ones all run.
        assert_eq!(report.completed(), 12);
        assert_eq!(report.rejected.len(), 12);
        assert!(report.kv_peak_bytes <= policy.kv_budget(&hw()));
    }

    #[test]
    fn kv_bytes_release_when_a_session_finishes() {
        // Session 0 finishes its 2 steps early; session 1 opens much later
        // and must reuse the released budget.
        let specs = vec![
            DecodeSessionSpec {
                id: 0,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
            },
            DecodeSessionSpec {
                id: 1,
                network: Network::BertSmall,
                start_s: 1.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
            },
        ];
        let mut events = Vec::new();
        for (id, base) in [(0u64, 0.0f64), (1, 1.0)] {
            for step_index in 0..2 {
                events.push(DecodeStepEvent {
                    session_id: id,
                    step_index,
                    arrival_s: base + step_index as f64 * 0.01,
                });
            }
        }
        let trace = DecodeTrace {
            sessions: specs,
            steps: events,
        };
        let per_session = DecodeStep::new("s", 1, 8, 34, 64).kv_cache_bytes(hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(per_session), // room for exactly one at a time
            kv_block_tokens: None,              // legacy max-context charging
            ..DecodePolicy::default()
        };
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 2, "{}", report.summary());
        assert!(report.rejected_sessions.is_empty());
        assert_eq!(report.completed(), 4);
        assert_eq!(report.kv_peak_bytes, per_session);
    }

    #[test]
    fn session_limit_bounds_concurrency() {
        let policy = DecodePolicy {
            max_sessions: Some(3),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(5, 2, 16, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 3);
        assert!(report
            .rejected_sessions
            .iter()
            .all(|(_, r)| *r == DecodeRejectReason::SessionLimit));
    }

    #[test]
    fn impossible_step_deadlines_are_screened() {
        let policy = DecodePolicy {
            step_deadline_s: Some(1e-12),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(1, 3, 16, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.rejected.len(), 3);
        assert!(report
            .rejected
            .iter()
            .all(|r| r.reason == DecodeRejectReason::DeadlineImpossible));
    }

    #[test]
    fn generous_deadlines_are_met_under_light_load() {
        let policy = DecodePolicy {
            step_deadline_s: Some(0.5),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(2, 4, 16, 0.05);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.completed(), 8);
        assert_eq!(report.deadline_missed(), 0);
    }

    #[test]
    fn infeasible_sessions_are_rejected_up_front() {
        let specs = vec![DecodeSessionSpec {
            id: 0,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 32,
            kv_heads: 32,
            embed: 128,
            prompt_len: 1 << 28, // ~2 TB of KV at max context
            steps: 1,
        }];
        let trace = DecodeTrace {
            sessions: specs,
            steps: vec![DecodeStepEvent {
                session_id: 0,
                step_index: 0,
                arrival_s: 0.0,
            }],
        };
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(
            report.rejected_sessions,
            vec![(0, DecodeRejectReason::InfeasibleSession)]
        );
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn deadline_rejected_sessions_still_release_their_kv() {
        // Session 0's steps are all screened out (impossible deadline), so
        // its KV must be released; session 1 opens later with a budget sized
        // for one session and must be admitted.
        let specs = vec![
            DecodeSessionSpec {
                id: 0,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
            },
            DecodeSessionSpec {
                id: 1,
                network: Network::BertSmall,
                start_s: 1.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 32,
                steps: 2,
            },
        ];
        let mut events = Vec::new();
        for (id, base) in [(0u64, 0.0f64), (1, 1.0)] {
            for step_index in 0..2 {
                events.push(DecodeStepEvent {
                    session_id: id,
                    step_index,
                    arrival_s: base + step_index as f64 * 0.01,
                });
            }
        }
        let trace = DecodeTrace {
            sessions: specs,
            steps: events,
        };
        let per_session = DecodeStep::new("s", 1, 8, 34, 64).kv_cache_bytes(hw().element_bytes);
        // A deadline only the *short-context* session-1 steps could meet is
        // hard to construct; instead make every step impossible and assert
        // session 1 is admitted (KV freed) even though all steps reject.
        let policy = DecodePolicy {
            kv_budget_bytes: Some(per_session),
            step_deadline_s: Some(1e-12),
            kv_block_tokens: None, // legacy max-context charging
            ..DecodePolicy::default()
        };
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(
            report.sessions_admitted,
            2,
            "session 0's KV must release when its steps are all screened: {}",
            report.summary()
        );
        assert!(report.rejected_sessions.is_empty());
        assert_eq!(report.rejected.len(), 4);
    }

    #[test]
    fn malformed_traces_are_rejected_not_panicked() {
        // A step referencing a session id absent from the table, and a
        // session whose first event is mid-stream (step_index > 0).
        let trace = DecodeTrace {
            sessions: vec![DecodeSessionSpec {
                id: 0,
                network: Network::BertSmall,
                start_s: 0.0,
                heads: 8,
                kv_heads: 8,
                embed: 64,
                prompt_len: 16,
                steps: 3,
            }],
            steps: vec![
                DecodeStepEvent {
                    session_id: 99,
                    step_index: 0,
                    arrival_s: 0.0,
                },
                DecodeStepEvent {
                    session_id: 0,
                    step_index: 1, // resumed mid-session: admitted here
                    arrival_s: 0.01,
                },
            ],
        };
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(
            report.rejected[0].reason,
            DecodeRejectReason::UnknownSession
        );
        assert_eq!(report.completed(), 1, "the mid-stream session still runs");
        assert_eq!(report.outcomes[0].context_len, 16 + 1 + 1);
        assert_eq!(report.sessions_admitted, 1);
    }

    #[test]
    fn lower_bound_is_a_solo_launch() {
        let hw = hw();
        let step = DecodeStep::new("s", 1, 8, 333, 64);
        assert_eq!(
            decode_step_lower_bound_s(&step, &hw),
            launch_service_s(std::slice::from_ref(&step), &hw)
        );
    }

    #[test]
    fn generated_traces_replay_deterministically() {
        let cfg =
            DecodeTraceConfig::poisson(vec![Network::BertSmall, Network::T5Mini], 20, 200.0, 9);
        let trace = decode_trace(&cfg);
        let runtime = DecodeRuntime::new(hw(), DecodePolicy::default());
        let a = runtime.run_trace(&trace);
        let b = runtime.run_trace(&trace);
        assert_eq!(a, b);
        assert_eq!(a.completed() + a.rejected.len(), trace.total_steps());
        assert!(a.steps_per_s() > 0.0);
        assert!(a.latency_percentile_s(50.0).unwrap() <= a.latency_percentile_s(99.0).unwrap());
        let s = a.summary();
        assert!(s.contains("steps/s"));
    }

    #[test]
    fn zero_window_disables_batching() {
        let policy = DecodePolicy {
            window_s: 0.0,
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(3, 2, 16, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.launches, 6, "every step launches alone");
        assert!((report.mean_launch_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_devices_cut_decode_makespan() {
        let policy = DecodePolicy {
            window_s: 0.0,
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(6, 4, 512, 0.0);
        let one = DecodeRuntime::new(hw(), policy)
            .run_trace(&trace)
            .makespan_s;
        let two = DecodeRuntime::new(hw(), policy)
            .with_devices(2)
            .run_trace(&trace)
            .makespan_s;
        assert!(two < one, "two devices ({two} s) must beat one ({one} s)");
    }

    #[test]
    fn paged_charging_grows_with_actual_context_not_max() {
        // One session, prompt 8, 4 steps, 16-token blocks: the charge starts
        // at one block (context 9) and never reaches the max-context
        // worst case the legacy policy would reserve.
        let trace = lockstep_trace(1, 4, 8, 0.01);
        let step_at = |t: usize| DecodeStep::new("s", 1, 8, t, 64);
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(report.completed(), 4);
        assert_eq!(report.pool_overflows(), 0);
        // Context ends at 12 tokens: still one 16-token block.
        assert_eq!(report.kv_peak_blocks, 1);
        assert_eq!(
            report.kv_peak_bytes,
            step_at(12).kv_block_bytes(16, hw().element_bytes)
        );
        let legacy = step_at(12).kv_cache_bytes(hw().element_bytes);
        assert!(report.kv_peak_bytes <= 2 * legacy);
        // Fragmentation at peak: 12 of 16 slots used.
        assert!((report.kv_frag_at_peak - 4.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn paged_pool_overflow_sheds_steps_not_sessions() {
        // Budget of exactly two 16-token blocks per the session's shape: the
        // session is admitted (first step needs one block) and decodes until
        // context crosses 32 tokens, after which every step that needs a
        // third block is shed as a pool overflow.
        let block = DecodeStep::new("s", 1, 8, 1, 64).kv_block_bytes(16, hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(2 * block),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(1, 30, 8, 0.01); // context 9..=38
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.sessions_admitted, 1);
        assert!(report.rejected_sessions.is_empty(), "sessions are kept");
        // Steps up to context 32 run: contexts 9..=32 are steps 0..=23.
        assert_eq!(report.completed(), 24);
        assert_eq!(report.pool_overflows(), 6);
        assert!(report
            .rejected
            .iter()
            .all(|r| r.reason == DecodeRejectReason::KvPoolExhausted));
        assert_eq!(report.kv_peak_bytes, 2 * block);
        assert_eq!(report.kv_peak_blocks, 2);
        assert!(report.kv_peak_bytes <= policy.kv_budget(&hw()));
    }

    #[test]
    fn deadline_screened_steps_do_not_keep_blocks() {
        // Impossible deadline: every step is screened out before it
        // generates a token, so under paged charging no step may grow the
        // session's block allocation past the admission-time charge.
        let policy = DecodePolicy {
            step_deadline_s: Some(1e-12),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(1, 40, 8, 0.01); // context would reach 48
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.rejected.len(), 40);
        // Admission charged ceil(9 / 16) = 1 block; screened steps added
        // none (pre-fix this grew to ceil(48 / 16) = 3).
        assert_eq!(report.kv_peak_blocks, 1);
    }

    #[test]
    fn gqa_sessions_charge_fewer_kv_bytes() {
        // Same trace shape, one MHA (8/8) and one GQA (8/2) session set: the
        // grouped sessions' peak charge is a quarter of the MHA one.
        let mk_trace = |kv_heads: usize| {
            let mut t = lockstep_trace(2, 4, 32, 0.01);
            for s in &mut t.sessions {
                s.kv_heads = kv_heads;
            }
            t
        };
        let runtime = DecodeRuntime::new(hw(), DecodePolicy::default());
        let mha = runtime.run_trace(&mk_trace(8));
        let gqa = runtime.run_trace(&mk_trace(2));
        assert_eq!(mha.completed(), gqa.completed());
        assert_eq!(gqa.kv_peak_bytes * 4, mha.kv_peak_bytes);
        // GQA steps stream less DRAM, so they can only be faster.
        assert!(gqa.makespan_s <= mha.makespan_s);
    }

    #[test]
    fn zero_block_tokens_degrades_to_per_token_charging_not_a_free_pass() {
        // A degenerate Some(0) policy must not zero out block bytes and
        // bypass the budget: it clamps to one-token blocks, so a budget
        // sized for one session still sheds the rest.
        let per_session = DecodeStep::new("s", 1, 8, 38, 64).kv_cache_bytes(hw().element_bytes);
        let policy = DecodePolicy {
            kv_budget_bytes: Some(per_session),
            kv_block_tokens: Some(0),
            ..DecodePolicy::default()
        };
        let trace = lockstep_trace(4, 6, 32, 0.01);
        let report = DecodeRuntime::new(hw(), policy).run_trace(&trace);
        assert!(report.sessions_admitted < 4, "{}", report.summary());
        assert!(report.kv_peak_bytes > 0);
        assert!(report.kv_peak_bytes <= per_session);
        // Behaves exactly like one-token blocks.
        let one = DecodePolicy {
            kv_block_tokens: Some(1),
            ..policy
        };
        let with_one = DecodeRuntime::new(hw(), one).run_trace(&trace);
        assert_eq!(report.outcomes, with_one.outcomes);
        assert_eq!(report.kv_peak_bytes, with_one.kv_peak_bytes);
    }

    #[test]
    fn invalid_head_grouping_rejects_the_session_not_panics() {
        let mut trace = lockstep_trace(1, 2, 16, 0.01);
        trace.sessions[0].kv_heads = 3; // 8 % 3 != 0
        let report = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        assert_eq!(
            report.rejected_sessions,
            vec![(0, DecodeRejectReason::InfeasibleSession)]
        );
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn paged_and_legacy_charging_complete_the_same_steps_without_pressure() {
        // With an unconstrained budget the charging policy must not change
        // scheduling: identical outcomes, only the residency accounting
        // differs.
        let mut trace = lockstep_trace(3, 5, 40, 0.01);
        // Sessions *declare* a long generation budget but the trace only
        // replays 5 steps — legacy charging reserves the declared worst
        // case, paged charging only the blocks actually grown into.
        for s in &mut trace.sessions {
            s.steps = 100;
        }
        let paged = DecodeRuntime::new(hw(), DecodePolicy::default()).run_trace(&trace);
        let legacy_policy = DecodePolicy {
            kv_block_tokens: None,
            ..DecodePolicy::default()
        };
        let legacy = DecodeRuntime::new(hw(), legacy_policy).run_trace(&trace);
        assert_eq!(paged.outcomes, legacy.outcomes);
        assert_eq!(paged.launches, legacy.launches);
        assert!(paged.kv_peak_bytes < legacy.kv_peak_bytes);
        assert_eq!(legacy.kv_peak_blocks, 0, "legacy charging has no blocks");
        // Legacy fragmentation exposes the over-reservation: most of the
        // worst-case charge is not yet actual context.
        assert!(legacy.kv_frag_at_peak > paged.kv_frag_at_peak);
    }
}
