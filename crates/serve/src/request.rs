//! Inference requests entering the serving runtime.

use serde::{Deserialize, Serialize};

use mas_dataflow::{AttentionWorkload, DataflowKind};
use mas_workloads::TraceEvent;

/// One attention inference request: a workload, the dataflow to run it with,
/// an arrival timestamp and an optional latency SLO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-assigned request id, unique within one trace.
    pub id: u64,
    /// Arrival time in seconds from the start of the trace.
    pub arrival_s: f64,
    /// The dataflow method requested.
    pub method: DataflowKind,
    /// The attention workload to execute.
    pub workload: AttentionWorkload,
    /// Latency SLO relative to arrival, in seconds (`None` = best effort).
    pub deadline_s: Option<f64>,
}

impl ServeRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(
        id: u64,
        arrival_s: f64,
        method: DataflowKind,
        workload: AttentionWorkload,
        deadline_s: Option<f64>,
    ) -> Self {
        Self {
            id,
            arrival_s,
            method,
            workload,
            deadline_s,
        }
    }

    /// Converts a generated request trace (`mas-workloads::traffic`) into a
    /// request stream: ids are assigned in trace order, every request asks
    /// for `method` and carries the same relative deadline.
    #[must_use]
    pub fn stream_from_trace(
        events: &[TraceEvent],
        method: DataflowKind,
        deadline_s: Option<f64>,
    ) -> Vec<ServeRequest> {
        events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                Self::new(
                    i as u64,
                    e.arrival_s,
                    method,
                    e.workload.clone(),
                    deadline_s,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_workloads::{request_trace, Network, TraceConfig};

    #[test]
    fn stream_from_trace_assigns_sequential_ids() {
        let trace = request_trace(&TraceConfig::poisson(
            vec![Network::BertSmall, Network::VitB16],
            8,
            100.0,
            3,
        ));
        let stream =
            ServeRequest::stream_from_trace(&trace, DataflowKind::MasAttention, Some(0.05));
        assert_eq!(stream.len(), 8);
        for (i, r) in stream.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.arrival_s, trace[i].arrival_s);
            assert_eq!(r.workload, trace[i].workload);
            assert_eq!(r.deadline_s, Some(0.05));
        }
    }
}
