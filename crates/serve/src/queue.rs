//! Admission control for the request queue.
//!
//! Requests are screened at arrival, before they consume batcher or planner
//! resources. Three checks are applied in order of specificity:
//!
//! 1. **Feasibility** — the workload's operands must fit device DRAM and at
//!    least the naive single-row tiling must fit L1 for the requested
//!    method; otherwise no schedule exists at any tiling.
//! 2. **Deadline screening** — a request whose SLO is below the device's
//!    physical lower-bound service time (peak-MAC compute time, peak-VEC
//!    softmax time and minimum DRAM traffic time, whichever binds) can never
//!    be met, even on an idle device, and is rejected up front.
//! 3. **Backlog bounds** — the batcher may hold at most
//!    [`AdmissionPolicy::max_queue_depth`] not-yet-dispatched requests, and
//!    the *estimated* launch-queue delay (already-dispatched batches waiting
//!    for a device, costed at their physical service-time lower bound) may
//!    not exceed [`AdmissionPolicy::max_est_queue_s`]; beyond either bound,
//!    load is shed instead of growing the queue without bound. The depth
//!    bound caps batcher memory; the delay bound is what engages under
//!    sustained overload, where batches dispatch promptly but the device
//!    cannot drain them.

use serde::{Deserialize, Serialize};

use mas_dataflow::footprint::tiling_fits;
use mas_dataflow::{AttentionWorkload, DataflowKind, StreamDemand, Tiling};
use mas_sim::HardwareConfig;

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The workload cannot run on the device with the requested method at
    /// any tiling (operands exceed DRAM, or even the naive tiling overflows
    /// L1).
    InfeasibleWorkload,
    /// The deadline is below the physical lower bound of the service time,
    /// so it would be missed even on an idle device.
    DeadlineImpossible,
    /// The batcher backlog reached the configured depth, or the estimated
    /// launch-queue delay exceeded its bound; load is shed.
    QueueFull,
    /// Admitting the request's activation footprint would overrun the
    /// shared device memory budget — prefill activations and resident
    /// decode KV caches are charged against one pool, so a heavy decode
    /// residency can shed prefill load (and vice versa). Only the unified
    /// engine raises this; the budget-free legacy admission path never
    /// does.
    MemoryPressure,
}

impl RejectReason {
    /// Stable snake_case identifier for machine-readable output (Prometheus
    /// label values, trace-event args). Distinct per variant and free of
    /// spaces, unlike the prose [`Display`](std::fmt::Display) form.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::InfeasibleWorkload => "infeasible_workload",
            RejectReason::DeadlineImpossible => "deadline_impossible",
            RejectReason::QueueFull => "queue_full",
            RejectReason::MemoryPressure => "memory_pressure",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::InfeasibleWorkload => "infeasible workload",
            RejectReason::DeadlineImpossible => "deadline below service-time lower bound",
            RejectReason::QueueFull => "queue full",
            RejectReason::MemoryPressure => "shared device memory budget exhausted",
        })
    }
}

/// Admission-control configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum number of admitted-but-not-yet-dispatched requests the
    /// batcher may hold; arrivals beyond this are rejected with
    /// [`RejectReason::QueueFull`]. `None` disables the bound.
    pub max_queue_depth: Option<usize>,
    /// Maximum *estimated* launch-queue delay, in seconds: already-dispatched
    /// batches still waiting for a device, costed at their physical
    /// service-time lower bound. Arrivals that would queue behind more than
    /// this are rejected with [`RejectReason::QueueFull`] — the bound that
    /// engages under sustained overload. `None` disables it.
    pub max_est_queue_s: Option<f64>,
    /// Whether to reject workloads that cannot run on the device at all.
    pub check_feasibility: bool,
    /// Whether to reject deadlines below the physical service-time lower
    /// bound.
    pub screen_deadlines: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            max_queue_depth: Some(1024),
            max_est_queue_s: Some(0.25),
            check_feasibility: true,
            screen_deadlines: true,
        }
    }
}

impl AdmissionPolicy {
    /// A policy that admits everything (useful for offline replay).
    #[must_use]
    pub fn admit_all() -> Self {
        Self {
            max_queue_depth: None,
            max_est_queue_s: None,
            check_feasibility: false,
            screen_deadlines: false,
        }
    }

    /// Screens one request against this policy.
    ///
    /// `backlog` is the number of admitted requests currently waiting in the
    /// batcher; `est_queue_s` is the estimated delay of the dispatched
    /// launch queue (see [`AdmissionPolicy::max_est_queue_s`]). Returns
    /// `Err(reason)` when the request must be rejected.
    pub fn admit(
        &self,
        method: DataflowKind,
        workload: &AttentionWorkload,
        deadline_s: Option<f64>,
        backlog: usize,
        est_queue_s: f64,
        hw: &HardwareConfig,
    ) -> Result<(), RejectReason> {
        if self.check_feasibility && !workload_is_feasible(method, workload, hw) {
            return Err(RejectReason::InfeasibleWorkload);
        }
        if self.screen_deadlines {
            if let Some(deadline) = deadline_s {
                if deadline < service_time_lower_bound_s(workload, hw) {
                    return Err(RejectReason::DeadlineImpossible);
                }
            }
        }
        if let Some(depth) = self.max_queue_depth {
            if backlog >= depth {
                return Err(RejectReason::QueueFull);
            }
        }
        if let Some(max_delay) = self.max_est_queue_s {
            if est_queue_s > max_delay {
                return Err(RejectReason::QueueFull);
            }
        }
        Ok(())
    }
}

/// Whether the workload can execute on the device with the method at all:
/// its four operands fit DRAM and the naive single-row tiling (the smallest
/// working set any tiling can have) fits L1.
#[must_use]
pub fn workload_is_feasible(
    method: DataflowKind,
    workload: &AttentionWorkload,
    hw: &HardwareConfig,
) -> bool {
    let operands = 4 * workload.operand_bytes(hw.element_bytes);
    if operands > hw.dram_bytes as u64 {
        return false;
    }
    tiling_fits(method, workload, &Tiling::naive(workload), hw)
}

/// Physical lower bound on the service time of one workload on an idle
/// device: the largest of peak-throughput MAC time, peak-throughput VEC
/// (softmax) time and minimum DRAM traffic time (the workload's
/// [`StreamDemand`]). Queueing and tiling overheads only add to this, so
/// any deadline below it is hopeless.
#[must_use]
pub fn service_time_lower_bound_s(workload: &AttentionWorkload, hw: &HardwareConfig) -> f64 {
    StreamDemand::of_prefill(workload, hw).bound_seconds(hw)
}

/// Tracks an estimated device timeline during admission so load can be shed
/// when the launch queue falls behind. Estimates cost prefill launches at
/// their physical service-time lower bound (planning has not happened yet)
/// and decode launches at their closed-form service time, so they
/// under-state the true backlog — shedding is conservative, never spurious.
#[derive(Debug, Clone)]
pub(crate) struct BacklogEstimator {
    est_free_s: Vec<f64>,
}

impl BacklogEstimator {
    pub(crate) fn new(devices: usize) -> Self {
        Self {
            est_free_s: vec![0.0; devices.max(1)],
        }
    }

    /// Accounts one dispatched launch of estimated cost `lb_s`, ready at
    /// `ready_s`, on the earliest-free estimated device.
    pub(crate) fn feed(&mut self, ready_s: f64, lb_s: f64) {
        let device = self
            .est_free_s
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
            .expect("at least one device");
        *device = device.max(ready_s) + lb_s;
    }

    /// Estimated queueing delay a launch dispatched at `now_s` would see.
    pub(crate) fn queue_delay_s(&self, now_s: f64) -> f64 {
        let earliest = self
            .est_free_s
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        (earliest - now_s).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareConfig {
        HardwareConfig::edge_default()
    }

    fn bert() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn default_policy_admits_a_reasonable_request() {
        let policy = AdmissionPolicy::default();
        assert_eq!(
            policy.admit(
                DataflowKind::MasAttention,
                &bert(),
                Some(0.1),
                0,
                0.0,
                &hw()
            ),
            Ok(())
        );
    }

    #[test]
    fn oversized_workloads_are_infeasible() {
        let policy = AdmissionPolicy::default();
        // ~86 GB of operands at seq 2^20 × embed 128 × 32 heads: over 6 GiB DRAM.
        let huge = AttentionWorkload::new("huge", 1, 32, 1 << 20, 128);
        assert_eq!(
            policy.admit(DataflowKind::MasAttention, &huge, None, 0, 0.0, &hw()),
            Err(RejectReason::InfeasibleWorkload)
        );
        assert!(!workload_is_feasible(
            DataflowKind::MasAttention,
            &huge,
            &hw()
        ));
    }

    #[test]
    fn impossible_deadlines_are_screened() {
        let policy = AdmissionPolicy::default();
        let lb = service_time_lower_bound_s(&bert(), &hw());
        assert!(lb > 0.0);
        assert_eq!(
            policy.admit(DataflowKind::Flat, &bert(), Some(lb / 2.0), 0, 0.0, &hw()),
            Err(RejectReason::DeadlineImpossible)
        );
        // At or above the bound the deadline passes the screen.
        assert_eq!(
            policy.admit(DataflowKind::Flat, &bert(), Some(lb * 2.0), 0, 0.0, &hw()),
            Ok(())
        );
    }

    #[test]
    fn queue_depth_sheds_load() {
        let policy = AdmissionPolicy {
            max_queue_depth: Some(2),
            ..AdmissionPolicy::default()
        };
        assert_eq!(
            policy.admit(DataflowKind::Flat, &bert(), None, 1, 0.0, &hw()),
            Ok(())
        );
        assert_eq!(
            policy.admit(DataflowKind::Flat, &bert(), None, 2, 0.0, &hw()),
            Err(RejectReason::QueueFull)
        );
    }

    #[test]
    fn admit_all_never_rejects() {
        let policy = AdmissionPolicy::admit_all();
        let huge = AttentionWorkload::new("huge", 1, 32, 1 << 20, 128);
        assert_eq!(
            policy.admit(
                DataflowKind::MasAttention,
                &huge,
                Some(1e-12),
                10_000,
                1e9,
                &hw()
            ),
            Ok(())
        );
    }

    #[test]
    fn estimated_queue_delay_sheds_load() {
        let policy = AdmissionPolicy {
            max_est_queue_s: Some(0.01),
            ..AdmissionPolicy::default()
        };
        assert_eq!(
            policy.admit(DataflowKind::Flat, &bert(), None, 0, 0.005, &hw()),
            Ok(())
        );
        assert_eq!(
            policy.admit(DataflowKind::Flat, &bert(), None, 0, 0.02, &hw()),
            Err(RejectReason::QueueFull)
        );
    }

    #[test]
    fn lower_bound_scales_with_the_workload() {
        let small = AttentionWorkload::new("s", 1, 2, 128, 64);
        let large = AttentionWorkload::new("l", 1, 16, 1024, 64);
        assert!(
            service_time_lower_bound_s(&large, &hw()) > service_time_lower_bound_s(&small, &hw())
        );
    }
}
