//! Engine-wide structured telemetry: a typed event timeline recorded by
//! [`ServeEngine`], with post-hoc analysis and exporters.
//!
//! ## Event taxonomy
//!
//! When [`EngineConfig::telemetry`] is set, the engine records one
//! [`EngineEvent`] at every lifecycle transition of its replay loop:
//!
//! | event | when | track |
//! |---|---|---|
//! | [`EventKind::RunStart`] | once, before the first arrival | timeline |
//! | [`EventKind::PrefillArrival`] | a prefill request arrives | timeline |
//! | [`EventKind::PrefillRejected`] | admission / budget refusal | timeline |
//! | [`EventKind::PrefillJoin`] | a request joins an open launch | timeline |
//! | [`EventKind::DecodeArrival`] | a decode step arrives | timeline |
//! | [`EventKind::SessionOpen`] | a session admits (initial KV charge) | timeline |
//! | [`EventKind::SessionRejected`] | a session refuses at first sight | timeline |
//! | [`EventKind::DecodeStepRejected`] | a step is screened or shed | timeline |
//! | [`EventKind::KvGrow`] | paged block growth charges the pool | timeline |
//! | [`EventKind::PrefixShared`] | an admitted session joins a shared-prefix group | timeline |
//! | [`EventKind::DecodeJoin`] | a step joins an open launch | timeline |
//! | [`EventKind::LaunchDispatched`] | a sealed launch starts on a device | device |
//! | [`EventKind::LaunchStage`] | a track-executor stage occupies a per-device track | device |
//! | [`EventKind::PrefillCompleted`] | a member request completes | launch |
//! | [`EventKind::DecodeCompleted`] | a member step completes | launch |
//! | [`EventKind::BudgetRelease`] | a deferred release applies | timeline |
//! | [`EventKind::Preempted`] | a staged launch is displaced, or a session's KV is evicted | timeline |
//! | [`EventKind::SessionResumed`] | a preempted session's next step swaps its KV back in | timeline |
//!
//! Timestamps are monotone **per track** (the virtual timeline, one track
//! per device, and one per launch): timeline events carry the stream
//! instant at which the engine processed them, device events carry launch
//! *start* times (monotone because dispatch order is start order even under
//! the overlap executor), and member completions ride each launch's own
//! track — with [`EngineConfig::tracks`](crate::engine::EngineConfig::tracks)
//! a later launch may legitimately start before an earlier launch's
//! completion on the same device, so
//! completions cannot share the device track. The raw event sequence is
//! *not* globally time-sorted (completion events are recorded at dispatch,
//! timestamped in the future); sort by `(track, t_s)` — or feed
//! [`Telemetry::chrome_trace_json`] to a viewer — for a wall-clock view.
//!
//! ## Overhead contract
//!
//! Recording is **off by default** and every recording site is behind one
//! `Option` check, so disabled runs execute the exact pre-telemetry code
//! path — all pinned bit-identical replays are untouched. Enabled, the
//! recorder only appends compact plain-data events to a pre-reserved (and
//! across-runs recycled) `Vec` and updates two fixed-size histograms —
//! tens of nanoseconds per event. The `telemetry` bench pins the contract
//! from both ends: end-to-end `serve_mixed` replay (engine construction,
//! planning, replay — the serving cost a user pays) stays within **5%**,
//! and the marginal recording cost on a warm pure-replay loop stays under
//! an absolute per-event bound, so neither a planning regression nor a
//! bloated event can hide in the other's denominator.
//! [`TelemetryConfig::max_events`] bounds memory: past the cap events are
//! counted as dropped instead of recorded (and event-derived analyses
//! report the log as incomplete).
//!
//! ## Replay fidelity
//!
//! The event stream is *complete*: [`Telemetry::report`] reconstructs the
//! full [`EngineReport`] — outcomes, rejects, peaks, fragmentation, energy,
//! makespans, per-device utilization — purely from events, bit-for-bit
//! equal to the engine's own report (pinned by `tests/telemetry.rs` over
//! random mixed traces × policies × budgets). Conservation (every arrival
//! resolves exactly once) and per-track monotonicity are checkable with
//! [`Telemetry::conservation_check`] / [`Telemetry::tracks_monotone`].
//!
//! ## Exporter formats
//!
//! * [`Telemetry::chrome_trace_json`] — Chrome trace-event JSON (the
//!   Perfetto / `chrome://tracing` format): one thread per device plus an
//!   `engine` thread (and, under the track executor, four extra threads
//!   per device — one per [`TrackKind`]), `"X"` complete-events for
//!   launches and launch stages, `"C"` counters for shared-budget occupancy
//!   and queue depth, `"i"` instants for rejects. [`validate_chrome_trace`]
//!   parses it back and proves spans never overlap within one thread row —
//!   a device's scalar launches serialize, and each track's stages
//!   serialize, while stages on *different* tracks of one device may
//!   overlap by design (run by CI on `serve_trace` output).
//! * [`Telemetry::prometheus_text`] — Prometheus text exposition: typed
//!   `mas_engine_*` counters and gauges with `class` / `reason` / `device`
//!   labels, plus log-bucketed latency histograms
//!   ([`LogHistogram`], power-of-two buckets, mergeable across engines by
//!   bucket-wise addition — the hook for the future multi-engine cluster
//!   layer) alongside the exact [`LatencyStats`] figures in the report.
//! * [`chrome_trace_from_sim`] — bridges a cycle-level
//!   [`mas_sim::trace::Trace`] (per-resource spans) into the same Chrome
//!   JSON, so kernel-level and engine-level timelines open in one viewer.
//!
//! [`ServeEngine`]: crate::engine::ServeEngine
//! [`EngineConfig::telemetry`]: crate::engine::EngineConfig::telemetry
//! [`LatencyStats`]: crate::metrics::LatencyStats

use std::collections::BTreeMap;

use serde::Serialize;

use mas_dataflow::DataflowKind;
use mas_sim::{TrackKind, TRACK_COUNT};

use crate::decode::{DecodeRejectReason, DecodeReport, DecodeStepOutcome, RejectedDecodeStep};
use crate::engine::{note_kv_peak, DeviceUtil, EngineReport, MemPeak, SchedulePolicy};
use crate::key::{ChunkKey, LaunchKey, WorkClass};
use crate::metrics::{RejectedRequest, RequestOutcome, ServeReport};
use crate::queue::RejectReason;

/// Opt-in telemetry configuration ([`crate::engine::EngineConfig::telemetry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct TelemetryConfig {
    /// Maximum events retained per run. `None` is unbounded; with a cap,
    /// events past it are counted as dropped ([`Telemetry::dropped`]) and
    /// event-derived analyses ([`Telemetry::report`]) decline rather than
    /// return partial answers.
    pub max_events: Option<usize>,
}

/// Which memory-budget holder a charge or release belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum MemOwner {
    /// A prefill launch's summed activation charge, by launch id.
    PrefillLaunch(u64),
    /// A decode session's KV residency, by session id.
    Session(u64),
    /// A shared-prefix group's block charge (held once for all member
    /// sessions), by group id.
    PrefixGroup(u64),
}

impl std::fmt::Display for MemOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemOwner::PrefillLaunch(id) => write!(f, "prefill-launch {id}"),
            MemOwner::Session(id) => write!(f, "session {id}"),
            MemOwner::PrefixGroup(id) => write!(f, "prefix-group {id}"),
        }
    }
}

/// Why an open launch was sealed and dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SealCause {
    /// Its batching window expired.
    Window,
    /// It reached the class's member capacity (or decode batching is
    /// disabled with a zero window).
    Fill,
    /// Growing the merged prefill workload further would outrun the device,
    /// so the current batch dispatched early.
    Feasibility,
    /// End-of-stream flush at the window end.
    Flush,
    /// A non-first chunk of a chunked-prefill chain: it dispatched because
    /// its predecessor chunk completed, not because of any batching rule.
    Chain,
}

impl SealCause {
    /// Stable lower-case label (Prometheus / trace args).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SealCause::Window => "window",
            SealCause::Fill => "fill",
            SealCause::Feasibility => "feasibility",
            SealCause::Flush => "flush",
            SealCause::Chain => "chain",
        }
    }
}

/// The track an event belongs to for per-track monotonicity: the engine's
/// virtual timeline, one device's dispatch history, one execution track of
/// one device, or one launch's completion batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// Stream-processing events, stamped at the engine's current instant.
    Timeline,
    /// Launch dispatches on one virtual device, stamped at launch start.
    /// Starts are monotone even under the overlap executor: every launch's
    /// first stage queues FIFO on a per-device track whose clock never goes
    /// backwards, and scalar launches barrier all track clocks.
    Device(u32),
    /// One execution track of one device: the overlap executor's stage
    /// spans ([`EventKind::LaunchStage`]), stamped at stage start. Each
    /// track is a FIFO queue, so its stage starts are monotone — while
    /// stages on *different* tracks of the same device overlap freely.
    DeviceTrack(u32, TrackKind),
    /// One launch's member completions, all stamped at the launch's
    /// completion instant. Completions cannot ride the device track: under
    /// [`EngineConfig::tracks`] a later launch may start before an earlier
    /// launch's completion on the same device.
    ///
    /// [`EngineConfig::tracks`]: crate::engine::EngineConfig::tracks
    Launch(u64),
}

/// One typed lifecycle event. The sequence number is the event's index in
/// [`Telemetry::events`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineEvent {
    /// Virtual-time stamp in seconds (monotone per [`Track`]).
    pub t_s: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy (see the module docs for when each fires).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum EventKind {
    /// Replay started: the configuration snapshot reconstruction needs.
    RunStart {
        /// Iteration-level scheduling policy.
        policy: SchedulePolicy,
        /// Virtual device count (one track each).
        devices: u32,
        /// Shared memory budget in bytes.
        budget_bytes: u64,
        /// Prefill member capacity per launch.
        max_batch: u32,
        /// Decode member capacity per launch.
        max_steps_per_launch: u32,
        /// Uniform per-step decode deadline, if any.
        step_deadline_s: Option<f64>,
    },
    /// A prefill request arrived (before admission).
    PrefillArrival {
        /// Request id.
        id: u64,
        /// Workload name (carried once; later events reference the id).
        workload: String,
        /// Requested dataflow method.
        method: DataflowKind,
        /// The request's batch dimension.
        batch: u32,
        /// Relative latency SLO, if any.
        deadline_s: Option<f64>,
    },
    /// A prefill request was refused (admission or shared-budget pressure).
    PrefillRejected {
        /// Request id.
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// A prefill request joined an open launch, charging the shared budget.
    PrefillJoin {
        /// The launch joined.
        launch_id: u64,
        /// Member count after the join.
        members: u32,
        /// Activation bytes charged against the shared budget.
        charged_bytes: u64,
    },
    /// A decode step arrived (before any screening).
    DecodeArrival {
        /// Session id.
        session_id: u64,
        /// Zero-based step index within the session.
        step_index: u32,
    },
    /// A session admitted at first sight, charging its initial KV residency.
    SessionOpen {
        /// Session id.
        session_id: u64,
        /// Prompt length resident from admission.
        prompt_len: u32,
        /// Initial bytes charged against the shared budget.
        charged_bytes: u64,
        /// Bytes of actual resident context tokens at admission.
        used_bytes: u64,
        /// Initial KV blocks allocated (zero under legacy charging).
        blocks: u64,
    },
    /// A session was refused at first sight.
    SessionRejected {
        /// Session id.
        session_id: u64,
        /// Why.
        reason: DecodeRejectReason,
    },
    /// A decode step was refused (unknown/unadmitted session, deadline
    /// screen, or pool overflow).
    DecodeStepRejected {
        /// Session id.
        session_id: u64,
        /// Zero-based step index.
        step_index: u32,
        /// Why.
        reason: DecodeRejectReason,
    },
    /// Paged block growth charged the shared pool.
    KvGrow {
        /// The growing session.
        session_id: u64,
        /// Bytes charged.
        delta_bytes: u64,
        /// Blocks allocated.
        delta_blocks: u64,
    },
    /// An admitted session joined a shared-prefix group: the whole blocks
    /// of its shared prompt prefix are charged once per group (recorded
    /// right after the session's [`EventKind::SessionOpen`], which carries
    /// only the private charges).
    PrefixShared {
        /// The prefix group joined.
        group: u64,
        /// The joining session.
        session_id: u64,
        /// Budget bytes the group's charge *grew* by (zero when the prefix
        /// was already fully charged by earlier members).
        delta_bytes: u64,
        /// Blocks the group's charge grew by.
        delta_blocks: u64,
        /// Resident-token bytes the group's charge grew by (shared blocks
        /// are always full, so this equals `delta_bytes`).
        used_delta_bytes: u64,
        /// Member count after the join.
        refs: u32,
    },
    /// A decode step joined an open launch; its token became resident.
    DecodeJoin {
        /// The launch joined.
        launch_id: u64,
        /// Session id.
        session_id: u64,
        /// Zero-based step index.
        step_index: u32,
        /// Context length attended by the step.
        context_len: u32,
        /// Member count after the join.
        members: u32,
        /// `K`+`V` bytes of the step's token (used-bytes growth).
        token_bytes: u64,
    },
    /// A sealed launch started on a device.
    LaunchDispatched {
        /// Launch id (shared id space across classes).
        launch_id: u64,
        /// The coalescing key (class + kernel shape).
        key: LaunchKey,
        /// Device index.
        device: u32,
        /// When the launch was ready to start.
        ready_s: f64,
        /// Device start time (`max(device_free, ready)`).
        start_s: f64,
        /// Device completion time.
        completion_s: f64,
        /// Simulated service time.
        service_s: f64,
        /// Member work items carried.
        members: u32,
        /// Summed batch dimension (prefill; equals `members` for decode).
        total_batch: u32,
        /// The plan's total energy (prefill; zero for decode).
        energy_pj: f64,
        /// Whether the plan came from the schedule cache (prefill).
        cache_hit: bool,
        /// Why the launch sealed.
        cause: SealCause,
    },
    /// One stage of a track-executor launch occupied a per-device track for
    /// `[start_s, end_s)`. Recorded (in track-then-stage order) right after
    /// the launch's [`EventKind::LaunchDispatched`] when
    /// [`crate::engine::EngineConfig::tracks`] committed an overlapped
    /// placement; scalar-committed launches emit no stage events. Stage
    /// spans of one launch chain in dataflow order; spans on *different*
    /// tracks of the same device may overlap — that overlap is the whole
    /// point of the track executor, and the Chrome trace exporter gives
    /// each track its own thread row so viewers render it correctly.
    LaunchStage {
        /// The launch the stage belongs to.
        launch_id: u64,
        /// Device index.
        device: u32,
        /// The per-device track the stage occupied.
        track: TrackKind,
        /// Zero-based stage (tile/chunk) index within the launch.
        stage: u32,
        /// Track occupancy start.
        start_s: f64,
        /// Track occupancy end.
        end_s: f64,
    },
    /// A member prefill request completed (stamped at launch completion).
    PrefillCompleted {
        /// Request id.
        id: u64,
        /// The launch that carried it.
        launch_id: u64,
    },
    /// A member decode step completed (stamped at launch completion).
    DecodeCompleted {
        /// Session id.
        session_id: u64,
        /// Zero-based step index.
        step_index: u32,
        /// Context length attended.
        context_len: u32,
        /// The launch that carried it.
        launch_id: u64,
    },
    /// A deferred shared-budget release applied (stamped at the stream
    /// instant it was applied; `scheduled_s` is the completion instant that
    /// scheduled it).
    BudgetRelease {
        /// Whose charge released.
        owner: MemOwner,
        /// Bytes released.
        bytes: u64,
        /// Resident-token bytes released (sessions; zero for prefill).
        used_bytes: u64,
        /// KV blocks released (sessions; zero for prefill).
        blocks: u64,
        /// The completion instant that scheduled the release.
        scheduled_s: f64,
    },
    /// Iteration-level preemption fired: a staged (not-yet-hardened) launch
    /// was displaced back behind a deadline-pressed decode launch, or a
    /// decode session's KV residency was evicted under pool pressure.
    Preempted {
        /// What was displaced.
        victim: PreemptVictim,
    },
    /// A preempted decode session's next step arrived: its device KV
    /// residency is restored (swap-in under `Hold`, rebuild under
    /// `Recompute` — the rebuild cost rides on the resuming launch).
    SessionResumed {
        /// The resuming session.
        session_id: u64,
        /// Resident-token bytes restored to the device.
        restored_used_bytes: u64,
        /// Context tokens the resuming launch must recompute (zero under
        /// `Hold`, `context_len - 1` under `Recompute`).
        recompute_tokens: u32,
    },
}

/// What an [`EventKind::Preempted`] displaced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PreemptVictim {
    /// A scheduled-but-unstarted (staged) launch was pushed back behind a
    /// deadline-pressed decode launch. No device span was emitted for the
    /// displaced placement — the launch re-places and dispatches later.
    Launch {
        /// The displaced launch.
        launch_id: u64,
        /// Its coalescing key.
        key: LaunchKey,
        /// The device it had been staged on.
        device: u32,
        /// The start time the staged placement would have had.
        start_s: f64,
    },
    /// A decode session's KV charge was evicted from the shared pool to
    /// admit higher-priority growth. The session stays admitted; none of
    /// its completed tokens are lost (they swap to host or recompute).
    Session {
        /// The evicted session.
        session_id: u64,
        /// How the session's KV comes back.
        mode: crate::engine::PreemptMode,
        /// Budget bytes released by the eviction.
        bytes: u64,
        /// Resident-token bytes swapped out.
        used_bytes: u64,
        /// KV blocks released.
        blocks: u64,
    },
}

/// The in-flight recorder owned by one engine replay. Append-only; all
/// analysis lives on the finished [`Telemetry`].
#[derive(Debug, Clone)]
pub(crate) struct TelemetryRecorder {
    events: Vec<EngineEvent>,
    max_events: usize,
    dropped: u64,
    release_drops: u64,
    prefill_hist: LogHistogram,
    decode_hist: LogHistogram,
}

impl TelemetryRecorder {
    /// Creates a recorder, pre-reserving capacity for `capacity_hint`
    /// events (clamped to the configured cap). `recycle` donates the event
    /// buffer of a previous run's [`Telemetry`] — reusing its allocation
    /// keeps repeated replays on one warm engine from re-faulting a fresh
    /// multi-hundred-KB buffer every run, which would dominate the
    /// recording overhead.
    pub(crate) fn new(
        config: TelemetryConfig,
        capacity_hint: usize,
        recycle: Option<Vec<EngineEvent>>,
    ) -> Self {
        let max_events = config.max_events.unwrap_or(usize::MAX);
        let want = capacity_hint.min(max_events).min(1 << 20);
        let mut events = recycle.unwrap_or_default();
        events.clear();
        if events.capacity() < want {
            events.reserve(want - events.capacity());
        }
        Self {
            events,
            max_events,
            dropped: 0,
            release_drops: 0,
            prefill_hist: LogHistogram::new(),
            decode_hist: LogHistogram::new(),
        }
    }

    /// Counts one rejected duplicate budget release (a release arriving for
    /// an owner with no live charge — the double-release hazard).
    #[inline]
    pub(crate) fn note_release_drop(&mut self) {
        self.release_drops += 1;
    }

    /// Appends one event, or counts it dropped past the cap.
    #[inline]
    pub(crate) fn record(&mut self, t_s: f64, kind: EventKind) {
        if self.events.len() < self.max_events {
            self.events.push(EngineEvent { t_s, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Streams one completion latency into the class's histogram.
    #[inline]
    pub(crate) fn observe_latency(&mut self, class: WorkClass, latency_s: f64) {
        match class {
            WorkClass::Prefill => self.prefill_hist.observe(latency_s),
            WorkClass::Decode => self.decode_hist.observe(latency_s),
        }
    }

    /// Seals the recorder into an analyzable [`Telemetry`].
    pub(crate) fn finish(self) -> Telemetry {
        Telemetry {
            events: self.events,
            dropped: self.dropped,
            release_drops: self.release_drops,
            prefill_hist: self.prefill_hist,
            decode_hist: self.decode_hist,
        }
    }
}

/// The sealed event log of one engine replay, with analysis and exporters.
/// Obtained from [`crate::engine::ServeEngine::telemetry`] after a run with
/// [`TelemetryConfig`] set.
#[derive(Debug, Clone)]
pub struct Telemetry {
    events: Vec<EngineEvent>,
    dropped: u64,
    release_drops: u64,
    prefill_hist: LogHistogram,
    decode_hist: LogHistogram,
}

impl Telemetry {
    /// Consumes the telemetry, handing its event buffer back for
    /// [`TelemetryRecorder::new`] to recycle on the next run.
    pub(crate) fn into_event_buffer(self) -> Vec<EngineEvent> {
        self.events
    }

    /// The recorded events, in recording order (index = sequence number).
    #[must_use]
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Events dropped past [`TelemetryConfig::max_events`].
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Duplicate budget releases the engine detected and rejected (a
    /// release arriving for an owner with no live charge). Always zero in a
    /// correct replay; a non-zero count flags the double-release hazard the
    /// saturating arithmetic would otherwise silently absorb.
    #[must_use]
    pub fn release_drops(&self) -> u64 {
        self.release_drops
    }

    /// Whether the log captured every transition (nothing dropped).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// The streaming log-bucketed latency histogram of a class. Unlike the
    /// event log these are never truncated by `max_events`, and they merge
    /// across engines ([`LogHistogram::merge`]).
    #[must_use]
    pub fn latency_histogram(&self, class: WorkClass) -> &LogHistogram {
        match class {
            WorkClass::Prefill => &self.prefill_hist,
            WorkClass::Decode => &self.decode_hist,
        }
    }

    /// Reconstructs the full [`EngineReport`] purely from the event log —
    /// bit-for-bit equal to the report the engine produced (pinned by
    /// test). `None` when the log is incomplete (dropped events) or has no
    /// [`EventKind::RunStart`].
    #[must_use]
    pub fn report(&self) -> Option<EngineReport> {
        if !self.is_complete() {
            return None;
        }
        let replay = Replay::run(&self.events)?;
        Some(replay.into_report())
    }

    /// Per-device utilization replayed from the event log. Empty when the
    /// log is incomplete or never started.
    #[must_use]
    pub fn device_utilization(&self) -> Vec<DeviceUtil> {
        if !self.is_complete() {
            return Vec::new();
        }
        Replay::run(&self.events).map_or_else(Vec::new, |r| r.device_util())
    }

    /// Shared-budget occupancy peak with attribution: which holders
    /// (prefill launches / sessions) held bytes at the peak instant. `None`
    /// when the log is incomplete or the budget was never charged.
    #[must_use]
    pub fn peak_attribution(&self) -> Option<PeakAttribution> {
        if !self.is_complete() {
            return None;
        }
        Replay::run(&self.events)?.peak
    }

    /// Queue-depth gauge of a class: joined-but-undispatched members over
    /// time (`+1` per join, `-members` per dispatch).
    #[must_use]
    pub fn queue_depth(&self, class: WorkClass) -> TimeSeries<i64> {
        let mut series = TimeSeries::new();
        let mut depth = 0i64;
        for event in &self.events {
            match &event.kind {
                EventKind::PrefillJoin { .. } if class == WorkClass::Prefill => {
                    depth += 1;
                    series.push(event.t_s, depth);
                }
                EventKind::DecodeJoin { .. } if class == WorkClass::Decode => {
                    depth += 1;
                    series.push(event.t_s, depth);
                }
                EventKind::LaunchDispatched { key, members, .. } if key.class() == class => {
                    depth -= i64::from(*members);
                    series.push(event.t_s, depth);
                }
                _ => {}
            }
        }
        series
    }

    /// Mean batch fill of a class: dispatched members over the class's
    /// member capacity, averaged across launches. `None` with no launches
    /// (or no [`EventKind::RunStart`] to read capacities from).
    #[must_use]
    pub fn mean_batch_fill(&self, class: WorkClass) -> Option<f64> {
        let capacity = self.events.iter().find_map(|e| match e.kind {
            EventKind::RunStart {
                max_batch,
                max_steps_per_launch,
                ..
            } => Some(match class {
                WorkClass::Prefill => max_batch,
                WorkClass::Decode => max_steps_per_launch,
            }),
            _ => None,
        })?;
        let fills: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LaunchDispatched { key, members, .. } if key.class() == class => {
                    Some(f64::from(*members) / f64::from(capacity.max(1)))
                }
                _ => None,
            })
            .collect();
        if fills.is_empty() {
            return None;
        }
        Some(fills.iter().sum::<f64>() / fills.len() as f64)
    }

    /// Checks conservation: every arrival appears exactly once as completed
    /// or rejected, and no completion/reject lacks an arrival. Requires a
    /// complete log.
    ///
    /// # Errors
    ///
    /// A description of the first violation found.
    pub fn conservation_check(&self) -> Result<ConservationStats, String> {
        if !self.is_complete() {
            return Err(format!("log incomplete: {} events dropped", self.dropped));
        }
        // 0 = arrived, 1 = resolved once; anything else is a violation.
        let mut prefill: BTreeMap<u64, u32> = BTreeMap::new();
        let mut decode: BTreeMap<(u64, u32), u32> = BTreeMap::new();
        let mut stats = ConservationStats::default();
        for event in &self.events {
            match &event.kind {
                EventKind::PrefillArrival { id, .. } => {
                    if prefill.insert(*id, 0).is_some() {
                        return Err(format!("prefill request {id} arrived twice"));
                    }
                    stats.prefill_arrivals += 1;
                }
                EventKind::PrefillRejected { id, .. } | EventKind::PrefillCompleted { id, .. } => {
                    let resolved = matches!(event.kind, EventKind::PrefillCompleted { .. });
                    match prefill.get_mut(id) {
                        None => {
                            return Err(format!("prefill request {id} resolved, never arrived"))
                        }
                        Some(n @ 0) => *n = 1,
                        Some(_) => return Err(format!("prefill request {id} resolved twice")),
                    }
                    if resolved {
                        stats.prefill_completed += 1;
                    } else {
                        stats.prefill_rejected += 1;
                    }
                }
                EventKind::DecodeArrival {
                    session_id,
                    step_index,
                } => {
                    if decode.insert((*session_id, *step_index), 0).is_some() {
                        return Err(format!(
                            "decode step ({session_id}, {step_index}) arrived twice"
                        ));
                    }
                    stats.decode_arrivals += 1;
                }
                EventKind::DecodeStepRejected {
                    session_id,
                    step_index,
                    ..
                }
                | EventKind::DecodeCompleted {
                    session_id,
                    step_index,
                    ..
                } => {
                    let resolved = matches!(event.kind, EventKind::DecodeCompleted { .. });
                    match decode.get_mut(&(*session_id, *step_index)) {
                        None => {
                            return Err(format!(
                                "decode step ({session_id}, {step_index}) resolved, never arrived"
                            ))
                        }
                        Some(n @ 0) => *n = 1,
                        Some(_) => {
                            return Err(format!(
                                "decode step ({session_id}, {step_index}) resolved twice"
                            ))
                        }
                    }
                    if resolved {
                        stats.decode_completed += 1;
                    } else {
                        stats.decode_rejected += 1;
                    }
                }
                _ => {}
            }
        }
        if let Some((id, _)) = prefill.iter().find(|(_, &n)| n == 0) {
            return Err(format!("prefill request {id} arrived, never resolved"));
        }
        if let Some(((sid, idx), _)) = decode.iter().find(|(_, &n)| n == 0) {
            return Err(format!(
                "decode step ({sid}, {idx}) arrived, never resolved"
            ));
        }
        Ok(stats)
    }

    /// Checks per-track timestamp monotonicity (see the module docs for the
    /// track assignment).
    ///
    /// # Errors
    ///
    /// A description of the first out-of-order pair found.
    pub fn tracks_monotone(&self) -> Result<(), String> {
        let mut last: BTreeMap<Track, f64> = BTreeMap::new();
        let mut launch_device: BTreeMap<u64, u32> = BTreeMap::new();
        for (seq, event) in self.events.iter().enumerate() {
            let track = match &event.kind {
                EventKind::LaunchDispatched {
                    launch_id, device, ..
                } => {
                    launch_device.insert(*launch_id, *device);
                    Track::Device(*device)
                }
                EventKind::LaunchStage { device, track, .. } => Track::DeviceTrack(*device, *track),
                EventKind::PrefillCompleted { launch_id, .. }
                | EventKind::DecodeCompleted { launch_id, .. } => {
                    if !launch_device.contains_key(launch_id) {
                        return Err(format!("completion references launch {launch_id}"));
                    }
                    Track::Launch(*launch_id)
                }
                _ => Track::Timeline,
            };
            let prev = last.entry(track).or_insert(f64::NEG_INFINITY);
            if event.t_s < *prev {
                return Err(format!(
                    "event {seq} ({:?}) at t={} regresses behind t={} on {track:?}",
                    std::mem::discriminant(&event.kind),
                    event.t_s,
                    *prev,
                ));
            }
            *prev = event.t_s;
        }
        Ok(())
    }

    /// Exports the log as Chrome trace-event JSON (Perfetto /
    /// `chrome://tracing`): one thread per device plus an `engine` thread,
    /// `"X"` spans for launches, `"C"` counters for budget occupancy and
    /// queue depth, `"i"` instants for rejects.
    ///
    /// Under the track executor ([`EventKind::LaunchStage`]), each device
    /// additionally gets one thread row per [`TrackKind`]; a launch that
    /// committed an overlapped placement renders as per-stage `"X"` spans
    /// on those track rows *instead of* one span on the device row (spans
    /// on one device's different track rows overlap by design, which a
    /// single row cannot represent without violating the viewer's nesting
    /// rules). Scalar-committed launches keep their device-row span.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let devices = self
            .events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::RunStart { devices, .. } => Some(devices),
                _ => None,
            })
            .unwrap_or(0);
        let engine_tid = devices; // one tid past the device tracks
                                  // Per-device-track thread rows sit past the engine thread:
                                  // tid = devices + 1 + device·TRACK_COUNT + track.index().
        let track_tid = |device: u32, track: TrackKind| {
            devices + 1 + device * TRACK_COUNT as u32 + track.index() as u32
        };
        // Pre-scan: group the overlap executor's stage spans by launch so
        // the dispatch arm below knows which launches render per-track.
        // (device, track, stage, start_s, end_s)
        type StageSpanRow = (u32, TrackKind, u32, f64, f64);
        let mut stage_spans: BTreeMap<u64, Vec<StageSpanRow>> = BTreeMap::new();
        for event in &self.events {
            if let EventKind::LaunchStage {
                launch_id,
                device,
                track,
                stage,
                start_s,
                end_s,
            } = &event.kind
            {
                stage_spans
                    .entry(*launch_id)
                    .or_default()
                    .push((*device, *track, *stage, *start_s, *end_s));
            }
        }
        let us = |t_s: f64| t_s * 1e6;
        let mut out = String::with_capacity(256 + self.events.len() * 128);
        out.push('[');
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, event: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&event);
        };
        push(
            &mut out,
            &mut first,
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"mas-serve engine"}}"#
                .to_string(),
        );
        for d in 0..devices {
            push(
                &mut out,
                &mut first,
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{d},"args":{{"name":"device {d}"}}}}"#
                ),
            );
        }
        push(
            &mut out,
            &mut first,
            format!(
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{engine_tid},"args":{{"name":"engine"}}}}"#
            ),
        );
        if !stage_spans.is_empty() {
            for d in 0..devices {
                for track in TrackKind::ALL {
                    let tid = track_tid(d, track);
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":"device {d} {track}"}}}}"#
                        ),
                    );
                }
            }
        }
        // Running counters.
        let (mut prefill_bytes, mut decode_bytes) = (0u64, 0u64);
        let (mut prefill_depth, mut decode_depth) = (0i64, 0i64);
        let budget_counter = |out: &mut String, first: &mut bool, t: f64, p: u64, d: u64| {
            push(
                out,
                first,
                format!(
                    r#"{{"name":"shared_budget_bytes","ph":"C","pid":0,"tid":0,"ts":{},"args":{{"prefill":{p},"decode":{d}}}}}"#,
                    us(t)
                ),
            );
        };
        let depth_counter = |out: &mut String, first: &mut bool, t: f64, p: i64, d: i64| {
            push(
                out,
                first,
                format!(
                    r#"{{"name":"queue_depth","ph":"C","pid":0,"tid":0,"ts":{},"args":{{"prefill":{p},"decode":{d}}}}}"#,
                    us(t)
                ),
            );
        };
        for event in &self.events {
            let t = event.t_s;
            match &event.kind {
                EventKind::PrefillJoin { charged_bytes, .. } => {
                    prefill_bytes += charged_bytes;
                    prefill_depth += 1;
                    budget_counter(&mut out, &mut first, t, prefill_bytes, decode_bytes);
                    depth_counter(&mut out, &mut first, t, prefill_depth, decode_depth);
                }
                EventKind::SessionOpen { charged_bytes, .. } => {
                    decode_bytes += charged_bytes;
                    budget_counter(&mut out, &mut first, t, prefill_bytes, decode_bytes);
                }
                EventKind::KvGrow { delta_bytes, .. } => {
                    decode_bytes += delta_bytes;
                    budget_counter(&mut out, &mut first, t, prefill_bytes, decode_bytes);
                }
                EventKind::PrefixShared { delta_bytes, .. } => {
                    decode_bytes += delta_bytes;
                    budget_counter(&mut out, &mut first, t, prefill_bytes, decode_bytes);
                }
                EventKind::DecodeJoin { .. } => {
                    decode_depth += 1;
                    depth_counter(&mut out, &mut first, t, prefill_depth, decode_depth);
                }
                EventKind::BudgetRelease { owner, bytes, .. } => {
                    match owner {
                        MemOwner::PrefillLaunch(_) => {
                            prefill_bytes = prefill_bytes.saturating_sub(*bytes);
                        }
                        MemOwner::Session(_) | MemOwner::PrefixGroup(_) => {
                            decode_bytes = decode_bytes.saturating_sub(*bytes);
                        }
                    }
                    budget_counter(&mut out, &mut first, t, prefill_bytes, decode_bytes);
                }
                EventKind::LaunchDispatched {
                    launch_id,
                    key,
                    device,
                    start_s,
                    service_s,
                    members,
                    cause,
                    ..
                } => {
                    match key.class() {
                        WorkClass::Prefill => prefill_depth -= i64::from(*members),
                        WorkClass::Decode => decode_depth -= i64::from(*members),
                    }
                    if let Some(stages) = stage_spans.get(launch_id) {
                        // Overlap-committed launch: one span per stage on
                        // the per-track rows; the device row stays clear so
                        // it never shows two overlapping launches.
                        for (dev, track, stage, stage_start, stage_end) in stages {
                            push(
                                &mut out,
                                &mut first,
                                format!(
                                    r#"{{"name":{},"cat":"{}","ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"args":{{"launch_id":{launch_id},"stage":{stage},"members":{members},"cause":"{}"}}}}"#,
                                    escape_json(&format!("{key} s{stage} {track}")),
                                    key.class(),
                                    track_tid(*dev, *track),
                                    us(*stage_start),
                                    us(stage_end - stage_start),
                                    cause.label(),
                                ),
                            );
                        }
                    } else {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                r#"{{"name":{},"cat":"{}","ph":"X","pid":0,"tid":{device},"ts":{},"dur":{},"args":{{"launch_id":{launch_id},"members":{members},"cause":"{}"}}}}"#,
                                escape_json(&key.to_string()),
                                key.class(),
                                us(*start_s),
                                us(*service_s),
                                cause.label(),
                            ),
                        );
                    }
                    depth_counter(&mut out, &mut first, t, prefill_depth, decode_depth);
                }
                EventKind::PrefillRejected { id, reason } => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            r#"{{"name":{},"ph":"i","s":"t","pid":0,"tid":{engine_tid},"ts":{},"args":{{"id":{id}}}}}"#,
                            escape_json(&format!("reject prefill: {}", reason.label())),
                            us(t),
                        ),
                    );
                }
                EventKind::SessionRejected { session_id, reason } => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            r#"{{"name":{},"ph":"i","s":"t","pid":0,"tid":{engine_tid},"ts":{},"args":{{"session_id":{session_id}}}}}"#,
                            escape_json(&format!("reject session: {}", reason.label())),
                            us(t),
                        ),
                    );
                }
                EventKind::DecodeStepRejected {
                    session_id, reason, ..
                } => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            r#"{{"name":{},"ph":"i","s":"t","pid":0,"tid":{engine_tid},"ts":{},"args":{{"session_id":{session_id}}}}}"#,
                            escape_json(&format!("reject step: {}", reason.label())),
                            us(t),
                        ),
                    );
                }
                _ => {}
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// Exports a Prometheus text-exposition snapshot: `mas_engine_*`
    /// counters, gauges and log-bucketed latency histograms.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut arrivals = [0u64; 2];
        let mut completed = [0u64; 2];
        let mut launches = [0u64; 2];
        let mut prefill_rejects: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut step_rejects: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut session_rejects: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut sessions_admitted = 0u64;
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        let (mut preempted_launches, mut preempted_sessions) = (0u64, 0u64);
        for event in &self.events {
            match &event.kind {
                EventKind::PrefillArrival { .. } => arrivals[0] += 1,
                EventKind::DecodeArrival { .. } => arrivals[1] += 1,
                EventKind::PrefillCompleted { .. } => completed[0] += 1,
                EventKind::DecodeCompleted { .. } => completed[1] += 1,
                EventKind::PrefillRejected { reason, .. } => {
                    *prefill_rejects.entry(reason.label()).or_insert(0) += 1;
                }
                EventKind::DecodeStepRejected { reason, .. } => {
                    *step_rejects.entry(reason.label()).or_insert(0) += 1;
                }
                EventKind::SessionRejected { reason, .. } => {
                    *session_rejects.entry(reason.label()).or_insert(0) += 1;
                }
                EventKind::SessionOpen { .. } => sessions_admitted += 1,
                EventKind::LaunchDispatched { key, cache_hit, .. } => {
                    match key.class() {
                        WorkClass::Prefill => {
                            launches[0] += 1;
                            // One plan-cache lookup per chain, on its first
                            // chunk (plain prefill launches are one-chunk
                            // chains in this respect).
                            let looked_up = match key {
                                LaunchKey::PrefillChunk(ck) => ck.index == 0,
                                _ => true,
                            };
                            if looked_up {
                                if *cache_hit {
                                    cache_hits += 1;
                                } else {
                                    cache_misses += 1;
                                }
                            }
                        }
                        WorkClass::Decode => launches[1] += 1,
                    };
                }
                EventKind::Preempted { victim } => match victim {
                    PreemptVictim::Launch { .. } => preempted_launches += 1,
                    PreemptVictim::Session { .. } => preempted_sessions += 1,
                },
                _ => {}
            }
        }
        let replay = if self.is_complete() {
            Replay::run(&self.events)
        } else {
            None
        };
        let mut out = String::with_capacity(4096);
        let metric = |out: &mut String, name: &str, help: &str, kind: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };
        metric(
            &mut out,
            "mas_engine_arrivals_total",
            "Work-item arrivals by class.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_arrivals_total{{class=\"prefill\"}} {}\nmas_engine_arrivals_total{{class=\"decode\"}} {}\n",
            arrivals[0], arrivals[1]
        ));
        metric(
            &mut out,
            "mas_engine_completed_total",
            "Completed work items by class.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_completed_total{{class=\"prefill\"}} {}\nmas_engine_completed_total{{class=\"decode\"}} {}\n",
            completed[0], completed[1]
        ));
        metric(
            &mut out,
            "mas_engine_rejected_total",
            "Rejected work items by class and reason.",
            "counter",
        );
        for (reason, n) in &prefill_rejects {
            out.push_str(&format!(
                "mas_engine_rejected_total{{class=\"prefill\",reason=\"{reason}\"}} {n}\n"
            ));
        }
        for (reason, n) in &step_rejects {
            out.push_str(&format!(
                "mas_engine_rejected_total{{class=\"decode\",reason=\"{reason}\"}} {n}\n"
            ));
        }
        metric(
            &mut out,
            "mas_engine_sessions_rejected_total",
            "Decode sessions rejected at open, by reason.",
            "counter",
        );
        for (reason, n) in &session_rejects {
            out.push_str(&format!(
                "mas_engine_sessions_rejected_total{{reason=\"{reason}\"}} {n}\n"
            ));
        }
        metric(
            &mut out,
            "mas_engine_sessions_admitted_total",
            "Decode sessions admitted.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_sessions_admitted_total {sessions_admitted}\n"
        ));
        metric(
            &mut out,
            "mas_engine_launches_total",
            "Device launches by class.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_launches_total{{class=\"prefill\"}} {}\nmas_engine_launches_total{{class=\"decode\"}} {}\n",
            launches[0], launches[1]
        ));
        metric(
            &mut out,
            "mas_engine_cache_lookups_total",
            "Prefill plan-cache lookups by result.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_cache_lookups_total{{result=\"hit\"}} {cache_hits}\nmas_engine_cache_lookups_total{{result=\"miss\"}} {cache_misses}\n"
        ));
        metric(
            &mut out,
            "mas_engine_preemptions_total",
            "Iteration-level preemptions by victim kind.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_preemptions_total{{victim=\"launch\"}} {preempted_launches}\nmas_engine_preemptions_total{{victim=\"session\"}} {preempted_sessions}\n"
        ));
        metric(
            &mut out,
            "mas_engine_release_drops_total",
            "Duplicate budget releases detected and rejected.",
            "counter",
        );
        out.push_str(&format!(
            "mas_engine_release_drops_total {}\n",
            self.release_drops
        ));
        if let Some(replay) = &replay {
            metric(
                &mut out,
                "mas_engine_mem_budget_bytes",
                "Shared memory budget.",
                "gauge",
            );
            out.push_str(&format!("mas_engine_mem_budget_bytes {}\n", replay.budget));
            metric(
                &mut out,
                "mas_engine_mem_peak_bytes",
                "Peak shared-budget occupancy, total and by class.",
                "gauge",
            );
            out.push_str(&format!(
                "mas_engine_mem_peak_bytes{{class=\"total\"}} {}\nmas_engine_mem_peak_bytes{{class=\"prefill\"}} {}\nmas_engine_mem_peak_bytes{{class=\"decode\"}} {}\n",
                replay.mem_peak.total, replay.mem_peak.prefill, replay.mem_peak.decode
            ));
            metric(
                &mut out,
                "mas_engine_makespan_seconds",
                "Virtual time of the last completion.",
                "gauge",
            );
            out.push_str(&format!(
                "mas_engine_makespan_seconds {}\n",
                replay.makespan_s
            ));
            metric(
                &mut out,
                "mas_engine_device_busy_seconds",
                "Busy time per device.",
                "gauge",
            );
            for (d, util) in replay.device_util().iter().enumerate() {
                out.push_str(&format!(
                    "mas_engine_device_busy_seconds{{device=\"{d}\"}} {}\n",
                    util.busy_s
                ));
            }
            metric(
                &mut out,
                "mas_engine_device_idle_gaps_total",
                "Idle gaps between launches per device.",
                "counter",
            );
            for (d, util) in replay.device_util().iter().enumerate() {
                out.push_str(&format!(
                    "mas_engine_device_idle_gaps_total{{device=\"{d}\"}} {}\n",
                    util.idle_gaps
                ));
            }
        }
        metric(
            &mut out,
            "mas_engine_latency_seconds",
            "End-to-end completion latency by class (log2 buckets).",
            "histogram",
        );
        for (class, hist) in [
            ("prefill", &self.prefill_hist),
            ("decode", &self.decode_hist),
        ] {
            let mut cumulative = 0u64;
            for (i, &n) in hist.bucket_counts().iter().enumerate() {
                cumulative += n;
                if n > 0 || i + 1 == LOG_HISTOGRAM_BUCKETS {
                    out.push_str(&format!(
                        "mas_engine_latency_seconds_bucket{{class=\"{class}\",le=\"{:e}\"}} {cumulative}\n",
                        LogHistogram::bucket_upper_bound_s(i)
                    ));
                }
            }
            out.push_str(&format!(
                "mas_engine_latency_seconds_bucket{{class=\"{class}\",le=\"+Inf\"}} {}\n",
                hist.count()
            ));
            out.push_str(&format!(
                "mas_engine_latency_seconds_sum{{class=\"{class}\"}} {}\n",
                hist.sum_s()
            ));
            out.push_str(&format!(
                "mas_engine_latency_seconds_count{{class=\"{class}\"}} {}\n",
                hist.count()
            ));
        }
        out
    }
}

/// Conservation tallies returned by [`Telemetry::conservation_check`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ConservationStats {
    /// Prefill requests that arrived.
    pub prefill_arrivals: usize,
    /// Prefill requests that completed.
    pub prefill_completed: usize,
    /// Prefill requests that were rejected.
    pub prefill_rejected: usize,
    /// Decode steps that arrived.
    pub decode_arrivals: usize,
    /// Decode steps that completed.
    pub decode_completed: usize,
    /// Decode steps that were rejected.
    pub decode_rejected: usize,
}

/// The shared-budget occupancy peak with its holders, from
/// [`Telemetry::peak_attribution`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PeakAttribution {
    /// Peak bytes charged at once.
    pub peak_bytes: u64,
    /// Prefill activation share of the peak.
    pub prefill_bytes: u64,
    /// Decode KV share of the peak.
    pub decode_bytes: u64,
    /// Virtual time of the peak instant.
    pub t_s: f64,
    /// Every holder's charge at the peak instant, largest first (ties by
    /// owner identity).
    pub holders: Vec<(MemOwner, u64)>,
}

/// A timestamped value series (gauges over virtual time).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct TimeSeries<T> {
    /// `(t_s, value)` points in time order.
    pub points: Vec<(f64, T)>,
}

impl<T> TimeSeries<T> {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, t_s: f64, value: T) {
        self.points.push((t_s, value));
    }

    /// The most recent value.
    #[must_use]
    pub fn last(&self) -> Option<&T> {
        self.points.last().map(|(_, v)| v)
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Bucket count of [`LogHistogram`].
pub const LOG_HISTOGRAM_BUCKETS: usize = 32;

/// Smallest bucket exponent: bucket 0 covers values below
/// 2^(`LOG_HISTOGRAM_MIN_EXP` + 1) seconds.
pub const LOG_HISTOGRAM_MIN_EXP: i32 = -24;

/// A streaming log₂-bucketed histogram: 32 power-of-two buckets from
/// `2^-24` s (~60 ns) to `2^8` s, each holding a count. Observation is two
/// integer ops (IEEE-754 exponent extraction) plus a float add; histograms
/// merge by bucket-wise addition — the property the future multi-engine
/// cluster layer needs to aggregate per-shard latency without raw samples.
/// Quantiles come back as bucket upper bounds (≤ one octave of error),
/// coexisting with the exact [`crate::metrics::LatencyStats`] figures.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogHistogram {
    counts: [u64; LOG_HISTOGRAM_BUCKETS],
    count: u64,
    sum_s: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; LOG_HISTOGRAM_BUCKETS],
            count: 0,
            sum_s: 0.0,
        }
    }

    /// The bucket index of a value: its binary exponent, clamped to the
    /// bucket range (non-positive and subnormal values land in bucket 0,
    /// values ≥ `2^8` s in the last bucket).
    #[must_use]
    pub fn bucket_index(v_s: f64) -> usize {
        if v_s <= 0.0 || !v_s.is_finite() {
            return 0;
        }
        // floor(log2(v)) for normal doubles, straight from the exponent bits.
        let e = ((v_s.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        (e - LOG_HISTOGRAM_MIN_EXP).clamp(0, LOG_HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// Upper bound of bucket `i` in seconds: `2^(MIN_EXP + i + 1)`. The
    /// last bucket is a catch-all; its nominal bound understates extreme
    /// outliers (the `+Inf` exposition line carries the true total).
    #[must_use]
    pub fn bucket_upper_bound_s(i: usize) -> f64 {
        f64::from(LOG_HISTOGRAM_MIN_EXP + i as i32 + 1).exp2()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v_s: f64) {
        self.counts[Self::bucket_index(v_s)] += 1;
        self.count += 1;
        self.sum_s += v_s;
    }

    /// Merges another histogram into this one (bucket-wise addition;
    /// commutative and associative).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations in seconds.
    #[must_use]
    pub fn sum_s(&self) -> f64 {
        self.sum_s
    }

    /// Whether nothing was observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; LOG_HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the containing
    /// bucket's upper bound. `None` when empty.
    #[must_use]
    pub fn quantile_upper_bound_s(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Some(Self::bucket_upper_bound_s(i));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Report reconstruction: replay the event stream in the exact order the
// engine mutated its state, so every f64 accumulation chain matches
// bit-for-bit.
// ---------------------------------------------------------------------------

struct ArrivalInfo {
    workload: String,
    method: DataflowKind,
    batch: u32,
    deadline_s: Option<f64>,
    arrival_s: f64,
}

#[derive(Clone, Copy)]
struct LaunchInfo {
    device: u32,
    start_s: f64,
    completion_s: f64,
    service_s: f64,
    total_batch: u32,
    energy_pj: f64,
    cache_hit: bool,
    chunk: Option<ChunkKey>,
}

/// Per-chain accumulation for chunked-prefill member outcomes: the chain's
/// first chunk start and the running service sum, folded in chunk-dispatch
/// order so the f64 chain matches the engine's bit-for-bit.
struct ChainAgg {
    first_start_s: f64,
    service_sum_s: f64,
}

struct Replay {
    policy: SchedulePolicy,
    devices: usize,
    budget: u64,
    step_deadline_s: Option<f64>,
    prefill_report: ServeReport,
    decode_report: DecodeReport,
    makespan_s: f64,
    mem_peak: MemPeak,
    kv_in_use: u64,
    kv_used: u64,
    blocks_in_use: u64,
    shared_in_use: u64,
    prefill_charged: u64,
    free_at: Vec<f64>,
    busy_prefill: Vec<f64>,
    busy_decode: Vec<f64>,
    idle_gaps: Vec<usize>,
    launch_counts: Vec<usize>,
    holders: BTreeMap<MemOwner, u64>,
    peak: Option<PeakAttribution>,
    preemptions_prefill: usize,
    preemptions_decode: usize,
}

impl Replay {
    /// Replays the full event stream; `None` without a leading `RunStart`.
    #[allow(clippy::too_many_lines)]
    fn run(events: &[EngineEvent]) -> Option<Self> {
        let (policy, devices, budget, step_deadline_s) =
            events.iter().find_map(|e| match e.kind {
                EventKind::RunStart {
                    policy,
                    devices,
                    budget_bytes,
                    step_deadline_s,
                    ..
                } => Some((policy, devices as usize, budget_bytes, step_deadline_s)),
                _ => None,
            })?;
        let devices = devices.max(1);
        let mut replay = Self {
            policy,
            devices,
            budget,
            step_deadline_s,
            prefill_report: ServeReport::default(),
            decode_report: DecodeReport::default(),
            makespan_s: 0.0,
            mem_peak: MemPeak::default(),
            kv_in_use: 0,
            kv_used: 0,
            blocks_in_use: 0,
            shared_in_use: 0,
            prefill_charged: 0,
            free_at: vec![0.0; devices],
            busy_prefill: vec![0.0; devices],
            busy_decode: vec![0.0; devices],
            idle_gaps: vec![0; devices],
            launch_counts: vec![0; devices],
            holders: BTreeMap::new(),
            peak: None,
            preemptions_prefill: 0,
            preemptions_decode: 0,
        };
        let mut arrivals: BTreeMap<u64, ArrivalInfo> = BTreeMap::new();
        let mut decode_arrivals: BTreeMap<(u64, u32), f64> = BTreeMap::new();
        let mut launches: BTreeMap<u64, LaunchInfo> = BTreeMap::new();
        let mut chains: BTreeMap<u64, ChainAgg> = BTreeMap::new();
        let mut open_charges: BTreeMap<u64, u64> = BTreeMap::new();
        for event in events {
            let t = event.t_s;
            match &event.kind {
                EventKind::RunStart { .. } => {}
                EventKind::PrefillArrival {
                    id,
                    workload,
                    method,
                    batch,
                    deadline_s,
                } => {
                    arrivals.insert(
                        *id,
                        ArrivalInfo {
                            workload: workload.clone(),
                            method: *method,
                            batch: *batch,
                            deadline_s: *deadline_s,
                            arrival_s: t,
                        },
                    );
                }
                EventKind::PrefillRejected { id, reason } => {
                    let info = arrivals.get(id)?;
                    replay.prefill_report.rejected.push(RejectedRequest {
                        id: *id,
                        workload: info.workload.clone(),
                        arrival_s: t,
                        reason: *reason,
                    });
                }
                EventKind::PrefillJoin {
                    launch_id,
                    charged_bytes,
                    ..
                } => {
                    *open_charges.entry(*launch_id).or_insert(0) += charged_bytes;
                    replay.prefill_charged += charged_bytes;
                    replay.charge(MemOwner::PrefillLaunch(*launch_id), *charged_bytes, t);
                }
                EventKind::DecodeArrival {
                    session_id,
                    step_index,
                } => {
                    decode_arrivals.insert((*session_id, *step_index), t);
                }
                EventKind::SessionOpen {
                    session_id,
                    charged_bytes,
                    used_bytes,
                    blocks,
                    ..
                } => {
                    replay.kv_in_use += charged_bytes;
                    replay.kv_used += used_bytes;
                    replay.blocks_in_use += blocks;
                    note_kv_peak(
                        &mut replay.decode_report,
                        replay.kv_in_use,
                        replay.kv_used,
                        replay.blocks_in_use,
                        replay.shared_in_use,
                    );
                    replay.charge(MemOwner::Session(*session_id), *charged_bytes, t);
                    replay.decode_report.sessions_admitted += 1;
                }
                EventKind::PrefixShared {
                    group,
                    delta_bytes,
                    delta_blocks,
                    used_delta_bytes,
                    ..
                } => {
                    replay.kv_in_use += delta_bytes;
                    replay.kv_used += used_delta_bytes;
                    replay.blocks_in_use += delta_blocks;
                    replay.shared_in_use += delta_bytes;
                    replay.decode_report.shared_sessions += 1;
                    note_kv_peak(
                        &mut replay.decode_report,
                        replay.kv_in_use,
                        replay.kv_used,
                        replay.blocks_in_use,
                        replay.shared_in_use,
                    );
                    if *delta_bytes > 0 {
                        replay.charge(MemOwner::PrefixGroup(*group), *delta_bytes, t);
                    }
                }
                EventKind::SessionRejected { session_id, reason } => {
                    replay
                        .decode_report
                        .rejected_sessions
                        .push((*session_id, *reason));
                }
                EventKind::DecodeStepRejected {
                    session_id,
                    step_index,
                    reason,
                } => {
                    replay.decode_report.rejected.push(RejectedDecodeStep {
                        session_id: *session_id,
                        step_index: *step_index as usize,
                        arrival_s: t,
                        reason: *reason,
                    });
                }
                EventKind::KvGrow {
                    session_id,
                    delta_bytes,
                    delta_blocks,
                } => {
                    replay.kv_in_use += delta_bytes;
                    replay.blocks_in_use += delta_blocks;
                    note_kv_peak(
                        &mut replay.decode_report,
                        replay.kv_in_use,
                        replay.kv_used,
                        replay.blocks_in_use,
                        replay.shared_in_use,
                    );
                    replay.charge(MemOwner::Session(*session_id), *delta_bytes, t);
                }
                EventKind::DecodeJoin { token_bytes, .. } => {
                    replay.kv_used += token_bytes;
                    note_kv_peak(
                        &mut replay.decode_report,
                        replay.kv_in_use,
                        replay.kv_used,
                        replay.blocks_in_use,
                        replay.shared_in_use,
                    );
                }
                EventKind::LaunchDispatched {
                    launch_id,
                    key,
                    device,
                    start_s,
                    completion_s,
                    service_s,
                    total_batch,
                    energy_pj,
                    cache_hit,
                    ..
                } => {
                    let chunk = match key {
                        LaunchKey::PrefillChunk(ck) => Some(*ck),
                        _ => None,
                    };
                    launches.insert(
                        *launch_id,
                        LaunchInfo {
                            device: *device,
                            start_s: *start_s,
                            completion_s: *completion_s,
                            service_s: *service_s,
                            total_batch: *total_batch,
                            energy_pj: *energy_pj,
                            cache_hit: *cache_hit,
                            chunk,
                        },
                    );
                    if let Some(ck) = chunk {
                        let agg = chains.entry(ck.chain).or_insert(ChainAgg {
                            first_start_s: *start_s,
                            service_sum_s: 0.0,
                        });
                        agg.service_sum_s += service_s;
                    }
                    let d = *device as usize;
                    if d >= replay.devices {
                        return None;
                    }
                    // Mirrors `EngineRun::note_device_span`: gap check
                    // against the device's previous completion, then busy
                    // accumulation in dispatch order.
                    if replay.launch_counts[d] > 0 && *start_s > replay.free_at[d] {
                        replay.idle_gaps[d] += 1;
                    }
                    replay.launch_counts[d] += 1;
                    replay.free_at[d] = *completion_s;
                    match key.class() {
                        WorkClass::Prefill => {
                            replay.busy_prefill[d] += service_s;
                            replay.prefill_report.batches += 1;
                            // A chunk chain does one plan-cache lookup, on
                            // its first chunk; later chunks repeat the
                            // chain's flag without a lookup of their own.
                            if chunk.is_none_or(|ck| ck.index == 0) {
                                if *cache_hit {
                                    replay.prefill_report.cache_hits += 1;
                                } else {
                                    replay.prefill_report.cache_misses += 1;
                                }
                            }
                            replay.prefill_report.makespan_s =
                                replay.prefill_report.makespan_s.max(*completion_s);
                        }
                        WorkClass::Decode => {
                            replay.busy_decode[d] += service_s;
                            replay.decode_report.launches += 1;
                            replay.decode_report.makespan_s =
                                replay.decode_report.makespan_s.max(*completion_s);
                        }
                    }
                    replay.makespan_s = replay.makespan_s.max(*completion_s);
                }
                EventKind::PrefillCompleted { id, launch_id } => {
                    let info = arrivals.get(id)?;
                    let launch = launches.get(launch_id)?;
                    let latency_s = launch.completion_s - info.arrival_s;
                    let deadline_met = info.deadline_s.is_none_or(|d| latency_s <= d);
                    // The engine's exact energy-share expression.
                    let energy_pj =
                        launch.energy_pj * f64::from(info.batch) / f64::from(launch.total_batch);
                    replay.prefill_report.total_energy_pj += energy_pj;
                    // A chunked request's outcome spans its whole chain:
                    // queueing ends at the first chunk's start, service sums
                    // over every chunk, and the chain id identifies the
                    // batch (the completion event references the *last*
                    // chunk, whose completion/device close the outcome).
                    let (start_s, service_s, batch_id) = match launch.chunk {
                        Some(ck) => {
                            let agg = chains.get(&ck.chain)?;
                            (agg.first_start_s, agg.service_sum_s, ck.chain)
                        }
                        None => (launch.start_s, launch.service_s, *launch_id),
                    };
                    replay.prefill_report.outcomes.push(RequestOutcome {
                        id: *id,
                        workload: info.workload.clone(),
                        method: info.method,
                        arrival_s: info.arrival_s,
                        start_s,
                        completion_s: launch.completion_s,
                        service_s,
                        deadline_s: info.deadline_s,
                        deadline_met,
                        energy_pj,
                        cache_hit: launch.cache_hit,
                        batch_id,
                        device: launch.device as usize,
                    });
                }
                EventKind::DecodeCompleted {
                    session_id,
                    step_index,
                    context_len,
                    launch_id,
                } => {
                    let arrival_s = *decode_arrivals.get(&(*session_id, *step_index))?;
                    let launch = launches.get(launch_id)?;
                    let latency_s = launch.completion_s - arrival_s;
                    replay.decode_report.outcomes.push(DecodeStepOutcome {
                        session_id: *session_id,
                        step_index: *step_index as usize,
                        context_len: *context_len as usize,
                        arrival_s,
                        start_s: launch.start_s,
                        completion_s: launch.completion_s,
                        service_s: launch.service_s,
                        deadline_s: replay.step_deadline_s,
                        deadline_met: replay.step_deadline_s.is_none_or(|d| latency_s <= d),
                        launch_id: *launch_id,
                        device: launch.device as usize,
                    });
                }
                EventKind::BudgetRelease {
                    owner,
                    bytes,
                    used_bytes,
                    blocks,
                    ..
                } => {
                    match owner {
                        MemOwner::PrefillLaunch(_) => {
                            replay.prefill_charged = replay.prefill_charged.saturating_sub(*bytes);
                        }
                        MemOwner::Session(_) => {
                            replay.kv_in_use = replay.kv_in_use.saturating_sub(*bytes);
                            replay.kv_used = replay.kv_used.saturating_sub(*used_bytes);
                            replay.blocks_in_use = replay.blocks_in_use.saturating_sub(*blocks);
                        }
                        MemOwner::PrefixGroup(_) => {
                            replay.kv_in_use = replay.kv_in_use.saturating_sub(*bytes);
                            replay.kv_used = replay.kv_used.saturating_sub(*used_bytes);
                            replay.blocks_in_use = replay.blocks_in_use.saturating_sub(*blocks);
                            replay.shared_in_use = replay.shared_in_use.saturating_sub(*bytes);
                        }
                    }
                    replay.holders.remove(owner);
                }
                EventKind::Preempted { victim } => match victim {
                    PreemptVictim::Launch { .. } => replay.preemptions_prefill += 1,
                    PreemptVictim::Session {
                        session_id,
                        bytes,
                        used_bytes,
                        blocks,
                        ..
                    } => {
                        replay.preemptions_decode += 1;
                        replay.kv_in_use = replay.kv_in_use.saturating_sub(*bytes);
                        replay.kv_used = replay.kv_used.saturating_sub(*used_bytes);
                        replay.blocks_in_use = replay.blocks_in_use.saturating_sub(*blocks);
                        replay.holders.remove(&MemOwner::Session(*session_id));
                    }
                },
                EventKind::SessionResumed {
                    restored_used_bytes,
                    ..
                } => {
                    replay.kv_used += restored_used_bytes;
                }
                // Stage spans refine a launch's device occupancy; every
                // report quantity already flows from its LaunchDispatched.
                EventKind::LaunchStage { .. } => {}
            }
        }
        Some(replay)
    }

    /// Applies a charge: updates the shared peak (`MemPeak::note`, the
    /// engine's own logic) and snapshots holder attribution when the peak
    /// moves.
    fn charge(&mut self, owner: MemOwner, bytes: u64, t_s: f64) {
        *self.holders.entry(owner).or_insert(0) += bytes;
        let before = self.mem_peak.total;
        self.mem_peak.note(self.prefill_charged, self.kv_in_use);
        let total = self.prefill_charged.saturating_add(self.kv_in_use);
        if self.mem_peak.total == total && (total > before || (total == before && total > 0)) {
            let mut holders: Vec<(MemOwner, u64)> = self
                .holders
                .iter()
                .map(|(&owner, &bytes)| (owner, bytes))
                .collect();
            holders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            self.peak = Some(PeakAttribution {
                peak_bytes: self.mem_peak.total,
                prefill_bytes: self.mem_peak.prefill,
                decode_bytes: self.mem_peak.decode,
                t_s,
                holders,
            });
        }
    }

    /// Combined per-device utilization (prefill + decode busy time, summed
    /// at read-out like the engine's report builder).
    fn device_util(&self) -> Vec<DeviceUtil> {
        (0..self.devices)
            .map(|d| DeviceUtil {
                busy_s: self.busy_prefill[d] + self.busy_decode[d],
                idle_gaps: self.idle_gaps[d],
                launches: self.launch_counts[d],
            })
            .collect()
    }

    /// Assembles the [`EngineReport`], mirroring the engine's report
    /// builder (including the rule that a class's `device_busy_s` stays
    /// empty unless the class dispatched at least one launch).
    fn into_report(mut self) -> EngineReport {
        self.prefill_report.device_busy_s = if self.prefill_report.batches > 0 {
            self.busy_prefill.clone()
        } else {
            Vec::new()
        };
        self.decode_report.device_busy_s = if self.decode_report.launches > 0 {
            self.busy_decode.clone()
        } else {
            Vec::new()
        };
        let launches = self.prefill_report.batches + self.decode_report.launches;
        let device_util = self.device_util();
        EngineReport {
            policy: self.policy,
            prefill: self.prefill_report,
            decode: self.decode_report,
            launches,
            makespan_s: self.makespan_s,
            mem_budget_bytes: self.budget,
            mem_peak_bytes: self.mem_peak.total,
            mem_peak_prefill_bytes: self.mem_peak.prefill,
            mem_peak_decode_bytes: self.mem_peak.decode,
            device_util,
            preemptions_prefill: self.preemptions_prefill,
            preemptions_decode: self.preemptions_decode,
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace validation: a minimal JSON parser plus per-track span
// overlap checking (used by CI on serve_trace output).
// ---------------------------------------------------------------------------

/// Summary of a validated Chrome trace, from [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ChromeTraceStats {
    /// Total trace events.
    pub total_events: usize,
    /// `"X"` complete-event spans.
    pub spans: usize,
    /// `"C"` counter samples.
    pub counters: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// Distinct `(pid, tid)` tracks carrying at least one span.
    pub span_tracks: usize,
}

/// Parses Chrome trace-event JSON and verifies its structure: a top-level
/// array of objects, every `"X"` span with numeric `pid`/`tid`/`ts`/`dur`,
/// and — the scheduling invariant — **no two spans overlapping within one
/// `(pid, tid)` track** (1 ns tolerance for decimal round-tripping).
///
/// The invariant is deliberately per *thread row*, not per device: under
/// the overlap executor one device exports several rows (its scalar
/// dispatch row plus one row per [`TrackKind`]), and spans on different
/// rows of the same device overlap by design — a DMA stage streaming the
/// next tile runs under the current tile's MAC stage. Each single row is
/// still a FIFO queue and must serialize.
///
/// # Errors
///
/// A description of the first structural or overlap violation.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let value = parse_json(json)?;
    let JsonValue::Array(events) = value else {
        return Err("top-level value is not an array".to_string());
    };
    let mut stats = ChromeTraceStats {
        total_events: events.len(),
        ..ChromeTraceStats::default()
    };
    let mut tracks: BTreeMap<(i64, i64), Vec<(f64, f64)>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let JsonValue::Object(fields) = event else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(JsonValue::String(ph)) = get("ph") else {
            return Err(format!("event {i} lacks a string \"ph\""));
        };
        match ph.as_str() {
            "X" => {
                stats.spans += 1;
                let num = |k: &str| match get(k) {
                    Some(JsonValue::Number(n)) => Ok(*n),
                    _ => Err(format!("span {i} lacks numeric \"{k}\"")),
                };
                let (pid, tid) = (num("pid")?, num("tid")?);
                let (ts, dur) = (num("ts")?, num("dur")?);
                if !matches!(get("name"), Some(JsonValue::String(_))) {
                    return Err(format!("span {i} lacks a string \"name\""));
                }
                if dur < 0.0 {
                    return Err(format!("span {i} has negative dur"));
                }
                tracks
                    .entry((pid as i64, tid as i64))
                    .or_default()
                    .push((ts, dur));
            }
            "C" => stats.counters += 1,
            "i" => stats.instants += 1,
            _ => {}
        }
    }
    stats.span_tracks = tracks.len();
    for ((pid, tid), mut spans) in tracks {
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
        for pair in spans.windows(2) {
            let (prev_ts, prev_dur) = pair[0];
            let (next_ts, _) = pair[1];
            // 1e-3 µs = 1 ns tolerance for decimal formatting round-trips.
            if next_ts < prev_ts + prev_dur - 1e-3 {
                return Err(format!(
                    "track (pid {pid}, tid {tid}): span at ts={next_ts} overlaps previous span \
                     [{prev_ts}, {}]",
                    prev_ts + prev_dur
                ));
            }
        }
    }
    Ok(stats)
}

/// Escapes a string for embedding in JSON (returns the quoted literal).
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

enum JsonValue {
    Null,
    // The payload is carried for parse fidelity; no validator rule reads it.
    Bool(#[allow(dead_code)] bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut parser = JsonParser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                b => {
                    // Re-borrow multi-byte UTF-8 sequences whole.
                    if b < 0x80 {
                        out.push(char::from(b));
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while self.bytes.get(end).is_some_and(|&b| b & 0xc0 == 0x80) {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| "invalid UTF-8 in string".to_string())?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Bridges a cycle-level [`mas_sim::trace::Trace`] into Chrome trace-event
/// JSON: one thread per resource (first-appearance order), one `"X"` span
/// per trace entry, cycles converted to microseconds at `clock_hz`. The
/// output validates under [`validate_chrome_trace`] whenever the source
/// trace's per-resource spans are non-overlapping (which
/// `mas_sim::trace::Trace::overlap_cycles` can confirm).
#[must_use]
pub fn chrome_trace_from_sim(trace: &mas_sim::trace::Trace, clock_hz: f64) -> String {
    let clock_hz = if clock_hz > 0.0 { clock_hz } else { 1.0 };
    let us_per_cycle = 1e6 / clock_hz;
    let resources = trace.resources();
    let tid_of = |r: &mas_sim::Resource| {
        resources
            .iter()
            .position(|x| x == r)
            .expect("resource listed")
    };
    let mut out = String::from("[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, event: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&event);
    };
    push(
        &mut out,
        &mut first,
        r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"mas-sim"}}"#.to_string(),
    );
    for (tid, resource) in resources.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            format!(
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":{}}}}}"#,
                escape_json(&resource.to_string())
            ),
        );
    }
    for entry in trace.entries() {
        let ts = entry.start_cycle as f64 * us_per_cycle;
        let dur = entry.end_cycle.saturating_sub(entry.start_cycle) as f64 * us_per_cycle;
        push(
            &mut out,
            &mut first,
            format!(
                r#"{{"name":{},"cat":{},"ph":"X","pid":0,"tid":{},"ts":{ts},"dur":{dur}}}"#,
                escape_json(&entry.label),
                escape_json(&format!("{:?}", entry.task)),
                tid_of(&entry.resource),
            ),
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_buckets_by_binary_exponent() {
        // 2^-24 ≤ v < 2^-23 is bucket 0; each octave up is the next bucket.
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-1.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LogHistogram::bucket_index(2f64.powi(-24)), 0);
        assert_eq!(LogHistogram::bucket_index(2f64.powi(-23)), 1);
        assert_eq!(LogHistogram::bucket_index(1e-3), 14);
        assert_eq!(LogHistogram::bucket_index(1.0), 24);
        assert_eq!(LogHistogram::bucket_index(1e9), 31);
        // Upper bounds bracket their bucket.
        for v in [1e-6, 3.7e-4, 0.01, 2.5] {
            let i = LogHistogram::bucket_index(v);
            assert!(v < LogHistogram::bucket_upper_bound_s(i), "{v}");
            if i > 0 {
                assert!(v >= LogHistogram::bucket_upper_bound_s(i - 1), "{v}");
            }
        }
    }

    #[test]
    fn log_histogram_merges_like_combined_observation() {
        let samples = [1e-5, 2e-5, 1e-4, 3e-3, 3e-3, 0.5, 2.0];
        let mut combined = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            combined.observe(s);
            if i % 2 == 0 {
                left.observe(s);
            } else {
                right.observe(s);
            }
        }
        left.merge(&right);
        assert_eq!(left, combined);
        assert_eq!(left.count(), samples.len() as u64);
        assert!((left.sum_s() - samples.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantiles_return_bucket_bounds() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile_upper_bound_s(0.5), None);
        for _ in 0..9 {
            h.observe(1e-4); // bucket 10 (2^-14 ≤ v < 2^-13)
        }
        h.observe(1.0); // bucket 24
        let p50 = h.quantile_upper_bound_s(0.5).unwrap();
        assert!(1e-4 < p50 && p50 < 2e-4, "{p50}");
        let p99 = h.quantile_upper_bound_s(0.99).unwrap();
        assert_eq!(p99, LogHistogram::bucket_upper_bound_s(24));
    }

    #[test]
    fn json_parser_round_trips_structures() {
        let value = parse_json(
            r#"[{"name":"a\"b","ph":"X","ts":1.5e3,"dur":2,"ok":true,"none":null,"arr":[1,2]}]"#,
        )
        .unwrap();
        let JsonValue::Array(items) = value else {
            panic!("not an array")
        };
        assert_eq!(items.len(), 1);
        let JsonValue::Object(fields) = &items[0] else {
            panic!("not an object")
        };
        assert!(matches!(
            fields.iter().find(|(k, _)| k == "name"),
            Some((_, JsonValue::String(s))) if s == "a\"b"
        ));
        assert!(matches!(
            fields.iter().find(|(k, _)| k == "ts"),
            Some((_, JsonValue::Number(n))) if (*n - 1500.0).abs() < 1e-9
        ));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1] trailing").is_err());
    }

    #[test]
    fn validator_accepts_disjoint_and_rejects_overlapping_spans() {
        let good = r#"[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":10,"dur":5},
            {"name":"c","ph":"X","pid":0,"tid":1,"ts":3,"dur":100},
            {"name":"q","ph":"C","pid":0,"tid":0,"ts":1,"args":{"v":1}},
            {"name":"r","ph":"i","s":"t","pid":0,"tid":0,"ts":2}
        ]"#;
        let stats = validate_chrome_trace(good).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.span_tracks, 2);
        let overlapping = r#"[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":5,"dur":5}
        ]"#;
        let err = validate_chrome_trace(overlapping).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"[{"ph":"X","pid":0,"tid":0,"ts":0}]"#).is_err());
    }

    #[test]
    fn escape_json_quotes_specials() {
        assert_eq!(escape_json("plain"), "\"plain\"");
        assert_eq!(escape_json("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape_json("\u{1}"), "\"\\u0001\"");
        // Escaped output parses back to the original.
        let original = "span \"x\" \\ with\nnewline";
        let parsed = parse_json(&escape_json(original)).unwrap();
        assert!(matches!(parsed, JsonValue::String(s) if s == original));
    }

    #[test]
    fn time_series_accumulates_points() {
        let mut series = TimeSeries::new();
        assert!(series.is_empty());
        series.push(0.0, 1i64);
        series.push(1.0, 3);
        assert_eq!(series.len(), 2);
        assert_eq!(series.last(), Some(&3));
        assert_eq!(series.points[0], (0.0, 1));
    }

    #[test]
    fn seal_cause_and_mem_owner_labels() {
        assert_eq!(SealCause::Window.label(), "window");
        assert_eq!(SealCause::Flush.label(), "flush");
        assert_eq!(MemOwner::Session(3).to_string(), "session 3");
        assert_eq!(MemOwner::PrefillLaunch(1).to_string(), "prefill-launch 1");
    }
}
