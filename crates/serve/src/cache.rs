//! The shared, persistable schedule cache.
//!
//! Planning a batch — choosing a tiling (possibly via MCTS + GA search) and
//! simulating the resulting schedule — is a pure function of `(method,
//! workload shape, planner configuration)`, where the configuration spans
//! the hardware, the energy model and the tiling strategy with its tuner
//! budget and seed. The cache memoizes that function: tune once, replay the
//! plan for every subsequent request with the same key. Keys use the
//! workload *shape* `(batch, heads, seq_len, embed)` plus a
//! [`planning_fingerprint`] of the configuration, never the workload name,
//! so renamed but identical workloads share entries while caches built
//! under different planner configurations (e.g. heuristic vs. search-tuned)
//! never mix.
//!
//! Caches serialize to a versioned line-based text format ([`to_text`] /
//! [`from_text`], [`save`] / [`load`]) with float fields encoded as exact
//! IEEE-754 bit patterns, and [`merge`] combines caches from independent
//! processes: sharded Figure 7-style sweeps tune disjoint key sets in
//! parallel, then merge their caches into one equal to the jointly built
//! cache. Merging is commutative and associative (conflicts resolve by a
//! total order on entries), so shards can combine in any grouping.
//!
//! The format carries an integrity footer (entry count plus an FNV-1a
//! checksum of the entry lines), so a corrupted or truncated file — shard
//! caches travel between processes and machines — parses to an error
//! instead of panicking or silently dropping entries (pinned by property
//! test, `tests/cache_robustness.rs`).
//!
//! The `#[derive(Serialize, Deserialize)]` markers keep the types ready for
//! real serde (the vendored shim is marker-only; the hand-rolled text format
//! is the working persistence path until a registry is available).
//!
//! [`to_text`]: ScheduleCache::to_text
//! [`from_text`]: ScheduleCache::from_text
//! [`save`]: ScheduleCache::save
//! [`load`]: ScheduleCache::load
//! [`merge`]: ScheduleCache::merge

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use mas_attention::planner::TilingStrategy;
use mas_attention::PlannerConfig;
use mas_dataflow::{AttentionWorkload, DataflowKind, Tiling};
use mas_search::cost::Objective;
use mas_sim::HardwareConfig;

/// Magic first line of the serialized cache format.
const FORMAT_HEADER: &str = "mas-serve-schedule-cache v2";

/// Prefix of the integrity footer (last line of the format).
const FOOTER_PREFIX: &str = "# entries=";

/// Incremental FNV-1a hasher for configuration fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    fn eat_f64(&mut self, v: f64) {
        self.eat(&v.to_bits().to_le_bytes());
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
}

/// A 64-bit FNV-1a fingerprint of a hardware configuration, stable across
/// processes and platforms (floats hash by IEEE-754 bit pattern).
#[must_use]
pub fn hardware_fingerprint(hw: &HardwareConfig) -> u64 {
    let mut h = Fnv::new();
    h.eat(hw.name.as_bytes());
    for v in [hw.frequency_hz, hw.dram_bandwidth_bytes_per_s] {
        h.eat_f64(v);
    }
    for v in [
        hw.cores,
        hw.mac_array_rows,
        hw.mac_array_cols,
        hw.vec_lanes,
        hw.softmax_ops_per_element,
        hw.l1_bytes,
        hw.l0_bytes,
        hw.dram_bytes,
        hw.element_bytes,
    ] {
        h.eat_u64(v as u64);
    }
    for v in [hw.mac_fill_drain_cycles, hw.issue_overhead_cycles] {
        h.eat_u64(v);
    }
    h.0
}

/// A 64-bit fingerprint of everything a cached plan's *values* depend on
/// beyond the workload shape: the hardware, the energy model, the tiling
/// strategy and (for the search strategy) the tuner budget, objective and
/// seed. Two planner configurations with equal fingerprints produce
/// identical plans for every key, so caches built under them may be merged;
/// differing fingerprints keep their entries disjoint instead of silently
/// mixing, say, heuristic plans into a search-tuned serving process.
#[must_use]
pub fn planning_fingerprint(config: &PlannerConfig) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(hardware_fingerprint(&config.hardware));
    for v in [
        config.energy.dram_pj_per_byte,
        config.energy.l1_pj_per_byte,
        config.energy.l0_pj_per_byte,
        config.energy.mac_pj_per_op,
        config.energy.vec_pj_per_op,
        config.energy.l1_bytes_per_mac_operand_element,
        config.energy.l0_bytes_per_op,
    ] {
        h.eat_f64(v);
    }
    match config.tiling {
        TilingStrategy::Heuristic => h.eat(b"heuristic"),
        TilingStrategy::Search => {
            // The tuner budget, objective and seed all steer which tiling the
            // search lands on; `parallel` does not (bit-identical by test)
            // and is deliberately excluded.
            h.eat(b"search");
            for v in [
                config.tuner.mcts_iterations,
                config.tuner.mcts_rollout_batch,
                config.tuner.ga_population,
                config.tuner.ga_generations,
            ] {
                h.eat_u64(v as u64);
            }
            h.eat(match config.tuner.objective {
                Objective::Latency => b"lat",
                Objective::Energy => b"enr",
                Objective::EnergyDelay => b"edp",
            });
            h.eat_u64(config.seed);
        }
    }
    h.0
}

/// Identity of one cached plan: the method, the workload *shape* and the
/// [`planning_fingerprint`] of the configuration that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// The dataflow method.
    pub method: DataflowKind,
    /// Workload batch dimension (after any micro-batch merging).
    pub batch: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Per-head embedding size.
    pub embed: usize,
    /// [`planning_fingerprint`] of the planner configuration (hardware,
    /// energy model, tiling strategy, tuner budget/seed).
    pub config_fingerprint: u64,
}

impl CacheKey {
    /// Builds the key for a `(method, workload, planner configuration)`
    /// triple.
    #[must_use]
    pub fn of(method: DataflowKind, workload: &AttentionWorkload, config: &PlannerConfig) -> Self {
        Self {
            method,
            batch: workload.batch,
            heads: workload.heads,
            seq_len: workload.seq_len,
            embed: workload.embed,
            config_fingerprint: planning_fingerprint(config),
        }
    }
}

/// One memoized plan: the chosen tiling plus the simulation outcome of the
/// schedule it produces (the quantities the serving runtime replays without
/// re-planning).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedPlan {
    /// The tiling the planner chose.
    pub tiling: Tiling,
    /// Simulated execution cycles of the schedule.
    pub cycles: u64,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Simulated total energy in picojoules.
    pub energy_pj: f64,
    /// Simulated DRAM read traffic in bytes.
    pub dram_read_bytes: u64,
    /// Simulated DRAM write traffic in bytes.
    pub dram_write_bytes: u64,
    /// Whether the tiling came from search-based tuning (vs. the heuristic).
    pub tuned: bool,
}

impl CachedPlan {
    /// Total order used to resolve merge conflicts deterministically:
    /// lower-cost plans win, with exact bit-level tie-breaking so that
    /// `merge` is commutative and associative.
    fn rank(&self) -> (u64, u64, usize, usize, usize, usize, u64, u64, u64, bool) {
        (
            self.cycles,
            self.energy_pj.to_bits(),
            self.tiling.b_b,
            self.tiling.h_h,
            self.tiling.n_q,
            self.tiling.n_kv,
            self.seconds.to_bits(),
            self.dram_read_bytes,
            self.dram_write_bytes,
            self.tuned,
        )
    }
}

/// Errors loading or parsing a serialized cache.
#[derive(Debug)]
pub enum CacheError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed cache text.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache I/O error: {e}"),
            CacheError::Parse { line, reason } => {
                write!(f, "cache parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// The shared schedule cache. Equality compares entries only, so two caches
/// built by different processes (or via different merge orders) compare
/// equal when they memoize the same plans.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScheduleCache {
    entries: BTreeMap<CacheKey, CachedPlan>,
}

impl ScheduleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the plan for a key.
    #[must_use]
    pub fn lookup(&self, key: &CacheKey) -> Option<&CachedPlan> {
        self.entries.get(key)
    }

    /// Whether a key is memoized.
    #[must_use]
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts (or deterministically overrides, see [`CachedPlan::rank`]
    /// order) a plan.
    pub fn insert(&mut self, key: CacheKey, plan: CachedPlan) {
        self.entries
            .entry(key)
            .and_modify(|existing| {
                if plan.rank() < existing.rank() {
                    *existing = plan;
                }
            })
            .or_insert(plan);
    }

    /// Iterates entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&CacheKey, &CachedPlan)> {
        self.entries.iter()
    }

    /// Merges another cache into this one (set union; conflicting keys keep
    /// the lower-ranked plan). Commutative and associative: any grouping of
    /// shard merges produces the same cache as building jointly.
    pub fn merge(&mut self, other: &ScheduleCache) {
        for (key, plan) in &other.entries {
            self.insert(*key, *plan);
        }
    }

    /// Merges two caches into a new one.
    #[must_use]
    pub fn merged(mut a: ScheduleCache, b: &ScheduleCache) -> ScheduleCache {
        a.merge(b);
        a
    }

    /// Serializes the cache to the versioned text format. Deterministic:
    /// entries are emitted in key order with floats as exact bit patterns,
    /// so equal caches serialize identically. The final line is an integrity
    /// footer (entry count + FNV-1a checksum of the entry lines) that
    /// [`ScheduleCache::from_text`] verifies, so truncated or bit-flipped
    /// cache files are rejected instead of silently losing or corrupting
    /// entries.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut body = String::with_capacity(self.entries.len() * 96);
        for (k, p) in &self.entries {
            body.push_str(&format!(
                "m={} b={} h={} n={} e={} cfg={:016x} t={}/{}/{}/{} cyc={} s={:016x} epj={:016x} dr={} dw={} tuned={}\n",
                method_token(k.method),
                k.batch,
                k.heads,
                k.seq_len,
                k.embed,
                k.config_fingerprint,
                p.tiling.b_b,
                p.tiling.h_h,
                p.tiling.n_q,
                p.tiling.n_kv,
                p.cycles,
                p.seconds.to_bits(),
                p.energy_pj.to_bits(),
                p.dram_read_bytes,
                p.dram_write_bytes,
                u8::from(p.tuned),
            ));
        }
        let mut checksum = Fnv::new();
        checksum.eat(body.as_bytes());
        format!(
            "{FORMAT_HEADER}\n{body}{FOOTER_PREFIX}{} fnv={:016x}\n",
            self.entries.len(),
            checksum.0
        )
    }

    /// Parses a cache from the text format, verifying the integrity footer.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Parse`] on a bad header, a malformed line, a
    /// missing or misplaced footer (truncation), or a footer whose entry
    /// count or checksum does not match the entry lines (corruption). Never
    /// panics and never silently drops entries.
    pub fn from_text(text: &str) -> Result<Self, CacheError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim_end() == FORMAT_HEADER => {}
            other => {
                return Err(CacheError::Parse {
                    line: 1,
                    reason: format!(
                        "expected header {FORMAT_HEADER:?}, found {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                })
            }
        }
        let mut cache = ScheduleCache::new();
        let mut checksum = Fnv::new();
        let mut entry_lines: usize = 0;
        let mut footer: Option<(usize, usize, u64)> = None;
        for (idx, line) in lines {
            let line_no = idx + 1;
            if footer.is_some() {
                return Err(CacheError::Parse {
                    line: line_no,
                    reason: "content after the integrity footer".to_string(),
                });
            }
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(FOOTER_PREFIX) {
                let (count, fnv) = parse_footer(rest).map_err(|reason| CacheError::Parse {
                    line: line_no,
                    reason,
                })?;
                footer = Some((line_no, count, fnv));
                continue;
            }
            let (key, plan) = parse_entry(line).map_err(|reason| CacheError::Parse {
                line: line_no,
                reason,
            })?;
            checksum.eat(line.as_bytes());
            checksum.eat(b"\n");
            entry_lines += 1;
            cache.insert(key, plan);
        }
        let Some((footer_line, count, fnv)) = footer else {
            return Err(CacheError::Parse {
                line: text.lines().count().max(1),
                reason: "missing integrity footer (truncated cache?)".to_string(),
            });
        };
        if count != entry_lines {
            return Err(CacheError::Parse {
                line: footer_line,
                reason: format!("footer claims {count} entries, found {entry_lines}"),
            });
        }
        if fnv != checksum.0 {
            return Err(CacheError::Parse {
                line: footer_line,
                reason: format!(
                    "checksum mismatch: footer fnv={fnv:016x}, entries hash to {:016x}",
                    checksum.0
                ),
            });
        }
        Ok(cache)
    }

    /// Writes the cache to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CacheError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Reads a cache from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] on filesystem failure and
    /// [`CacheError::Parse`] on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CacheError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text)
    }
}

/// Stable serialization token of a method (the enum variant name).
fn method_token(method: DataflowKind) -> &'static str {
    match method {
        DataflowKind::LayerWise => "LayerWise",
        DataflowKind::SoftPipe => "SoftPipe",
        DataflowKind::Flat => "Flat",
        DataflowKind::TileFlow => "TileFlow",
        DataflowKind::FuseMax => "FuseMax",
        DataflowKind::MasAttention => "MasAttention",
    }
}

fn method_from_token(token: &str) -> Result<DataflowKind, String> {
    Ok(match token {
        "LayerWise" => DataflowKind::LayerWise,
        "SoftPipe" => DataflowKind::SoftPipe,
        "Flat" => DataflowKind::Flat,
        "TileFlow" => DataflowKind::TileFlow,
        "FuseMax" => DataflowKind::FuseMax,
        "MasAttention" => DataflowKind::MasAttention,
        other => return Err(format!("unknown method token {other:?}")),
    })
}

/// Parses the footer payload after [`FOOTER_PREFIX`]: `"<count> fnv=<hex>"`.
fn parse_footer(rest: &str) -> Result<(usize, u64), String> {
    let mut parts = rest.split_whitespace();
    let count = parts
        .next()
        .ok_or_else(|| "footer missing entry count".to_string())?
        .parse::<usize>()
        .map_err(|e| format!("footer entry count: {e}"))?;
    let fnv_field = parts
        .next()
        .ok_or_else(|| "footer missing fnv field".to_string())?;
    let fnv_hex = fnv_field
        .strip_prefix("fnv=")
        .ok_or_else(|| format!("footer field {fnv_field:?} is not fnv=<hex>"))?;
    // The canonical emitter writes exactly 16 lowercase hex digits; the
    // footer is the one line its own checksum cannot cover, so reject any
    // non-canonical spelling (`from_str_radix` alone would let a case-flipped
    // digit — a single-bit corruption — parse back to the same value).
    if fnv_hex.len() != 16
        || !fnv_hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(format!(
            "footer fnv {fnv_hex:?} is not 16 lowercase hex digits"
        ));
    }
    let fnv = u64::from_str_radix(fnv_hex, 16).map_err(|e| format!("footer fnv: {e}"))?;
    if let Some(extra) = parts.next() {
        return Err(format!("unexpected footer token {extra:?}"));
    }
    Ok((count, fnv))
}

fn parse_entry(line: &str) -> Result<(CacheKey, CachedPlan), String> {
    let mut fields: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    for token in line.split_whitespace() {
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| format!("token {token:?} is not key=value"))?;
        fields.insert(k, v);
    }
    let get = |name: &str| -> Result<&str, String> {
        fields
            .get(name)
            .copied()
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let usize_of = |name: &str| -> Result<usize, String> {
        get(name)?
            .parse::<usize>()
            .map_err(|e| format!("field {name:?}: {e}"))
    };
    let u64_of = |name: &str| -> Result<u64, String> {
        get(name)?
            .parse::<u64>()
            .map_err(|e| format!("field {name:?}: {e}"))
    };
    let bits_of = |name: &str| -> Result<u64, String> {
        u64::from_str_radix(get(name)?, 16).map_err(|e| format!("field {name:?}: {e}"))
    };

    let tiling_str = get("t")?;
    let parts: Vec<&str> = tiling_str.split('/').collect();
    if parts.len() != 4 {
        return Err(format!("tiling {tiling_str:?} must have four factors"));
    }
    let factor = |i: usize| -> Result<usize, String> {
        let v = parts[i]
            .parse::<usize>()
            .map_err(|e| format!("tiling factor {:?}: {e}", parts[i]))?;
        if v == 0 {
            return Err("tiling factors must be non-zero".to_string());
        }
        Ok(v)
    };

    let key = CacheKey {
        method: method_from_token(get("m")?)?,
        batch: usize_of("b")?,
        heads: usize_of("h")?,
        seq_len: usize_of("n")?,
        embed: usize_of("e")?,
        config_fingerprint: bits_of("cfg")?,
    };
    let plan = CachedPlan {
        tiling: Tiling {
            b_b: factor(0)?,
            h_h: factor(1)?,
            n_q: factor(2)?,
            n_kv: factor(3)?,
        },
        cycles: u64_of("cyc")?,
        seconds: f64::from_bits(bits_of("s")?),
        energy_pj: f64::from_bits(bits_of("epj")?),
        dram_read_bytes: u64_of("dr")?,
        dram_write_bytes: u64_of("dw")?,
        tuned: get("tuned")? == "1",
    };
    Ok((key, plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareConfig {
        HardwareConfig::edge_default()
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig::default()
    }

    fn key(method: DataflowKind, seq: usize) -> CacheKey {
        CacheKey::of(method, &AttentionWorkload::new("w", 1, 8, seq, 64), &cfg())
    }

    fn plan(cycles: u64) -> CachedPlan {
        CachedPlan {
            tiling: Tiling {
                b_b: 1,
                h_h: 1,
                n_q: 64,
                n_kv: 128,
            },
            cycles,
            seconds: cycles as f64 / 3.75e9,
            energy_pj: cycles as f64 * 1.5,
            dram_read_bytes: 1024,
            dram_write_bytes: 512,
            tuned: false,
        }
    }

    #[test]
    fn keys_ignore_workload_names() {
        let a = CacheKey::of(
            DataflowKind::Flat,
            &AttentionWorkload::new("alpha", 1, 8, 256, 64),
            &cfg(),
        );
        let b = CacheKey::of(
            DataflowKind::Flat,
            &AttentionWorkload::new("beta", 1, 8, 256, 64),
            &cfg(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_hardware() {
        let edge = hardware_fingerprint(&hw());
        let tiny = hardware_fingerprint(&HardwareConfig::tiny_test());
        assert_ne!(edge, tiny);
        let mut tweaked = hw();
        tweaked.l1_bytes += 1;
        assert_ne!(edge, hardware_fingerprint(&tweaked));
        assert_eq!(edge, hardware_fingerprint(&hw()), "fingerprint is stable");
    }

    #[test]
    fn planning_fingerprint_covers_strategy_energy_and_budget() {
        use mas_search::tuner::TunerConfig;

        let base = planning_fingerprint(&cfg());
        assert_eq!(base, planning_fingerprint(&cfg()), "stable");

        // Heuristic vs. search plans must never share keys.
        let search = PlannerConfig {
            tiling: TilingStrategy::Search,
            ..cfg()
        };
        assert_ne!(base, planning_fingerprint(&search));

        // Under search, the tuner budget and seed steer the chosen tiling.
        let bigger_budget = PlannerConfig {
            tuner: TunerConfig::full(),
            ..search.clone()
        };
        assert_ne!(
            planning_fingerprint(&search),
            planning_fingerprint(&bigger_budget)
        );
        let other_seed = PlannerConfig {
            seed: search.seed + 1,
            ..search.clone()
        };
        assert_ne!(
            planning_fingerprint(&search),
            planning_fingerprint(&other_seed)
        );
        // `parallel` is excluded: it is bit-identical to serial by test.
        let serial_tuner = PlannerConfig {
            tuner: TunerConfig::quick().serial(),
            ..search.clone()
        };
        let parallel_tuner = PlannerConfig {
            tuner: TunerConfig::quick(),
            ..search
        };
        assert_eq!(
            planning_fingerprint(&serial_tuner),
            planning_fingerprint(&parallel_tuner)
        );

        // A different energy model yields different cached energy values.
        let mut hot = cfg();
        hot.energy.dram_pj_per_byte *= 2.0;
        assert_ne!(base, planning_fingerprint(&hot));

        // Heuristic plans ignore the tuner budget/seed, so those fields are
        // excluded from the heuristic fingerprint.
        let heuristic_other_seed = PlannerConfig {
            seed: cfg().seed + 1,
            ..cfg()
        };
        assert_eq!(base, planning_fingerprint(&heuristic_other_seed));
    }

    #[test]
    fn text_round_trip_is_exact() {
        let mut cache = ScheduleCache::new();
        cache.insert(key(DataflowKind::MasAttention, 512), plan(12345));
        cache.insert(key(DataflowKind::Flat, 256), plan(999));
        // A plan with awkward float values survives bit-exactly.
        let mut p = plan(7);
        p.seconds = 1.0e-9 + f64::EPSILON;
        p.energy_pj = -0.0;
        p.tuned = true;
        cache.insert(key(DataflowKind::FuseMax, 196), p);

        let text = cache.to_text();
        let back = ScheduleCache::from_text(&text).unwrap();
        assert_eq!(back, cache);
        assert_eq!(back.to_text(), text, "serialization is canonical");
    }

    #[test]
    fn malformed_text_is_rejected_with_line_numbers() {
        assert!(matches!(
            ScheduleCache::from_text("bogus"),
            Err(CacheError::Parse { line: 1, .. })
        ));
        let text = format!("{FORMAT_HEADER}\nm=Nope b=1 h=1 n=1 e=1 cfg=0 t=1/1/1/1 cyc=0 s=0 epj=0 dr=0 dw=0 tuned=0\n");
        assert!(matches!(
            ScheduleCache::from_text(&text),
            Err(CacheError::Parse { line: 2, .. })
        ));
        let text = format!("{FORMAT_HEADER}\nm=Flat b=1\n");
        assert!(matches!(
            ScheduleCache::from_text(&text),
            Err(CacheError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn truncated_text_is_rejected_never_silently_shortened() {
        let mut cache = ScheduleCache::new();
        cache.insert(key(DataflowKind::MasAttention, 512), plan(1));
        cache.insert(key(DataflowKind::Flat, 256), plan(2));
        let text = cache.to_text();
        // Any prefix that loses data — including cuts at line boundaries,
        // which the pre-footer format accepted as a valid smaller cache —
        // must error. (The one exception is the cut that removes only the
        // final newline: the footer line is still complete and nothing is
        // lost.)
        for cut in 0..text.len() - 1 {
            assert!(
                matches!(
                    ScheduleCache::from_text(&text[..cut]),
                    Err(CacheError::Parse { .. })
                ),
                "prefix of {cut} bytes must not parse"
            );
        }
        let no_final_newline = &text[..text.len() - 1];
        assert_eq!(ScheduleCache::from_text(no_final_newline).unwrap(), cache);
    }

    #[test]
    fn footer_mismatches_are_rejected() {
        let mut cache = ScheduleCache::new();
        cache.insert(key(DataflowKind::Flat, 256), plan(9));
        let text = cache.to_text();

        // Tampered entry content under an untouched footer: checksum catches
        // it even though the line itself still parses.
        let tampered = text.replacen("dr=1024", "dr=1025", 1);
        assert_ne!(tampered, text);
        let err = ScheduleCache::from_text(&tampered).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // Wrong entry count.
        let wrong_count = text.replacen("# entries=1", "# entries=2", 1);
        let err = ScheduleCache::from_text(&wrong_count).unwrap_err();
        assert!(err.to_string().contains("entries"), "{err}");

        // Content after the footer.
        let trailing = format!("{text}m=Flat b=1\n");
        let err = ScheduleCache::from_text(&trailing).unwrap_err();
        assert!(
            err.to_string().contains("after the integrity footer"),
            "{err}"
        );

        // Malformed footer payload.
        let bad_footer = text.replacen("fnv=", "sum=", 1);
        assert!(ScheduleCache::from_text(&bad_footer).is_err());
    }

    #[test]
    fn empty_cache_round_trips_through_the_footer() {
        let cache = ScheduleCache::new();
        let text = cache.to_text();
        assert!(text.contains("# entries=0"));
        assert_eq!(ScheduleCache::from_text(&text).unwrap(), cache);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut a = ScheduleCache::new();
        a.insert(key(DataflowKind::Flat, 256), plan(100));
        a.insert(key(DataflowKind::MasAttention, 512), plan(200));
        let mut b = ScheduleCache::new();
        b.insert(key(DataflowKind::MasAttention, 512), plan(150)); // conflict
        b.insert(key(DataflowKind::FuseMax, 196), plan(300));
        let mut c = ScheduleCache::new();
        c.insert(key(DataflowKind::Flat, 256), plan(100)); // duplicate of a
        c.insert(key(DataflowKind::TileFlow, 512), plan(400));

        let ab = ScheduleCache::merged(a.clone(), &b);
        let ba = ScheduleCache::merged(b.clone(), &a);
        assert_eq!(ab, ba, "merge(a,b) == merge(b,a)");

        let ab_c = ScheduleCache::merged(ab.clone(), &c);
        let a_bc = ScheduleCache::merged(a.clone(), &ScheduleCache::merged(b.clone(), &c));
        assert_eq!(ab_c, a_bc, "merge is associative");

        // The conflicting key resolved to the lower-cost plan on both sides.
        assert_eq!(
            ab.lookup(&key(DataflowKind::MasAttention, 512))
                .unwrap()
                .cycles,
            150
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut cache = ScheduleCache::new();
        cache.insert(key(DataflowKind::MasAttention, 512), plan(42));
        let path =
            std::env::temp_dir().join(format!("mas-serve-cache-test-{}.txt", std::process::id()));
        cache.save(&path).unwrap();
        let back = ScheduleCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, cache);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            ScheduleCache::load("/nonexistent/mas-serve-cache.txt"),
            Err(CacheError::Io(_))
        ));
    }
}
