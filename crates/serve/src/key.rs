//! Typed launch-coalescing keys shared by both traffic classes.
//!
//! Work items merge into one device launch only when they share a kernel
//! shape. Historically the prefill batcher keyed on a `(method, heads,
//! seq_len, embed)` struct and the decode runtime on a private `(heads,
//! kv_heads, embed)` tuple-struct; the unified engine coalesces both
//! classes with one mechanism, so the two identities live here as the two
//! variants of [`LaunchKey`]: [`BatchKey`] for prefill batches and
//! [`DecodeKey`] for batched decode steps. The key is `Hash`/`Eq`/`Ord`
//! (launch maps and deterministic dispatch ordering) and `Display` (report
//! readability).

use serde::{Deserialize, Serialize};

use mas_dataflow::DataflowKind;
use mas_workloads::DecodeSessionSpec;

use crate::request::ServeRequest;

/// The two traffic classes the unified engine schedules on one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkClass {
    /// Fixed-shape prefill attention requests.
    Prefill,
    /// Single-token autoregressive decode steps.
    Decode,
}

impl std::fmt::Display for WorkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkClass::Prefill => "prefill",
            WorkClass::Decode => "decode",
        })
    }
}

/// The coalescing identity of a prefill request: requests merge only when
/// they ask for the same method on the same attention shape (the batch
/// dimension is what merging sums over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BatchKey {
    /// Requested dataflow method.
    pub method: DataflowKind,
    /// Attention heads of the shape.
    pub heads: usize,
    /// Sequence length of the shape.
    pub seq_len: usize,
    /// Per-head embedding size of the shape.
    pub embed: usize,
}

impl BatchKey {
    /// The batch key of one request.
    #[must_use]
    pub fn of(request: &ServeRequest) -> Self {
        Self {
            method: request.method,
            heads: request.workload.heads,
            seq_len: request.workload.seq_len,
            embed: request.workload.embed,
        }
    }
}

impl std::fmt::Display for BatchKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} h{} n{} e{}",
            self.method, self.heads, self.seq_len, self.embed
        )
    }
}

/// The coalescing identity of a decode step: launches merge only steps
/// whose kernels share the per-head geometry, including the grouped-query
/// KV head count (which changes the cache-stream traffic per step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DecodeKey {
    /// Query attention heads.
    pub heads: usize,
    /// Shared key/value heads (`kv_heads ≤ heads`).
    pub kv_heads: usize,
    /// Per-head embedding size.
    pub embed: usize,
}

impl DecodeKey {
    /// The decode key of one session's steps.
    #[must_use]
    pub fn of(session: &DecodeSessionSpec) -> Self {
        Self {
            heads: session.heads,
            kv_heads: session.kv_heads,
            embed: session.embed,
        }
    }
}

impl std::fmt::Display for DecodeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{} kv{} e{}", self.heads, self.kv_heads, self.embed)
    }
}

/// The identity of one chunk within a chunked-prefill chain. Unlike
/// [`BatchKey`]/[`DecodeKey`], a chunk key never coalesces: the chain id is
/// part of the identity precisely so chunks of *different* requests can
/// never merge into one launch, and the index pins each chunk's position in
/// its chain (dispatch is strictly `index` order within a chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkKey {
    /// Id of the chunk chain (the launch id of the chain's first chunk).
    pub chain: u64,
    /// Zero-based position of this chunk within the chain.
    pub index: u32,
    /// Total chunks in the chain (`index < of`).
    pub of: u32,
}

impl std::fmt::Display for ChunkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chain{} {}/{}", self.chain, self.index + 1, self.of)
    }
}

/// The unified coalescing key of the engine's launch map: a prefill batch
/// shape, a decode step shape, or one chunk of a chunked-prefill chain.
/// Keys of different classes never compare equal, so one
/// `BTreeMap<LaunchKey, _>` coalesces both traffic classes with one
/// mechanism while keeping their launches disjoint. Chunk keys carry their
/// chain id, so they are never shared across requests and never coalesce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LaunchKey {
    /// A prefill micro-batch shape.
    Prefill(BatchKey),
    /// A batched decode-step shape.
    Decode(DecodeKey),
    /// One chunk of a chunked-prefill chain (prefill traffic class).
    PrefillChunk(ChunkKey),
}

impl LaunchKey {
    /// The traffic class of launches under this key.
    #[must_use]
    pub fn class(&self) -> WorkClass {
        match self {
            LaunchKey::Prefill(_) | LaunchKey::PrefillChunk(_) => WorkClass::Prefill,
            LaunchKey::Decode(_) => WorkClass::Decode,
        }
    }
}

impl std::fmt::Display for LaunchKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchKey::Prefill(k) => write!(f, "prefill[{k}]"),
            LaunchKey::Decode(k) => write!(f, "decode[{k}]"),
            LaunchKey::PrefillChunk(k) => write!(f, "prefill-chunk[{k}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    use mas_dataflow::AttentionWorkload;
    use mas_workloads::Network;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    fn prefill_key() -> LaunchKey {
        LaunchKey::Prefill(BatchKey {
            method: DataflowKind::MasAttention,
            heads: 8,
            seq_len: 512,
            embed: 64,
        })
    }

    fn decode_key() -> LaunchKey {
        LaunchKey::Decode(DecodeKey {
            heads: 32,
            kv_heads: 8,
            embed: 64,
        })
    }

    #[test]
    fn equal_keys_hash_equal_and_unequal_keys_differ() {
        assert_eq!(prefill_key(), prefill_key());
        assert_eq!(hash_of(&prefill_key()), hash_of(&prefill_key()));
        assert_ne!(prefill_key(), decode_key());
        // Same numeric fields, different class: never equal.
        let p = LaunchKey::Prefill(BatchKey {
            method: DataflowKind::MasAttention,
            heads: 8,
            seq_len: 64,
            embed: 64,
        });
        let d = LaunchKey::Decode(DecodeKey {
            heads: 8,
            kv_heads: 64,
            embed: 64,
        });
        assert_ne!(p, d);
        // Every field participates in identity.
        let base = BatchKey {
            method: DataflowKind::Flat,
            heads: 8,
            seq_len: 256,
            embed: 64,
        };
        for other in [
            BatchKey {
                method: DataflowKind::MasAttention,
                ..base
            },
            BatchKey { heads: 12, ..base },
            BatchKey {
                seq_len: 512,
                ..base
            },
            BatchKey { embed: 128, ..base },
        ] {
            assert_ne!(base, other);
            assert_ne!(LaunchKey::Prefill(base), LaunchKey::Prefill(other));
        }
        let dbase = DecodeKey {
            heads: 8,
            kv_heads: 2,
            embed: 64,
        };
        for other in [
            DecodeKey { heads: 16, ..dbase },
            DecodeKey {
                kv_heads: 4,
                ..dbase
            },
            DecodeKey {
                embed: 128,
                ..dbase
            },
        ] {
            assert_ne!(LaunchKey::Decode(dbase), LaunchKey::Decode(other));
        }
    }

    #[test]
    fn keys_derive_from_requests_and_sessions() {
        let req = ServeRequest::new(
            7,
            0.0,
            DataflowKind::FuseMax,
            AttentionWorkload::new("toy", 3, 8, 256, 64),
            None,
        );
        let bk = BatchKey::of(&req);
        assert_eq!(
            (bk.method, bk.heads, bk.seq_len, bk.embed),
            (DataflowKind::FuseMax, 8, 256, 64),
            "the batch dimension is merged over, never part of the key"
        );
        let session = DecodeSessionSpec {
            id: 0,
            network: Network::Llama3_8B,
            start_s: 0.0,
            heads: 32,
            kv_heads: 8,
            embed: 64,
            prompt_len: 16,
            steps: 4,
            prefix_group: None,
            shared_prefix_len: 0,
        };
        let dk = DecodeKey::of(&session);
        assert_eq!((dk.heads, dk.kv_heads, dk.embed), (32, 8, 64));
    }

    #[test]
    fn ordering_is_total_and_groups_by_class() {
        let mut keys = [decode_key(), prefill_key()];
        keys.sort();
        assert_eq!(keys[0].class(), WorkClass::Prefill);
        assert_eq!(keys[1].class(), WorkClass::Decode);
    }

    #[test]
    fn chunk_keys_carry_chain_identity_and_never_collide_across_chains() {
        let k = |chain: u64, index: u32| {
            LaunchKey::PrefillChunk(ChunkKey {
                chain,
                index,
                of: 4,
            })
        };
        assert_eq!(k(7, 0).class(), WorkClass::Prefill);
        assert_eq!(k(7, 2), k(7, 2));
        assert_eq!(hash_of(&k(7, 2)), hash_of(&k(7, 2)));
        // Same index, different chain: distinct — chunks of different
        // requests can never coalesce into one launch.
        assert_ne!(k(7, 2), k(8, 2));
        // Within a chain, ordering follows the chunk index.
        assert!(k(7, 0) < k(7, 1));
        let s = k(7, 2).to_string();
        assert!(s.contains("prefill-chunk"), "{s}");
        assert!(s.contains("chain7") && s.contains("3/4"), "{s}");
    }

    #[test]
    fn display_is_human_readable() {
        let p = prefill_key().to_string();
        assert!(p.contains("prefill"), "{p}");
        assert!(
            p.contains("h8") && p.contains("n512") && p.contains("e64"),
            "{p}"
        );
        let d = decode_key().to_string();
        assert!(d.contains("decode"), "{d}");
        assert!(d.contains("h32") && d.contains("kv8"), "{d}");
        assert_eq!(WorkClass::Prefill.to_string(), "prefill");
        assert_eq!(WorkClass::Decode.to_string(), "decode");
    }
}
