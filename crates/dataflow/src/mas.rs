//! MAS-Attention — semi-synchronous MAC/VEC stream processing (Algorithm 1).
//!
//! Two streams of tiled tasks are scheduled per `(B_b, H_h)` chunk:
//!
//! * the **MAC stream** executes the two MatMuls — in steady state the MAC
//!   unit runs `O_{i-2} = P_{i-2} V` followed by `C_i = Q_i Kᵀ` in every
//!   round (Algorithm 1, lines 13–17),
//! * the **VEC stream** executes the softmax — `P_{i-1} = softmax(C_{i-1})`
//!   runs concurrently with the round's MAC work.
//!
//! The only cross-stream dependencies are the true data dependencies:
//! softmax of round `i` needs `C_i`, and `P_i V` needs `P_i`. The MAC stream
//! is therefore free to run ahead of the VEC stream by one round, which is
//! exactly the semi-synchronous pipelining the paper introduces.
//!
//! When the shared L1 cannot hold the full working set, the **proactive
//! buffer-overwrite strategy** (§4.3, [`crate::overwrite`]) sacrifices the
//! resident `K` or `V` tile to guarantee space for `P_i`, reloads it from
//! DRAM afterwards and redoes the interrupted MatMul sub-tile. The builder
//! records every such event in [`BuildStats`].

use mas_sim::task::TaskId;
use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::overwrite::{residency_plan, victim_for_round, OverwriteVictim, ResidencyPlan};
use crate::schedule::{plan_chunks, BuildStats, ChunkPlan, Emitter, Schedule};
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Builds the MAS-Attention schedule.
pub(crate) fn build(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Schedule {
    let eb = hw.element_bytes;
    let mut em = Emitter::new();
    let plans = plan_chunks(workload, tiling, hw);
    let plan_kind = residency_plan(workload, tiling, hw);
    let embed = workload.embed;

    let mut rounds_total = 0usize;
    let mut overwrite_events = 0usize;
    let mut reload_bytes = 0u64;
    let mut redo_mac_ops = 0u64;

    let resident = crate::schedule::preload_resident_kv(
        &mut em,
        &plans,
        workload,
        hw,
        plan_kind != ResidencyPlan::StreamKv,
    );

    for plan in &plans {
        let (k_resident, v_resident) = resident[plan.index];
        let mut chunk_builder = ChunkBuilder {
            em: &mut em,
            workload,
            tiling,
            plan,
            eb,
            embed,
            plan_kind,
            k_resident,
            v_resident,
        };
        let outcome = chunk_builder.emit();
        rounds_total += plan.query_blocks;
        overwrite_events += outcome.overwrite_events;
        reload_bytes += outcome.reload_bytes;
        redo_mac_ops += outcome.redo_mac_ops;
    }

    let stats = BuildStats {
        kind: DataflowKind::MasAttention,
        tiling: *tiling,
        rounds: rounds_total,
        overwrite_events,
        reload_bytes,
        redo_mac_ops,
        kv_resident: plan_kind != ResidencyPlan::StreamKv,
        l1_high_water_bytes: crate::footprint::footprint(
            DataflowKind::MasAttention,
            workload,
            tiling,
            eb,
        )
        .total_bytes(),
    };
    Schedule::new(em.into_graph(), stats)
}

/// Per-chunk emission outcome.
struct ChunkOutcome {
    overwrite_events: usize,
    reload_bytes: u64,
    redo_mac_ops: u64,
}

/// Emits Algorithm 1 for one `(B_b, H_h)` chunk.
struct ChunkBuilder<'a> {
    em: &'a mut Emitter,
    workload: &'a AttentionWorkload,
    tiling: &'a Tiling,
    plan: &'a ChunkPlan,
    eb: usize,
    embed: usize,
    plan_kind: ResidencyPlan,
    k_resident: Option<TaskId>,
    v_resident: Option<TaskId>,
}

impl ChunkBuilder<'_> {
    fn emit(&mut self) -> ChunkOutcome {
        let qb = self.plan.query_blocks;
        let mut outcome = ChunkOutcome {
            overwrite_events: 0,
            reload_bytes: 0,
            redo_mac_ops: 0,
        };

        // Resident K/V loads were prefetched by the caller (None when the
        // chunk streams its sub-tiles instead).
        let k_resident = self.k_resident;
        let v_resident = self.v_resident;

        // Per-round task handles.
        let mut qk_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); qb];
        let mut sm_tasks: Vec<Option<TaskId>> = vec![None; qb];
        let mut pv_last: Vec<Option<TaskId>> = vec![None; qb];

        // Warm-up: C_0 = Q_0 K^T (Algorithm 1, line 5).
        qk_tasks[0] = self.emit_qk(0, k_resident, None);

        for i in 1..qb {
            // VEC stream: P_{i-1} = softmax(C_{i-1}).
            sm_tasks[i - 1] = Some(self.emit_softmax(i - 1, &qk_tasks[i - 1]));

            // Proactive overwrite: producing P_{i-1} may need the space of
            // the resident K/V tile (§4.3). The victim is reloaded and the
            // interrupted MatMul sub-tile redone before the MAC stream
            // consumes it again.
            let mut reload_gate: Option<TaskId> = None;
            if self.plan_kind == ResidencyPlan::OverwriteKv {
                let victim = victim_for_round(i - 1);
                let (gate, bytes, redo) = self.emit_overwrite(i - 1, victim, sm_tasks[i - 1]);
                reload_gate = Some(gate);
                outcome.overwrite_events += 1;
                outcome.reload_bytes += bytes;
                outcome.redo_mac_ops += redo;
            }

            // MAC stream, steady state (i >= 2): O_{i-2} = P_{i-2} V.
            if i >= 2 {
                let pv = self.emit_pv(i - 2, sm_tasks[i - 2], v_resident, reload_gate);
                pv_last[i - 2] = pv.last().copied();
                self.emit_store_o(i - 2, &pv);
            }

            // MAC stream: C_i = Q_i K^T, gated on the completion of O_{i-2}
            // (Algorithm 1, line 16) but *not* on the concurrent softmax.
            let gate = if i >= 2 { pv_last[i - 2] } else { None };
            qk_tasks[i] = self.emit_qk(i, k_resident, gate.or(reload_gate));
        }

        // Finalize (Algorithm 1, lines 21–26).
        sm_tasks[qb - 1] = Some(self.emit_softmax(qb - 1, &qk_tasks[qb - 1]));
        if qb >= 2 {
            let pv = self.emit_pv(qb - 2, sm_tasks[qb - 2], v_resident, None);
            self.emit_store_o(qb - 2, &pv);
        }
        let pv = self.emit_pv(qb - 1, sm_tasks[qb - 1], v_resident, None);
        self.emit_store_o(qb - 1, &pv);

        outcome
    }

    /// Emits the Algorithm-2 sweep producing `C_i`.
    fn emit_qk(
        &mut self,
        i: usize,
        k_resident: Option<TaskId>,
        gate: Option<TaskId>,
    ) -> Vec<TaskId> {
        let chunk = self.plan.index;
        let core = self.plan.core;
        let q_rows = self.plan.q_rows(self.workload, self.tiling, i);
        let rows = q_rows * self.plan.slices;
        let q_bytes = self.plan.slices * q_rows * self.embed * self.eb;
        let load_q = self
            .em
            .load(format!("c{chunk} r{i}: load Q_{i}"), q_bytes, &[]);
        let mut tasks = Vec::with_capacity(self.plan.kv_tiles);
        for j in 0..self.plan.kv_tiles {
            let kv_cols = self.plan.kv_cols(self.workload, self.tiling, j);
            let mut deps = vec![load_q];
            if let Some(k) = k_resident {
                deps.push(k);
            } else {
                let bytes = self.plan.slices * kv_cols * self.embed * self.eb;
                deps.push(
                    self.em
                        .load(format!("c{chunk} r{i}: load K_{j}"), bytes, &[]),
                );
            }
            if let Some(g) = gate {
                deps.push(g);
            }
            tasks.push(self.em.matmul(
                format!("c{chunk} r{i}: C_{i},{j} = Q_{i} K_{j}^T"),
                core,
                rows,
                self.embed,
                kv_cols,
                &deps,
            ));
        }
        tasks
    }

    /// Emits the Algorithm-3 softmax for round `i`.
    fn emit_softmax(&mut self, i: usize, qk: &[TaskId]) -> TaskId {
        let chunk = self.plan.index;
        let core = self.plan.core;
        let q_rows = self.plan.q_rows(self.workload, self.tiling, i);
        let rows = q_rows * self.plan.slices;
        self.em.softmax(
            format!("c{chunk} r{i}: P_{i} = softmax(C_{i})"),
            core,
            rows,
            self.workload.seq_len,
            qk,
        )
    }

    /// Emits the Algorithm-4 sweep producing `O_i`.
    fn emit_pv(
        &mut self,
        i: usize,
        sm: Option<TaskId>,
        v_resident: Option<TaskId>,
        extra_gate: Option<TaskId>,
    ) -> Vec<TaskId> {
        let chunk = self.plan.index;
        let core = self.plan.core;
        let q_rows = self.plan.q_rows(self.workload, self.tiling, i);
        let rows = q_rows * self.plan.slices;
        let mut tasks = Vec::with_capacity(self.plan.kv_tiles);
        for j in 0..self.plan.kv_tiles {
            let kv_cols = self.plan.kv_cols(self.workload, self.tiling, j);
            let mut deps = Vec::new();
            if let Some(s) = sm {
                deps.push(s);
            }
            if let Some(v) = v_resident {
                deps.push(v);
            } else {
                let bytes = self.plan.slices * kv_cols * self.embed * self.eb;
                deps.push(
                    self.em
                        .load(format!("c{chunk} r{i}: load V_{j}"), bytes, &[]),
                );
            }
            if let Some(g) = extra_gate {
                deps.push(g);
            }
            tasks.push(self.em.matmul(
                format!("c{chunk} r{i}: O_{i} += P_{i},{j} V_{j}"),
                core,
                rows,
                kv_cols,
                self.embed,
                &deps,
            ));
        }
        tasks
    }

    /// Emits the DRAM store of `O_i`.
    fn emit_store_o(&mut self, i: usize, pv: &[TaskId]) {
        let chunk = self.plan.index;
        let q_rows = self.plan.q_rows(self.workload, self.tiling, i);
        let o_bytes = self.plan.slices * q_rows * self.embed * self.eb;
        self.em
            .store(format!("c{chunk} r{i}: store O_{i}"), o_bytes, pv);
    }

    /// Emits one proactive-overwrite event for round `i`: the victim tile is
    /// reloaded from DRAM after `P_i` is complete, and the interrupted MatMul
    /// sub-tile is redone. Returns the gate task the MAC stream must wait on,
    /// plus the reload bytes and redone MAC operations.
    fn emit_overwrite(
        &mut self,
        i: usize,
        victim: OverwriteVictim,
        sm: Option<TaskId>,
    ) -> (TaskId, u64, u64) {
        let chunk = self.plan.index;
        let core = self.plan.core;
        let kv_cols = self.plan.kv_cols(self.workload, self.tiling, 0);
        let bytes = self.plan.slices * kv_cols * self.embed * self.eb;
        let deps: Vec<TaskId> = sm.into_iter().collect();
        let reload = self.em.load(
            format!(
                "c{chunk} r{i}: reload {} tile after overwrite",
                victim.name()
            ),
            bytes,
            &deps,
        );
        // The interrupted MatMul sub-tile is redone once the operand is back.
        let q_rows = self.plan.q_rows(self.workload, self.tiling, i);
        let rows = q_rows * self.plan.slices;
        let (m, k, n) = match victim {
            // Interrupted O = P V sub-tile.
            OverwriteVictim::V => (rows, kv_cols, self.embed),
            // Interrupted C = Q K^T sub-tile.
            OverwriteVictim::K => (rows, self.embed, kv_cols),
        };
        let redo = self.em.matmul(
            format!("c{chunk} r{i}: redo interrupted MatMul ({})", victim.name()),
            core,
            m,
            k,
            n,
            &[reload],
        );
        (redo, bytes as u64, (m * k * n) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_sim::task::Resource;
    use mas_sim::{EnergyModel, Executor};

    fn toy() -> (AttentionWorkload, HardwareConfig, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 64, &w);
        (w, hw, t)
    }

    #[test]
    fn graph_is_valid_and_covers_all_work() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        assert_eq!(s.graph().total_mac_ops(), w.total_mac_ops());
        assert_eq!(s.stats().rounds, t.rounds(&w));
        assert_eq!(s.stats().overwrite_events, 0);
        // Writes are only the attention output, exactly like FLAT (§5.4.1).
        assert_eq!(
            s.graph().dram_write_bytes(),
            w.operand_bytes(hw.element_bytes)
        );
    }

    #[test]
    fn mas_overlaps_mac_and_vec_on_the_same_core() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        let report = Executor::new(hw, EnergyModel::edge_16nm())
            .run(s.graph())
            .unwrap();
        let trace = report.trace.as_ref().unwrap();
        let overlap = trace.overlap_cycles(Resource::Mac { core: 0 }, Resource::Vec { core: 0 });
        assert!(overlap > 0, "MAS must overlap MAC and VEC on the same core");
    }

    #[test]
    fn mas_is_faster_than_flat_and_layerwise() {
        let (w, hw, t) = toy();
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm());
        let mas = exec.run(build(&w, &t, &hw).graph()).unwrap().total_cycles;
        let flat = exec
            .run(crate::flat::build(&w, &t, &hw).graph())
            .unwrap()
            .total_cycles;
        let lw = exec
            .run(crate::layerwise::build(&w, &t, &hw).graph())
            .unwrap()
            .total_cycles;
        assert!(mas < flat, "MAS ({mas}) must beat FLAT ({flat})");
        assert!(mas < lw, "MAS ({mas}) must beat Layer-Wise ({lw})");
    }

    #[test]
    fn single_round_chunks_are_handled() {
        let w = AttentionWorkload::new("one-round", 1, 1, 32, 32);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 32, &w);
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        assert_eq!(s.stats().rounds, 1);
        assert_eq!(s.graph().total_mac_ops(), w.total_mac_ops());
    }

    #[test]
    fn overwrite_regime_adds_reload_traffic_and_redo_work() {
        // Pressure the L1 so that only the FLAT-like footprint fits together
        // with the resident K/V.
        let w = AttentionWorkload::new("long", 1, 2, 8192, 64);
        let t = Tiling::new(1, 2, 64, 512, &w);
        let mut hw = HardwareConfig::edge_default();
        hw.l1_bytes = 7 * 1024 * 1024;
        assert_eq!(residency_plan(&w, &t, &hw), ResidencyPlan::OverwriteKv);

        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        assert!(s.stats().overwrite_events > 0);
        assert!(s.stats().reload_bytes > 0);
        assert!(s.stats().redo_mac_ops > 0);
        // The schedule reads more from DRAM than the minimal Q+K+V.
        assert!(s.graph().dram_read_bytes() > 3 * w.operand_bytes(hw.element_bytes));
        // Writes stay equal to the output size (§5.4.1).
        assert_eq!(
            s.graph().dram_write_bytes(),
            w.operand_bytes(hw.element_bytes)
        );
        // Total MAC work = workload + redone sub-tiles.
        assert_eq!(
            s.graph().total_mac_ops(),
            w.total_mac_ops() + s.stats().redo_mac_ops
        );
    }
}
