//! FuseMax scaled down to the edge device.
//!
//! FuseMax (Nayak et al., 2024) decomposes attention into 12 einsum
//! primitives executed in a single fused pass: attention scores are computed
//! sub-tile by sub-tile, the softmax is evaluated *online* (running maximum
//! and denominator, with the already-accumulated output rescaled whenever the
//! maximum grows), and the weighted sum with `V` is folded into the same
//! pipeline. MAC and VEC work overlap, but the online decomposition costs
//! extra VEC passes (max-merge, rescale, accumulate-denominator) and a final
//! normalization, and the accumulator rescale adds vector work proportional
//! to the output tile each sub-tile step.
//!
//! Following the paper (§5.5), FuseMax uses manually selected tiling rather
//! than the search; the comparison harness in `mas-attention` passes it a
//! fixed heuristic tiling.

use mas_sim::task::TaskId;
use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::schedule::{kv_can_stay_resident, plan_chunks, BuildStats, Emitter, Schedule};
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Extra element-wise passes the online-softmax decomposition performs per
/// score element on top of the plain softmax cost (running-max merge and
/// denominator correction).
const ONLINE_EXTRA_PASSES: usize = 2;

/// Builds the FuseMax schedule.
pub(crate) fn build(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Schedule {
    let eb = hw.element_bytes;
    let mut em = Emitter::new();
    let plans = plan_chunks(workload, tiling, hw);
    let kv_resident = kv_can_stay_resident(DataflowKind::FuseMax, workload, tiling, hw);
    let embed = workload.embed;
    let mut rounds_total = 0usize;

    let resident = crate::schedule::preload_resident_kv(&mut em, &plans, workload, hw, kv_resident);

    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let (k_resident, v_resident) = resident[plan.index];

        for i in 0..plan.query_blocks {
            rounds_total += 1;
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let q_bytes = plan.slices * q_rows * embed * eb;
            let load_q = em.load(format!("c{chunk} r{i}: load Q_{i}"), q_bytes, &[]);

            // The online accumulator state is updated sequentially over the
            // K/V sub-tiles; score MatMuls for later sub-tiles may run ahead
            // on the MAC while the VEC digests earlier ones.
            let mut prev_update: Option<TaskId> = None;
            let mut prev_accum: Option<TaskId> = None;
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                // Score sub-tile S_j = Q_i K_j^T.
                let mut deps = vec![load_q];
                if let Some(k) = k_resident {
                    deps.push(k);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(format!("c{chunk} r{i}: load K_{j}"), bytes, &[]));
                }
                let score = em.matmul(
                    format!("c{chunk} r{i}: S_{i},{j} = Q_{i} K_{j}^T"),
                    core,
                    rows,
                    embed,
                    kv_cols,
                    &deps,
                );

                // Online softmax update for the sub-tile: exponentials plus
                // running max/denominator merges, then the rescale of the
                // output accumulator (rows × E elements).
                let mut update_deps = vec![score];
                if let Some(p) = prev_update {
                    update_deps.push(p);
                }
                let exp = em.softmax(
                    format!("c{chunk} r{i}: online exp/max S_{i},{j}"),
                    core,
                    rows,
                    kv_cols,
                    &update_deps,
                );
                let correction = em.vec_op(
                    format!("c{chunk} r{i}: online corrections {j}"),
                    core,
                    rows * kv_cols * ONLINE_EXTRA_PASSES + rows * embed,
                    1,
                    &[exp],
                );
                prev_update = Some(correction);

                // Accumulate O_i += P_{i,j} V_j on the MAC.
                let mut pv_deps = vec![correction];
                if let Some(v) = v_resident {
                    pv_deps.push(v);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    pv_deps.push(em.load(format!("c{chunk} r{i}: load V_{j}"), bytes, &[]));
                }
                if let Some(a) = prev_accum {
                    pv_deps.push(a);
                }
                let accum = em.matmul(
                    format!("c{chunk} r{i}: O_{i} += P_{i},{j} V_{j}"),
                    core,
                    rows,
                    kv_cols,
                    embed,
                    &pv_deps,
                );
                prev_accum = Some(accum);
            }

            // Final normalization by the accumulated denominator.
            let mut final_deps: Vec<TaskId> = Vec::new();
            if let Some(u) = prev_update {
                final_deps.push(u);
            }
            if let Some(a) = prev_accum {
                final_deps.push(a);
            }
            let normalize = em.vec_op(
                format!("c{chunk} r{i}: normalize O_{i}"),
                core,
                rows * embed,
                1,
                &final_deps,
            );
            let o_bytes = plan.slices * q_rows * embed * eb;
            em.store(format!("c{chunk} r{i}: store O_{i}"), o_bytes, &[normalize]);
        }
    }

    let stats = BuildStats {
        kind: DataflowKind::FuseMax,
        tiling: *tiling,
        rounds: rounds_total,
        overwrite_events: 0,
        reload_bytes: 0,
        redo_mac_ops: 0,
        kv_resident,
        l1_high_water_bytes: crate::footprint::footprint(
            DataflowKind::FuseMax,
            workload,
            tiling,
            eb,
        )
        .total_bytes(),
    };
    Schedule::new(em.into_graph(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_sim::{EnergyModel, Executor};

    fn toy() -> (AttentionWorkload, HardwareConfig, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 64, &w);
        (w, hw, t)
    }

    #[test]
    fn graph_is_valid_and_covers_all_matmul_work() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        assert_eq!(s.graph().total_mac_ops(), w.total_mac_ops());
        assert_eq!(
            s.graph().dram_write_bytes(),
            w.operand_bytes(hw.element_bytes)
        );
    }

    #[test]
    fn online_decomposition_costs_more_vec_work_than_plain_softmax() {
        let (w, hw, t) = toy();
        let fusemax = build(&w, &t, &hw);
        let mas = crate::mas::build(&w, &t, &hw);
        let ops = hw.softmax_ops_per_element;
        assert!(
            fusemax.graph().total_vec_ops(ops) > mas.graph().total_vec_ops(ops),
            "FuseMax's online softmax must perform extra vector work"
        );
    }

    #[test]
    fn fusemax_overlaps_but_trails_mas() {
        let (w, hw, t) = toy();
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm());
        let fm = exec.run(build(&w, &t, &hw).graph()).unwrap();
        let mas = exec.run(crate::mas::build(&w, &t, &hw).graph()).unwrap();
        assert!(fm.mac_vec_overlap_cycles > 0);
        assert!(
            mas.total_cycles <= fm.total_cycles,
            "MAS ({}) should not trail FuseMax ({})",
            mas.total_cycles,
            fm.total_cycles
        );
    }
}
