//! Enumeration of the evaluated attention dataflows.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The attention execution methods compared in the paper's evaluation
/// (Tables 2–3, Figures 5–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataflowKind {
    /// Unfused baseline: `C`, `P` round-trip DRAM between operators.
    LayerWise,
    /// Pipelines `QKᵀ` with softmax on-chip; `P` is stored to DRAM and
    /// `O = PV` runs sequentially afterwards.
    SoftPipe,
    /// FLAT row-granularity fusion; MAC and VEC serialized per round.
    Flat,
    /// TileFlow-style fused, stage-synchronous pipeline with a per-round
    /// barrier.
    TileFlow,
    /// FuseMax scaled down to the edge device: MAC/VEC overlap with an
    /// online-softmax decomposition (extra VEC passes) and manual tiling.
    FuseMax,
    /// MAS-Attention: semi-synchronous MAC/VEC stream processing with
    /// multi-tiered tiling and proactive buffer overwrite.
    MasAttention,
}

impl DataflowKind {
    /// All methods, in the column order of the paper's Table 2.
    #[must_use]
    pub const fn all() -> [DataflowKind; 6] {
        [
            DataflowKind::LayerWise,
            DataflowKind::SoftPipe,
            DataflowKind::Flat,
            DataflowKind::TileFlow,
            DataflowKind::FuseMax,
            DataflowKind::MasAttention,
        ]
    }

    /// The baseline methods (everything except MAS-Attention).
    #[must_use]
    pub const fn baselines() -> [DataflowKind; 5] {
        [
            DataflowKind::LayerWise,
            DataflowKind::SoftPipe,
            DataflowKind::Flat,
            DataflowKind::TileFlow,
            DataflowKind::FuseMax,
        ]
    }

    /// The subset of methods deployed on the real NPU in the paper's
    /// Figure 5 (TileFlow and FuseMax are simulation-only).
    #[must_use]
    pub const fn npu_methods() -> [DataflowKind; 4] {
        [
            DataflowKind::LayerWise,
            DataflowKind::SoftPipe,
            DataflowKind::Flat,
            DataflowKind::MasAttention,
        ]
    }

    /// Short display name matching the paper's tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DataflowKind::LayerWise => "Layer-Wise",
            DataflowKind::SoftPipe => "Soft-Pipe",
            DataflowKind::Flat => "FLAT",
            DataflowKind::TileFlow => "TileFlow",
            DataflowKind::FuseMax => "FuseMax",
            DataflowKind::MasAttention => "MAS-Attention",
        }
    }

    /// Whether the method keeps the `P = softmax(C)` intermediate entirely
    /// on-chip (never writing it to DRAM).
    #[must_use]
    pub const fn keeps_p_on_chip(self) -> bool {
        !matches!(self, DataflowKind::LayerWise | DataflowKind::SoftPipe)
    }

    /// Whether the method overlaps MAC and VEC work (heterogeneous
    /// parallelism), the property MAS-Attention introduces for edge devices.
    #[must_use]
    pub const fn overlaps_mac_vec(self) -> bool {
        matches!(
            self,
            DataflowKind::SoftPipe
                | DataflowKind::FuseMax
                | DataflowKind::MasAttention
                | DataflowKind::TileFlow
        )
    }
}

impl fmt::Display for DataflowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_six_distinct_methods() {
        let all = DataflowKind::all();
        assert_eq!(all.len(), 6);
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn baselines_exclude_mas() {
        assert!(!DataflowKind::baselines().contains(&DataflowKind::MasAttention));
        assert_eq!(DataflowKind::baselines().len(), 5);
    }

    #[test]
    fn npu_methods_match_figure_5() {
        let m = DataflowKind::npu_methods();
        assert_eq!(m.len(), 4);
        assert!(m.contains(&DataflowKind::MasAttention));
        assert!(!m.contains(&DataflowKind::TileFlow));
        assert!(!m.contains(&DataflowKind::FuseMax));
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(DataflowKind::Flat.name(), "FLAT");
        assert_eq!(DataflowKind::MasAttention.to_string(), "MAS-Attention");
    }

    #[test]
    fn structural_properties() {
        assert!(!DataflowKind::LayerWise.keeps_p_on_chip());
        assert!(!DataflowKind::SoftPipe.keeps_p_on_chip());
        assert!(DataflowKind::Flat.keeps_p_on_chip());
        assert!(DataflowKind::MasAttention.keeps_p_on_chip());
        assert!(!DataflowKind::Flat.overlaps_mac_vec());
        assert!(!DataflowKind::LayerWise.overlaps_mac_vec());
        assert!(DataflowKind::MasAttention.overlaps_mac_vec());
    }
}
