//! # mas-dataflow
//!
//! Attention dataflows for resource-constrained edge accelerators.
//!
//! This crate lowers an attention layer (`Q, K, V ∈ R^{B×H×N×E}`) into a
//! [`mas_sim::TaskGraph`] for each of the six methods evaluated by the
//! MAS-Attention paper (MLSys 2025):
//!
//! * [`DataflowKind::LayerWise`] — unfused baseline; `C` and `P` round-trip
//!   DRAM between the three operators.
//! * [`DataflowKind::SoftPipe`] — pipelines `QKᵀ` with softmax on-chip but
//!   stores `P` to DRAM and runs `O = PV` afterwards.
//! * [`DataflowKind::Flat`] — FLAT (Kao et al., 2023): fully fused rows kept
//!   on-chip, MAC and VEC strictly serialized per round.
//! * [`DataflowKind::TileFlow`] — fused, stage-synchronous pipeline with a
//!   barrier per computation round (Zheng et al., 2023, re-implemented as in
//!   the paper's §5.1).
//! * [`DataflowKind::FuseMax`] — FuseMax scaled down to the edge device:
//!   MAC/VEC overlap with an online-softmax decomposition into extra vector
//!   passes and accumulator rescaling.
//! * [`DataflowKind::MasAttention`] — the paper's contribution: the
//!   semi-synchronous MAC/VEC stream-processing schedule of Algorithm 1 with
//!   the multi-tiered tiling of Algorithms 2–4 and the proactive buffer
//!   overwrite strategy of §4.3.
//!
//! Every builder returns a [`schedule::Schedule`]: the task graph plus
//! construction statistics (rounds, overwrite events, reload traffic). The
//! graphs are simulated by `mas-sim`; the *numerical* counterparts used for
//! golden-data checks live in [`numeric`].
//!
//! Beyond the paper's fixed-shape prefill layers, [`decode`] models
//! autoregressive *decode* steps ([`DecodeStep`]): one new token attending
//! over the session's KV cache, with per-step cost linear in the context and
//! DRAM footprint math that counts only the new-token operands beyond the
//! unavoidable cache streaming, and [`cost`] provides the [`StreamDemand`]
//! three-stream cost currency both prefill workloads and decode steps lower
//! into — the glue the serving layer's unified prefill+decode launch
//! timeline is costed with.
//!
//! ## Example
//!
//! ```
//! use mas_dataflow::{AttentionWorkload, DataflowKind, Tiling, build_dataflow};
//! use mas_sim::{Executor, HardwareConfig, EnergyModel};
//!
//! let hw = HardwareConfig::edge_default();
//! let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
//! let tiling = Tiling::heuristic(&w, &hw);
//! let flat = build_dataflow(DataflowKind::Flat, &w, &tiling, &hw).unwrap();
//! let mas = build_dataflow(DataflowKind::MasAttention, &w, &tiling, &hw).unwrap();
//! let exec = Executor::new(hw, EnergyModel::edge_16nm());
//! let flat_cycles = exec.run(flat.graph()).unwrap().total_cycles;
//! let mas_cycles = exec.run(mas.graph()).unwrap().total_cycles;
//! assert!(mas_cycles < flat_cycles);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cost;
pub mod decode;
pub mod flat;
pub mod footprint;
pub mod fusemax;
pub mod kind;
pub mod layerwise;
pub mod mas;
pub mod max_seqlen;
pub mod numeric;
pub mod overwrite;
pub mod schedule;
pub mod softpipe;
pub mod tileflow;
pub mod tiling;
pub mod workload;

pub use cost::{StreamDemand, TrackDemand};
pub use decode::{DecodeStep, PrefillChunk};
pub use kind::DataflowKind;
pub use mas_tensor::half::KvDtype;
pub use schedule::{build_dataflow, BuildStats, Schedule};
pub use tiling::Tiling;
pub use workload::AttentionWorkload;
