//! On-chip (L1) working-set analysis per dataflow.
//!
//! Each method needs a different number of tiles resident in the shared L1
//! scratchpad at the same time. The footprint model below is used for three
//! purposes:
//!
//! 1. the tiling search rejects candidate tilings whose working set exceeds
//!    the L1 capacity for the method being tuned,
//! 2. the MAS-Attention builder decides whether the proactive overwrite
//!    strategy (§4.3) must be engaged (working set fits only if a resident
//!    `K`/`V` tile is sacrificed while `P_i` is produced), and
//! 3. the §5.6 maximum-sequence-length analysis ([`crate::max_seqlen`]).

use serde::{Deserialize, Serialize};

use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Byte sizes of the tiles a method keeps live simultaneously in L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Bytes of resident `Q` blocks (current plus any prefetched block).
    pub q_bytes: usize,
    /// Bytes of resident `K`/`V` sub-tiles.
    pub kv_bytes: usize,
    /// Bytes of resident `C`/`P` row blocks.
    pub cp_bytes: usize,
    /// Bytes of the output accumulator / output block.
    pub o_bytes: usize,
    /// Bytes of miscellaneous state (online-softmax running statistics, ...).
    pub misc_bytes: usize,
}

impl Footprint {
    /// Total bytes of the working set.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.q_bytes + self.kv_bytes + self.cp_bytes + self.o_bytes + self.misc_bytes
    }

    /// Whether the working set fits an L1 of `l1_bytes`.
    #[must_use]
    pub fn fits(&self, l1_bytes: usize) -> bool {
        self.total_bytes() <= l1_bytes
    }
}

/// Number of `C`/`P` row blocks (`N_Q × N` each) a method must keep live
/// simultaneously.
///
/// * FLAT — one: softmax runs in place on `C_i` before `PV` consumes it.
/// * Soft-Pipe — two: `C_{i+1}` is produced while `P_i` is drained to DRAM.
/// * TileFlow — three: its stage-synchronous pipeline holds `C_i`,
///   `P_{i-1}` and `P_{i-2}` across the per-round barrier.
/// * MAS-Attention — two: §5.6 derives that L1 must hold either
///   `P_i` and `P_{i-1}` or `P_i` and `C_{i+1}`.
/// * FuseMax — zero: the online decomposition never materializes a full
///   `N`-wide row block, only an `N_Q × N_{K,V}` score tile.
/// * Layer-Wise — one block in flight per operator phase.
#[must_use]
pub fn live_cp_blocks(kind: DataflowKind) -> usize {
    match kind {
        DataflowKind::LayerWise | DataflowKind::Flat => 1,
        DataflowKind::SoftPipe | DataflowKind::MasAttention => 2,
        DataflowKind::TileFlow => 3,
        DataflowKind::FuseMax => 0,
    }
}

/// Computes the L1 working set of `kind` under `tiling`, assuming `K` and
/// `V` are streamed sub-tile by sub-tile (two sub-tiles resident for double
/// buffering).
#[must_use]
pub fn footprint(
    kind: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    element_bytes: usize,
) -> Footprint {
    let q = tiling.q_block_bytes(workload, element_bytes);
    let kv_tile = tiling.kv_tile_bytes(workload, element_bytes);
    let c = tiling.c_block_bytes(workload, element_bytes);
    let o = tiling.o_block_bytes(workload, element_bytes);
    let slices = tiling.slices_per_round();

    let (q_bytes, kv_bytes, cp_bytes, o_bytes, misc_bytes) = match kind {
        DataflowKind::LayerWise => {
            // One operator at a time; the largest phase holds an operand
            // block, one K/V sub-tile (double buffered) and one C/P block.
            (q, 2 * kv_tile, c, o, 0)
        }
        DataflowKind::SoftPipe => {
            // Q double-buffered, two C blocks in the QK^T/softmax pipeline.
            (2 * q, 2 * kv_tile, 2 * c, o, 0)
        }
        DataflowKind::Flat => (q, 2 * kv_tile, c, o, 0),
        DataflowKind::TileFlow => (2 * q, 2 * kv_tile, 3 * c, o, 0),
        DataflowKind::FuseMax => {
            // Score tile N_Q × N_KV plus running max/denominator per row.
            let score = slices * tiling.n_q * tiling.n_kv * element_bytes;
            let stats = slices * tiling.n_q * 2 * element_bytes;
            (q, 2 * kv_tile, score, o, stats)
        }
        DataflowKind::MasAttention => (2 * q, 2 * kv_tile, 2 * c, o, 0),
    };
    Footprint {
        q_bytes,
        kv_bytes,
        cp_bytes,
        o_bytes,
        misc_bytes,
    }
}

/// Bytes needed to additionally keep the whole `K` and `V` of one
/// `(B_b, H_h)` chunk resident across all of its query blocks (which removes
/// the per-round re-streaming of `K`/`V`).
#[must_use]
pub fn resident_kv_bytes(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    element_bytes: usize,
) -> usize {
    2 * tiling.slices_per_round() * workload.seq_len * workload.embed * element_bytes
}

/// Whether a method/tiling pair fits the device's L1 when `K`/`V` are merely
/// streamed (the weakest requirement a tiling must satisfy to be valid).
#[must_use]
pub fn tiling_fits(
    kind: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> bool {
    footprint(kind, workload, tiling, hw.element_bytes).fits(hw.l1_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn live_block_counts_follow_the_paper() {
        assert_eq!(live_cp_blocks(DataflowKind::Flat), 1);
        assert_eq!(live_cp_blocks(DataflowKind::MasAttention), 2);
        assert_eq!(live_cp_blocks(DataflowKind::TileFlow), 3);
        assert_eq!(live_cp_blocks(DataflowKind::FuseMax), 0);
    }

    #[test]
    fn mas_needs_more_l1_than_flat() {
        let w = bert();
        let t = Tiling::new(1, 1, 64, 128, &w);
        let flat = footprint(DataflowKind::Flat, &w, &t, 2);
        let mas = footprint(DataflowKind::MasAttention, &w, &t, 2);
        assert!(mas.total_bytes() > flat.total_bytes());
        assert_eq!(mas.cp_bytes, 2 * flat.cp_bytes);
    }

    #[test]
    fn fusemax_footprint_is_independent_of_sequence_length() {
        let short = AttentionWorkload::new("short", 1, 1, 512, 64);
        let long = AttentionWorkload::new("long", 1, 1, 1 << 20, 64);
        let t_short = Tiling::new(1, 1, 16, 64, &short);
        let t_long = Tiling::new(1, 1, 16, 64, &long);
        let a = footprint(DataflowKind::FuseMax, &short, &t_short, 2);
        let b = footprint(DataflowKind::FuseMax, &long, &t_long, 2);
        assert_eq!(a.cp_bytes, b.cp_bytes);
        // MAS's footprint on the other hand grows with N.
        let m_short = footprint(DataflowKind::MasAttention, &short, &t_short, 2);
        let m_long = footprint(DataflowKind::MasAttention, &long, &t_long, 2);
        assert!(m_long.cp_bytes > m_short.cp_bytes);
    }

    #[test]
    fn footprints_fit_the_edge_device_for_table1_tilings() {
        let hw = HardwareConfig::edge_default();
        let w = bert();
        let t = Tiling::heuristic(&w, &hw);
        for kind in DataflowKind::all() {
            assert!(
                tiling_fits(kind, &w, &t, &hw),
                "{kind} should fit the 5 MB L1 with the heuristic tiling"
            );
        }
    }

    #[test]
    fn resident_kv_scales_with_heads_per_chunk() {
        let w = bert();
        let t1 = Tiling::new(1, 1, 64, 128, &w);
        let t2 = Tiling::new(1, 4, 64, 128, &w);
        assert_eq!(
            4 * resident_kv_bytes(&w, &t1, 2),
            resident_kv_bytes(&w, &t2, 2)
        );
    }

    #[test]
    fn footprint_total_is_sum_of_parts() {
        let w = bert();
        let t = Tiling::new(1, 1, 64, 128, &w);
        let f = footprint(DataflowKind::SoftPipe, &w, &t, 2);
        assert_eq!(
            f.total_bytes(),
            f.q_bytes + f.kv_bytes + f.cp_bytes + f.o_bytes + f.misc_bytes
        );
        assert!(f.fits(usize::MAX));
        assert!(!f.fits(1));
    }
}
