//! Autoregressive decode-step workloads and their cost/footprint math.
//!
//! The paper's workloads ([`AttentionWorkload`]) are fixed-shape *prefill*
//! layers: `N` queries against `N` keys, `O(N²)` work. Real LLM serving is
//! dominated by *decode* traffic: one new token per step whose single query
//! row attends over the `t` rows already in the session's KV cache. A
//! [`DecodeStep`] describes one such step, and its cost model differs from
//! prefill in two structural ways:
//!
//! 1. **Work is linear in the context.** One query row means `2·B·H·t·E`
//!    MACs and `B·H·t` softmax elements per step — versus the quadratic
//!    `2·B·H·t²·E` of re-running prefill over the whole sequence.
//! 2. **Only the new token's operands hit DRAM as fresh traffic.** The
//!    cached `K`/`V` rows are *read* (streamed through L1 once), but the
//!    only new operands are the step's `q`/`k`/`v` rows in and `o` row out —
//!    `4·B·H·E` elements, independent of `t`. Prefill re-reads and re-writes
//!    full `N×E` operands every time.
//!
//! [`decode_footprint`] gives the L1 working set of the streaming decode
//! kernel (FuseMax-like: score strip + running statistics, no `N×N`
//! intermediate), used by the serving layer to screen steps against the
//! device, and [`DecodeStep::prefill_equivalent`] produces the
//! [`AttentionWorkload`] a recompute-per-step baseline would run — the same
//! conversion the differential decode-vs-prefill tests exploit.

use serde::{Deserialize, Serialize};
use std::fmt;

use mas_sim::HardwareConfig;

use crate::footprint::Footprint;
use crate::workload::AttentionWorkload;

/// One autoregressive decode step: a single new token per sequence, whose
/// query row attends over `context_len` cached tokens (the new token's own
/// `K`/`V` rows included).
///
/// With grouped-query head sharing ([`DecodeStep::with_kv_heads`]) the step
/// has `kv_heads ≤ heads` shared K/V heads: compute is unchanged (every
/// query head still scores `t` keys) but KV residency and cache-stream
/// traffic shrink by `kv_heads / heads`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodeStep {
    /// Human-readable name, e.g. `"llama3-decode"`.
    pub name: String,
    /// Number of sequences decoded together (batched sessions).
    pub batch: usize,
    /// Number of query attention heads `H`.
    pub heads: usize,
    /// Number of shared key/value heads (`kv_heads ≤ heads`, dividing
    /// `heads`; equal for plain MHA, `1` for MQA).
    pub kv_heads: usize,
    /// Tokens attended this step: the KV-cache residency *after* appending
    /// the new token (`t`).
    pub context_len: usize,
    /// Per-head embedding size `E`.
    pub embed: usize,
}

impl DecodeStep {
    /// Creates a plain multi-head decode-step description
    /// (`kv_heads == heads`).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        batch: usize,
        heads: usize,
        context_len: usize,
        embed: usize,
    ) -> Self {
        assert!(
            batch > 0 && heads > 0 && context_len > 0 && embed > 0,
            "decode step dimensions must be non-zero"
        );
        Self {
            name: name.into(),
            batch,
            heads,
            kv_heads: heads,
            context_len,
            embed,
        }
    }

    /// Returns the step with `kv_heads` shared key/value heads
    /// (grouped-query attention; `kv_heads == 1` is MQA).
    ///
    /// # Panics
    ///
    /// Panics if `kv_heads` is zero, exceeds `heads` or does not divide it
    /// (the numeric layer rejects the same configurations with a typed
    /// error — `mas_tensor::decode::check_head_grouping`).
    #[must_use]
    pub fn with_kv_heads(mut self, kv_heads: usize) -> Self {
        assert!(
            kv_heads > 0 && kv_heads <= self.heads && self.heads.is_multiple_of(kv_heads),
            "kv_heads must be non-zero and divide the query head count"
        );
        self.kv_heads = kv_heads;
        self
    }

    /// Query heads per shared KV head (`1` for plain MHA).
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.heads / self.kv_heads
    }

    /// Number of independent `(batch, head)` decode slices.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.batch * self.heads
    }

    /// Multiply-accumulate operations of one step: the single query row's
    /// `q·Kᵀ` scores plus the `p·V` accumulation — `2 · B · H · t · E`,
    /// linear in the context.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        2 * self.slices() as u64 * self.context_len as u64 * self.embed as u64
    }

    /// Softmax elements of one step (`B · H · t`).
    #[must_use]
    pub fn softmax_elements(&self) -> u64 {
        self.slices() as u64 * self.context_len as u64
    }

    /// Bytes of one *query-head-wide* new-token operand row set (`q` or
    /// `o`): `B · H · E` elements — independent of the context length.
    #[must_use]
    pub fn new_token_bytes(&self, element_bytes: usize) -> u64 {
        self.slices() as u64 * self.embed as u64 * element_bytes as u64
    }

    /// Bytes of one *KV-head-wide* new-token row set (`k` or `v`):
    /// `B · H_kv · E` elements — grouped-query sharing shrinks the appended
    /// rows along with the cache.
    #[must_use]
    pub fn new_kv_token_bytes(&self, element_bytes: usize) -> u64 {
        self.batch as u64 * self.kv_heads as u64 * self.embed as u64 * element_bytes as u64
    }

    /// Bytes of the resident KV cache attended this step
    /// (`2 · B · H_kv · t · E` elements) — what a serving layer charges
    /// against the device memory budget for session residency under
    /// token-granular accounting. Scales by `kv_heads / heads` relative to
    /// plain MHA.
    #[must_use]
    pub fn kv_cache_bytes(&self, element_bytes: usize) -> u64 {
        2 * self.batch as u64
            * self.kv_heads as u64
            * self.context_len as u64
            * self.embed as u64
            * element_bytes as u64
    }

    /// `K` plus `V` bytes of one `block_tokens`-token KV block
    /// (`2 · B · H_kv · block_tokens · E` elements) — the allocation granule
    /// of the paged KV path. A zero block size is clamped to one token,
    /// matching [`DecodeStep::kv_blocks`], so degenerate configurations
    /// never account zero bytes per block.
    #[must_use]
    pub fn kv_block_bytes(&self, block_tokens: usize, element_bytes: usize) -> u64 {
        2 * self.batch as u64
            * self.kv_heads as u64
            * block_tokens.max(1) as u64
            * self.embed as u64
            * element_bytes as u64
    }

    /// Blocks needed to hold the step's context at `block_tokens` tokens per
    /// block (the last block may be partially filled).
    #[must_use]
    pub fn kv_blocks(&self, block_tokens: usize) -> u64 {
        self.context_len.div_ceil(block_tokens.max(1)) as u64
    }

    /// Bytes of the *allocated* KV blocks under block-granular accounting:
    /// `kv_blocks · kv_block_bytes` — residency counts allocated blocks, not
    /// max context, so a serving layer charging this grows a session's bill
    /// as it decodes instead of reserving worst case up front.
    #[must_use]
    pub fn paged_kv_bytes(&self, block_tokens: usize, element_bytes: usize) -> u64 {
        self.kv_blocks(block_tokens) * self.kv_block_bytes(block_tokens, element_bytes)
    }

    /// Bytes of this step's allocated KV blocks that are *shared* with
    /// sibling sessions under cross-session prefix sharing: only whole
    /// blocks fully inside the shared prefix count (the floor — a partially
    /// shared tail block is private after copy-on-write), clamped to the
    /// session's own context. A serving layer charges these bytes once per
    /// prefix group, not once per session, so effective residency is
    /// `paged_kv_bytes − shared_kv_bytes` plus one group-wide copy.
    #[must_use]
    pub fn shared_kv_bytes(
        &self,
        block_tokens: usize,
        shared_prefix_len: usize,
        element_bytes: usize,
    ) -> u64 {
        let shared_blocks = (shared_prefix_len.min(self.context_len) / block_tokens.max(1)) as u64;
        shared_blocks * self.kv_block_bytes(block_tokens, element_bytes)
    }

    /// Internal fragmentation of block-granular residency at this context:
    /// the fraction of allocated token slots not holding a token (`0.0`
    /// when the context fills its blocks exactly, bounded by
    /// `(block_tokens − 1) / block_tokens`).
    #[must_use]
    pub fn kv_fragmentation(&self, block_tokens: usize) -> f64 {
        let slots = self.kv_blocks(block_tokens) * block_tokens.max(1) as u64;
        1.0 - self.context_len as f64 / slots as f64
    }

    /// Minimum DRAM traffic of one KV-cached step: stream the cached `K`/`V`
    /// rows in once, read the new `q` row and write the appended `k`/`v`
    /// rows and the output row. Only the new-token operands appear beyond
    /// the unavoidable cache streaming — contrast
    /// [`DecodeStep::recompute_dram_traffic_bytes`]. Grouped-query sharing
    /// shrinks both the cache stream and the appended rows.
    #[must_use]
    pub fn min_dram_traffic_bytes(&self, element_bytes: usize) -> u64 {
        // Reads: cached K/V (includes the just-appended rows) + q row.
        // Writes: appended k/v rows + o row.
        self.kv_cache_bytes(element_bytes)
            + 2 * self.new_token_bytes(element_bytes)
            + 2 * self.new_kv_token_bytes(element_bytes)
    }

    /// [`DecodeStep::min_dram_traffic_bytes`] with the KV-resident terms
    /// (the cache stream and the appended `k`/`v` rows) priced at
    /// `kv_element_bytes` while the activation rows (`q` in, `o` out) stay
    /// at `activation_element_bytes` — the traffic of a runtime storing its
    /// KV cache in a narrower dtype than its activations (f16 KV under f32
    /// compute halves every KV term). Equal element sizes reduce to the
    /// unsplit formula.
    #[must_use]
    pub fn min_dram_traffic_bytes_split(
        &self,
        activation_element_bytes: usize,
        kv_element_bytes: usize,
    ) -> u64 {
        self.kv_cache_bytes(kv_element_bytes)
            + 2 * self.new_token_bytes(activation_element_bytes)
            + 2 * self.new_kv_token_bytes(kv_element_bytes)
    }

    /// The write-direction share of [`DecodeStep::min_dram_traffic_bytes_split`]:
    /// the appended `k`/`v` rows (KV dtype) and the output row (activation
    /// dtype). The remainder of the split traffic — the cache stream plus
    /// the `q` row — is read-direction. The track executor puts the two
    /// directions on separate DMA queues, so the split must partition the
    /// total exactly.
    #[must_use]
    pub fn min_dram_write_bytes_split(
        &self,
        activation_element_bytes: usize,
        kv_element_bytes: usize,
    ) -> u64 {
        self.new_token_bytes(activation_element_bytes)
            + 2 * self.new_kv_token_bytes(kv_element_bytes)
    }

    /// Minimum DRAM traffic of the recompute-per-step baseline: re-running
    /// full prefill over the `t`-token sequence (read `Q`, `K`, `V`, write
    /// `O` — all `t × E` per head), which is what a runtime without a KV
    /// cache pays every step.
    #[must_use]
    pub fn recompute_dram_traffic_bytes(&self, element_bytes: usize) -> u64 {
        self.prefill_equivalent()
            .min_dram_traffic_bytes(element_bytes)
    }

    /// The prefill workload whose final query row computes the same
    /// attention as this step: `t` queries over `t` keys. This is both the
    /// recompute-per-step baseline's workload and the oracle shape of the
    /// differential decode-vs-prefill tests.
    #[must_use]
    pub fn prefill_equivalent(&self) -> AttentionWorkload {
        AttentionWorkload::new(
            format!("{}@prefill", self.name),
            self.batch,
            self.heads,
            self.context_len,
            self.embed,
        )
    }

    /// Returns a copy at a different context length (used by per-step sweeps
    /// as the cache grows).
    #[must_use]
    pub fn with_context(&self, context_len: usize) -> Self {
        Self {
            name: format!("{}@t{context_len}", self.name),
            context_len,
            ..self.clone()
        }
    }
}

impl fmt::Display for DecodeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (B={}, H={}, t={}, E={}",
            self.name, self.batch, self.heads, self.context_len, self.embed
        )?;
        if self.kv_heads != self.heads {
            write!(f, ", KV={}", self.kv_heads)?;
        }
        f.write_str(")")
    }
}

/// One chunk of a chunked (Sarathi-style) prefill: `chunk_tokens` new query
/// rows attending causally over the `prefilled_len` tokens already in the
/// KV cache plus the chunk itself. The cost model is the decode model
/// generalized from one query row to `chunk_tokens` rows: the chunk is
/// arithmetically identical to the sum of the decode steps at contexts
/// `prefilled_len + 1 ..= prefilled_len + chunk_tokens`, fused into one
/// launch (one issue overhead, one kernel).
///
/// Splitting a long prompt into such chunks bounds how long a single
/// prefill launch can occupy a device, which is what lets a serving layer
/// interleave decode steps at chunk granularity instead of stalling them
/// for a full prompt length.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefillChunk {
    /// Number of sequences prefilled together.
    pub batch: usize,
    /// Number of query attention heads `H`.
    pub heads: usize,
    /// Number of shared key/value heads (`kv_heads ≤ heads`, dividing
    /// `heads`).
    pub kv_heads: usize,
    /// Tokens already resident in the KV cache before this chunk (zero for
    /// the first chunk of a prompt).
    pub prefilled_len: usize,
    /// New tokens this chunk prefills.
    pub chunk_tokens: usize,
    /// Per-head embedding size `E`.
    pub embed: usize,
}

impl PrefillChunk {
    /// Creates a plain multi-head chunk description (`kv_heads == heads`).
    ///
    /// # Panics
    ///
    /// Panics if `batch`, `heads`, `chunk_tokens` or `embed` is zero
    /// (`prefilled_len` may be zero: the first chunk of a prompt).
    #[must_use]
    pub fn new(
        batch: usize,
        heads: usize,
        prefilled_len: usize,
        chunk_tokens: usize,
        embed: usize,
    ) -> Self {
        assert!(
            batch > 0 && heads > 0 && chunk_tokens > 0 && embed > 0,
            "prefill chunk dimensions must be non-zero"
        );
        Self {
            batch,
            heads,
            kv_heads: heads,
            prefilled_len,
            chunk_tokens,
            embed,
        }
    }

    /// Returns the chunk with `kv_heads` shared key/value heads.
    ///
    /// # Panics
    ///
    /// Panics if `kv_heads` is zero, exceeds `heads` or does not divide it.
    #[must_use]
    pub fn with_kv_heads(mut self, kv_heads: usize) -> Self {
        assert!(
            kv_heads > 0 && kv_heads <= self.heads && self.heads.is_multiple_of(kv_heads),
            "kv_heads must be non-zero and divide the query head count"
        );
        self.kv_heads = kv_heads;
        self
    }

    /// Summed context length over the chunk's query rows under causal
    /// attention: row `i` (zero-based) attends `prefilled_len + i + 1`
    /// tokens, so the total is
    /// `Σ_{t = p+1}^{p+c} t = c·p + c·(c+1)/2`.
    #[must_use]
    pub fn token_span(&self) -> u64 {
        let p = self.prefilled_len as u64;
        let c = self.chunk_tokens as u64;
        c * p + c * (c + 1) / 2
    }

    /// Multiply-accumulate operations of the chunk: each query row pays the
    /// decode-step `2·B·H·t·E` at its own causal context, summed —
    /// `2 · B · H · token_span · E`.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        2 * self.batch as u64 * self.heads as u64 * self.token_span() * self.embed as u64
    }

    /// Softmax elements of the chunk (`B · H · token_span`).
    #[must_use]
    pub fn softmax_elements(&self) -> u64 {
        self.batch as u64 * self.heads as u64 * self.token_span()
    }

    /// Bytes of the chunk's *query-head-wide* new rows (`q` in or `o` out):
    /// `B · H · chunk_tokens · E` elements.
    #[must_use]
    pub fn new_row_bytes(&self, element_bytes: usize) -> u64 {
        self.batch as u64
            * self.heads as u64
            * self.chunk_tokens as u64
            * self.embed as u64
            * element_bytes as u64
    }

    /// Bytes of the chunk's *KV-head-wide* appended rows (`k` or `v`):
    /// `B · H_kv · chunk_tokens · E` elements.
    #[must_use]
    pub fn new_kv_row_bytes(&self, element_bytes: usize) -> u64 {
        self.batch as u64
            * self.kv_heads as u64
            * self.chunk_tokens as u64
            * self.embed as u64
            * element_bytes as u64
    }

    /// Minimum DRAM traffic of the chunk with the KV terms priced at
    /// `kv_element_bytes` and the activation rows at
    /// `activation_element_bytes` — exactly the decode cost split
    /// ([`DecodeStep::min_dram_traffic_bytes_split`]) summed over the
    /// chunk's rows: the incremental KV stream
    /// (`2 · B · H_kv · token_span · E`), the `q`/`o` activation rows and
    /// the appended `k`/`v` rows.
    #[must_use]
    pub fn min_dram_traffic_bytes_split(
        &self,
        activation_element_bytes: usize,
        kv_element_bytes: usize,
    ) -> u64 {
        let kv_stream = 2
            * self.batch as u64
            * self.kv_heads as u64
            * self.token_span()
            * self.embed as u64
            * kv_element_bytes as u64;
        kv_stream
            + 2 * self.new_row_bytes(activation_element_bytes)
            + 2 * self.new_kv_row_bytes(kv_element_bytes)
    }

    /// The write-direction share of
    /// [`PrefillChunk::min_dram_traffic_bytes_split`]: the chunk's output
    /// rows (activation dtype) plus its appended `k`/`v` rows (KV dtype).
    /// Reads are the incremental KV stream and the `q` rows — the split
    /// partitions the total exactly, mirroring
    /// [`DecodeStep::min_dram_write_bytes_split`] summed over the chunk.
    #[must_use]
    pub fn min_dram_write_bytes_split(
        &self,
        activation_element_bytes: usize,
        kv_element_bytes: usize,
    ) -> u64 {
        self.new_row_bytes(activation_element_bytes) + 2 * self.new_kv_row_bytes(kv_element_bytes)
    }

    /// The decode steps this chunk fuses: one per new token, at the causal
    /// contexts `prefilled_len + 1 ..= prefilled_len + chunk_tokens`. Used
    /// by the differential tests; the closed forms above avoid allocating
    /// these on hot paths.
    #[must_use]
    pub fn decode_steps(&self) -> Vec<DecodeStep> {
        (1..=self.chunk_tokens)
            .map(|i| {
                DecodeStep::new(
                    "chunk-row",
                    self.batch,
                    self.heads,
                    self.prefilled_len + i,
                    self.embed,
                )
                .with_kv_heads(self.kv_heads)
            })
            .collect()
    }
}

impl fmt::Display for PrefillChunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk (B={}, H={}, p={}, c={}, E={}",
            self.batch, self.heads, self.prefilled_len, self.chunk_tokens, self.embed
        )?;
        if self.kv_heads != self.heads {
            write!(f, ", KV={}", self.kv_heads)?;
        }
        f.write_str(")")
    }
}

/// L1 working set of the streaming decode kernel for one `(batch, head)`
/// slice processed at a time, with the cached `K`/`V` rows streamed through
/// in `kv_tile_rows`-row sub-tiles (double buffered): the query row, two
/// `K`/`V` sub-tiles, the score strip of the current sub-tile, the running
/// online-softmax statistics and the output accumulator row. Like FuseMax's
/// footprint, it is independent of the context length — decode streams, it
/// never materializes a `t`-wide intermediate.
#[must_use]
pub fn decode_footprint(step: &DecodeStep, kv_tile_rows: usize, element_bytes: usize) -> Footprint {
    let kv_tile_rows = kv_tile_rows.clamp(1, step.context_len);
    let row = step.embed * element_bytes;
    Footprint {
        q_bytes: row,
        kv_bytes: 2 * 2 * kv_tile_rows * row,
        cp_bytes: kv_tile_rows * element_bytes,
        o_bytes: row,
        misc_bytes: 2 * element_bytes,
    }
}

/// Whether one decode step can run on the device: the streaming working set
/// fits L1 and the step's DRAM-resident bytes (the KV cache plus the
/// new-token operand rows, i.e. [`DecodeStep::min_dram_traffic_bytes`]) fit
/// device DRAM.
#[must_use]
pub fn decode_step_fits(step: &DecodeStep, kv_tile_rows: usize, hw: &HardwareConfig) -> bool {
    decode_step_fits_with_kv(step, kv_tile_rows, hw, hw.element_bytes)
}

/// [`decode_step_fits`] with the DRAM-resident KV terms priced at
/// `kv_element_bytes` (see [`DecodeStep::min_dram_traffic_bytes_split`]).
/// The L1 working set is unchanged: the kernel widens KV tiles to the
/// compute dtype before streaming them, so scratch tiles stay at
/// `hw.element_bytes`.
#[must_use]
pub fn decode_step_fits_with_kv(
    step: &DecodeStep,
    kv_tile_rows: usize,
    hw: &HardwareConfig,
    kv_element_bytes: usize,
) -> bool {
    decode_footprint(step, kv_tile_rows, hw.element_bytes).fits(hw.l1_bytes)
        && step.min_dram_traffic_bytes_split(hw.element_bytes, kv_element_bytes)
            <= hw.dram_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> DecodeStep {
        DecodeStep::new("llama-decode", 1, 8, 256, 64)
    }

    #[test]
    fn op_counts_are_linear_in_context() {
        let s = step();
        assert_eq!(s.slices(), 8);
        assert_eq!(s.mac_ops(), 2 * 8 * 256 * 64);
        assert_eq!(s.softmax_elements(), 8 * 256);
        let doubled = s.with_context(512);
        assert_eq!(doubled.mac_ops(), 2 * s.mac_ops());
        assert_eq!(doubled.softmax_elements(), 2 * s.softmax_elements());
    }

    #[test]
    fn prefill_equivalent_is_quadratically_more_work() {
        let s = step();
        let prefill = s.prefill_equivalent();
        assert_eq!(prefill.seq_len, 256);
        // Prefill runs t query rows where decode runs one.
        assert_eq!(prefill.total_mac_ops(), s.context_len as u64 * s.mac_ops());
    }

    #[test]
    fn new_token_bytes_are_context_independent() {
        let s = step();
        assert_eq!(
            s.new_token_bytes(2),
            s.with_context(4096).new_token_bytes(2)
        );
        assert_eq!(s.new_token_bytes(2), 8 * 64 * 2);
    }

    #[test]
    fn dram_traffic_counts_cache_stream_plus_new_token_rows() {
        let s = step();
        assert_eq!(
            s.min_dram_traffic_bytes(2),
            s.kv_cache_bytes(2) + 4 * s.new_token_bytes(2)
        );
        // The KV-cached step moves far less than the recompute baseline
        // (which re-reads full Q/K/V and re-writes full O).
        assert!(s.recompute_dram_traffic_bytes(2) > s.min_dram_traffic_bytes(2));
        // And the advantage grows with context: recompute is 4·t·E per head
        // per operand, decode stays at cache-stream + O(1) rows.
        let long = s.with_context(4096);
        let ratio_short =
            s.recompute_dram_traffic_bytes(2) as f64 / s.min_dram_traffic_bytes(2) as f64;
        let ratio_long =
            long.recompute_dram_traffic_bytes(2) as f64 / long.min_dram_traffic_bytes(2) as f64;
        assert!(ratio_long >= ratio_short);
    }

    #[test]
    fn kv_cache_bytes_scale_with_context_and_element_size() {
        let s = step();
        assert_eq!(s.kv_cache_bytes(2), 2 * 8 * 256 * 64 * 2);
        assert_eq!(s.kv_cache_bytes(4), 2 * s.kv_cache_bytes(2));
        assert_eq!(
            s.with_context(512).kv_cache_bytes(2),
            2 * s.kv_cache_bytes(2)
        );
    }

    #[test]
    fn shared_kv_bytes_count_whole_prefix_blocks_clamped_to_context() {
        let s = step(); // context 256
                        // 100 shared tokens at 16-token blocks: 6 whole blocks, the partial
                        // 7th is private (copy-on-write makes it so).
        assert_eq!(s.shared_kv_bytes(16, 100, 2), 6 * s.kv_block_bytes(16, 2));
        // Block-aligned prefix shares exactly its blocks.
        assert_eq!(s.shared_kv_bytes(16, 96, 2), 6 * s.kv_block_bytes(16, 2));
        // A prefix longer than the session's own context clamps to it.
        assert_eq!(s.shared_kv_bytes(16, 10_000, 2), s.paged_kv_bytes(16, 2));
        // Shared bytes never exceed the allocated paged bytes.
        assert!(s.shared_kv_bytes(16, 200, 2) <= s.paged_kv_bytes(16, 2));
        // No sharing, no bytes; degenerate block size is clamped like
        // kv_blocks.
        assert_eq!(s.shared_kv_bytes(16, 0, 2), 0);
        assert_eq!(s.shared_kv_bytes(0, 10, 2), s.shared_kv_bytes(1, 10, 2));
    }

    #[test]
    fn footprint_is_context_independent_and_fits_the_edge_device() {
        let hw = HardwareConfig::edge_default();
        let short = decode_footprint(&step(), 64, hw.element_bytes);
        let long = decode_footprint(&step().with_context(1 << 20), 64, hw.element_bytes);
        assert_eq!(short.total_bytes(), long.total_bytes());
        assert!(decode_step_fits(&step(), 64, &hw));
    }

    #[test]
    fn oversized_kv_cache_is_infeasible() {
        let hw = HardwareConfig::edge_default();
        // ~2 TB of KV cache at this context: over any edge DRAM.
        let huge = DecodeStep::new("huge", 1, 32, 1 << 28, 128);
        assert!(!decode_step_fits(&huge, 64, &hw));
    }

    #[test]
    fn grouped_kv_heads_scale_cache_bytes_not_compute() {
        let mha = step(); // H = 8
        let gqa = step().with_kv_heads(2);
        let mqa = step().with_kv_heads(1);
        assert_eq!(gqa.group_size(), 4);
        // Compute is per query head: unchanged.
        assert_eq!(gqa.mac_ops(), mha.mac_ops());
        assert_eq!(gqa.softmax_elements(), mha.softmax_elements());
        // Residency and appended K/V rows shrink by kv_heads / heads.
        assert_eq!(gqa.kv_cache_bytes(2), mha.kv_cache_bytes(2) / 4);
        assert_eq!(mqa.kv_cache_bytes(2), mha.kv_cache_bytes(2) / 8);
        assert_eq!(gqa.new_kv_token_bytes(2), mha.new_kv_token_bytes(2) / 4);
        // q/o rows stay query-head-wide.
        assert_eq!(gqa.new_token_bytes(2), mha.new_token_bytes(2));
        // DRAM traffic shrinks accordingly, and the MHA formula reduces to
        // the historical 4-row form.
        assert!(gqa.min_dram_traffic_bytes(2) < mha.min_dram_traffic_bytes(2));
        assert_eq!(
            mha.min_dram_traffic_bytes(2),
            mha.kv_cache_bytes(2) + 4 * mha.new_token_bytes(2)
        );
        // kv_heads survives context sweeps.
        assert_eq!(gqa.with_context(512).kv_heads, 2);
    }

    #[test]
    #[should_panic(expected = "divide the query head count")]
    fn invalid_kv_head_grouping_panics() {
        let _ = step().with_kv_heads(3);
    }

    #[test]
    fn block_granular_residency_counts_allocated_blocks() {
        let s = step(); // t = 256
                        // 256 tokens in 16-token blocks: exactly 16 blocks, zero waste.
        assert_eq!(s.kv_blocks(16), 16);
        assert_eq!(s.paged_kv_bytes(16, 2), s.kv_cache_bytes(2));
        assert_eq!(s.kv_fragmentation(16), 0.0);
        // 255 tokens still allocate 16 blocks; one slot is wasted.
        let short = s.with_context(255);
        assert_eq!(short.kv_blocks(16), 16);
        assert_eq!(short.paged_kv_bytes(16, 2), s.kv_cache_bytes(2));
        assert!((short.kv_fragmentation(16) - 1.0 / 256.0).abs() < 1e-12);
        // A block larger than the context allocates one block.
        let tiny = s.with_context(3);
        assert_eq!(tiny.kv_blocks(512), 1);
        assert!((tiny.kv_fragmentation(512) - 509.0 / 512.0).abs() < 1e-12);
        // Block bytes scale with kv_heads like the cache does.
        assert_eq!(
            step().with_kv_heads(2).kv_block_bytes(16, 2),
            s.kv_block_bytes(16, 2) / 4
        );
        // A zero block size clamps to one token everywhere — it must never
        // account zero bytes per block (which would zero paged residency).
        assert_eq!(s.kv_block_bytes(0, 2), s.kv_block_bytes(1, 2));
        assert_eq!(s.paged_kv_bytes(0, 2), s.kv_cache_bytes(2));
        // Paged residency never undercounts the true token bytes, and wastes
        // less than one block.
        for (t, b) in [(1usize, 7usize), (9, 7), (100, 16), (64, 64), (65, 64)] {
            let c = s.with_context(t);
            assert!(c.paged_kv_bytes(b, 2) >= c.kv_cache_bytes(2));
            assert!(c.paged_kv_bytes(b, 2) < c.kv_cache_bytes(2) + c.kv_block_bytes(b, 2));
        }
    }

    #[test]
    fn split_traffic_reduces_to_unsplit_at_equal_element_sizes() {
        let s = step();
        for eb in [1usize, 2, 4] {
            assert_eq!(
                s.min_dram_traffic_bytes_split(eb, eb),
                s.min_dram_traffic_bytes(eb)
            );
        }
    }

    #[test]
    fn f16_kv_halves_exactly_the_kv_terms_of_the_traffic() {
        let s = step().with_kv_heads(2);
        let kv_terms_f32 = s.kv_cache_bytes(4) + 2 * s.new_kv_token_bytes(4);
        let split = s.min_dram_traffic_bytes_split(4, 2);
        // Activation rows unchanged, every KV term exactly halved.
        assert_eq!(split, s.min_dram_traffic_bytes(4) - kv_terms_f32 / 2);
        assert_eq!(split - 2 * s.new_token_bytes(4), kv_terms_f32 / 2);
    }

    #[test]
    fn kv_aware_feasibility_admits_contexts_the_unsplit_check_rejects() {
        let hw = HardwareConfig::edge_default();
        // Find a context whose f32-priced traffic overflows DRAM but whose
        // f16 KV pricing fits: KV dominates, so halving it roughly halves
        // the bill.
        let eb = hw.element_bytes;
        let per_token_kv = 2u64 * 32 * 128 * eb as u64;
        let t = (hw.dram_bytes as u64 / per_token_kv * 3 / 4) as usize;
        let s = DecodeStep::new("edge-of-dram", 1, 32, 2 * t, 128);
        assert!(!decode_step_fits(&s, 64, &hw));
        assert!(decode_step_fits_with_kv(&s, 64, &hw, eb / 2));
        // Equal pricing matches the plain check on a feasible step.
        let small = step();
        assert_eq!(
            decode_step_fits(&small, 64, &hw),
            decode_step_fits_with_kv(&small, 64, &hw, eb)
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = DecodeStep::new("bad", 1, 0, 16, 64);
    }

    #[test]
    fn display_contains_dimensions() {
        let s = format!("{}", step());
        assert!(s.contains("H=8"));
        assert!(s.contains("t=256"));
    }

    #[test]
    fn chunk_cost_equals_summed_decode_steps() {
        // The chunk's closed forms must match the per-row decode steps it
        // fuses, exactly, for every cost component and both byte pricings.
        for (p, c) in [(0usize, 1usize), (0, 17), (100, 1), (100, 32), (255, 3)] {
            let chunk = PrefillChunk::new(2, 8, p, c, 64).with_kv_heads(2);
            let steps = chunk.decode_steps();
            assert_eq!(steps.len(), c);
            assert_eq!(
                chunk.token_span(),
                steps.iter().map(|s| s.context_len as u64).sum::<u64>()
            );
            assert_eq!(
                chunk.mac_ops(),
                steps.iter().map(DecodeStep::mac_ops).sum::<u64>()
            );
            assert_eq!(
                chunk.softmax_elements(),
                steps.iter().map(DecodeStep::softmax_elements).sum::<u64>()
            );
            for (act_eb, kv_eb) in [(4usize, 4usize), (4, 2), (2, 2)] {
                assert_eq!(
                    chunk.min_dram_traffic_bytes_split(act_eb, kv_eb),
                    steps
                        .iter()
                        .map(|s| s.min_dram_traffic_bytes_split(act_eb, kv_eb))
                        .sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn chunk_chain_covers_the_monolithic_prompt_span() {
        // Chaining chunks over a whole prompt yields exactly the causal
        // token span of prefilling it in one go: Σ_{t=1}^{n} t.
        let n = 1000usize;
        let mut covered = 0u64;
        let mut p = 0usize;
        while p < n {
            let c = (n - p).min(192);
            covered += PrefillChunk::new(1, 8, p, c, 64).token_span();
            p += c;
        }
        assert_eq!(covered, (n as u64) * (n as u64 + 1) / 2);
    }

    #[test]
    fn chunk_new_row_bytes_follow_head_widths() {
        let chunk = PrefillChunk::new(2, 8, 64, 16, 32).with_kv_heads(2);
        assert_eq!(chunk.new_row_bytes(4), 2 * 8 * 16 * 32 * 4);
        assert_eq!(chunk.new_kv_row_bytes(2), 2 * 2 * 16 * 32 * 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_tokens_panics() {
        let _ = PrefillChunk::new(1, 8, 64, 0, 64);
    }

    #[test]
    fn chunk_display_contains_dimensions() {
        let s = format!("{}", PrefillChunk::new(1, 8, 128, 64, 32).with_kv_heads(4));
        assert!(s.contains("p=128"));
        assert!(s.contains("c=64"));
        assert!(s.contains("KV=4"));
    }
}
