//! Autoregressive decode-step workloads and their cost/footprint math.
//!
//! The paper's workloads ([`AttentionWorkload`]) are fixed-shape *prefill*
//! layers: `N` queries against `N` keys, `O(N²)` work. Real LLM serving is
//! dominated by *decode* traffic: one new token per step whose single query
//! row attends over the `t` rows already in the session's KV cache. A
//! [`DecodeStep`] describes one such step, and its cost model differs from
//! prefill in two structural ways:
//!
//! 1. **Work is linear in the context.** One query row means `2·B·H·t·E`
//!    MACs and `B·H·t` softmax elements per step — versus the quadratic
//!    `2·B·H·t²·E` of re-running prefill over the whole sequence.
//! 2. **Only the new token's operands hit DRAM as fresh traffic.** The
//!    cached `K`/`V` rows are *read* (streamed through L1 once), but the
//!    only new operands are the step's `q`/`k`/`v` rows in and `o` row out —
//!    `4·B·H·E` elements, independent of `t`. Prefill re-reads and re-writes
//!    full `N×E` operands every time.
//!
//! [`decode_footprint`] gives the L1 working set of the streaming decode
//! kernel (FuseMax-like: score strip + running statistics, no `N×N`
//! intermediate), used by the serving layer to screen steps against the
//! device, and [`DecodeStep::prefill_equivalent`] produces the
//! [`AttentionWorkload`] a recompute-per-step baseline would run — the same
//! conversion the differential decode-vs-prefill tests exploit.

use serde::{Deserialize, Serialize};
use std::fmt;

use mas_sim::HardwareConfig;

use crate::footprint::Footprint;
use crate::workload::AttentionWorkload;

/// One autoregressive decode step: a single new token per sequence, whose
/// query row attends over `context_len` cached tokens (the new token's own
/// `K`/`V` rows included).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodeStep {
    /// Human-readable name, e.g. `"llama3-decode"`.
    pub name: String,
    /// Number of sequences decoded together (batched sessions).
    pub batch: usize,
    /// Number of attention heads `H`.
    pub heads: usize,
    /// Tokens attended this step: the KV-cache residency *after* appending
    /// the new token (`t`).
    pub context_len: usize,
    /// Per-head embedding size `E`.
    pub embed: usize,
}

impl DecodeStep {
    /// Creates a decode-step description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        batch: usize,
        heads: usize,
        context_len: usize,
        embed: usize,
    ) -> Self {
        assert!(
            batch > 0 && heads > 0 && context_len > 0 && embed > 0,
            "decode step dimensions must be non-zero"
        );
        Self {
            name: name.into(),
            batch,
            heads,
            context_len,
            embed,
        }
    }

    /// Number of independent `(batch, head)` decode slices.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.batch * self.heads
    }

    /// Multiply-accumulate operations of one step: the single query row's
    /// `q·Kᵀ` scores plus the `p·V` accumulation — `2 · B · H · t · E`,
    /// linear in the context.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        2 * self.slices() as u64 * self.context_len as u64 * self.embed as u64
    }

    /// Softmax elements of one step (`B · H · t`).
    #[must_use]
    pub fn softmax_elements(&self) -> u64 {
        self.slices() as u64 * self.context_len as u64
    }

    /// Bytes of one *new-token* operand row set (`q`, `k`, `v` or `o`):
    /// `B · H · E` elements — independent of the context length.
    #[must_use]
    pub fn new_token_bytes(&self, element_bytes: usize) -> u64 {
        self.slices() as u64 * self.embed as u64 * element_bytes as u64
    }

    /// Bytes of the resident KV cache attended this step
    /// (`2 · B · H · t · E` elements) — what a serving layer charges against
    /// the device memory budget for session residency.
    #[must_use]
    pub fn kv_cache_bytes(&self, element_bytes: usize) -> u64 {
        2 * self.slices() as u64
            * self.context_len as u64
            * self.embed as u64
            * element_bytes as u64
    }

    /// Minimum DRAM traffic of one KV-cached step: stream the cached `K`/`V`
    /// rows in once, read the new `q`/`k`/`v` rows and write the appended
    /// `k`/`v` rows and the output row. Only the new-token operands appear
    /// beyond the unavoidable cache streaming — contrast
    /// [`DecodeStep::recompute_dram_traffic_bytes`].
    #[must_use]
    pub fn min_dram_traffic_bytes(&self, element_bytes: usize) -> u64 {
        // Reads: cached K/V (includes the just-appended rows) + q row.
        // Writes: appended k/v rows + o row.
        self.kv_cache_bytes(element_bytes) + 4 * self.new_token_bytes(element_bytes)
    }

    /// Minimum DRAM traffic of the recompute-per-step baseline: re-running
    /// full prefill over the `t`-token sequence (read `Q`, `K`, `V`, write
    /// `O` — all `t × E` per head), which is what a runtime without a KV
    /// cache pays every step.
    #[must_use]
    pub fn recompute_dram_traffic_bytes(&self, element_bytes: usize) -> u64 {
        self.prefill_equivalent()
            .min_dram_traffic_bytes(element_bytes)
    }

    /// The prefill workload whose final query row computes the same
    /// attention as this step: `t` queries over `t` keys. This is both the
    /// recompute-per-step baseline's workload and the oracle shape of the
    /// differential decode-vs-prefill tests.
    #[must_use]
    pub fn prefill_equivalent(&self) -> AttentionWorkload {
        AttentionWorkload::new(
            format!("{}@prefill", self.name),
            self.batch,
            self.heads,
            self.context_len,
            self.embed,
        )
    }

    /// Returns a copy at a different context length (used by per-step sweeps
    /// as the cache grows).
    #[must_use]
    pub fn with_context(&self, context_len: usize) -> Self {
        Self {
            name: format!("{}@t{context_len}", self.name),
            context_len,
            ..self.clone()
        }
    }
}

impl fmt::Display for DecodeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (B={}, H={}, t={}, E={})",
            self.name, self.batch, self.heads, self.context_len, self.embed
        )
    }
}

/// L1 working set of the streaming decode kernel for one `(batch, head)`
/// slice processed at a time, with the cached `K`/`V` rows streamed through
/// in `kv_tile_rows`-row sub-tiles (double buffered): the query row, two
/// `K`/`V` sub-tiles, the score strip of the current sub-tile, the running
/// online-softmax statistics and the output accumulator row. Like FuseMax's
/// footprint, it is independent of the context length — decode streams, it
/// never materializes a `t`-wide intermediate.
#[must_use]
pub fn decode_footprint(step: &DecodeStep, kv_tile_rows: usize, element_bytes: usize) -> Footprint {
    let kv_tile_rows = kv_tile_rows.clamp(1, step.context_len);
    let row = step.embed * element_bytes;
    Footprint {
        q_bytes: row,
        kv_bytes: 2 * 2 * kv_tile_rows * row,
        cp_bytes: kv_tile_rows * element_bytes,
        o_bytes: row,
        misc_bytes: 2 * element_bytes,
    }
}

/// Whether one decode step can run on the device: the streaming working set
/// fits L1 and the step's DRAM-resident bytes (the KV cache plus the
/// new-token operand rows, i.e. [`DecodeStep::min_dram_traffic_bytes`]) fit
/// device DRAM.
#[must_use]
pub fn decode_step_fits(step: &DecodeStep, kv_tile_rows: usize, hw: &HardwareConfig) -> bool {
    decode_footprint(step, kv_tile_rows, hw.element_bytes).fits(hw.l1_bytes)
        && step.min_dram_traffic_bytes(hw.element_bytes) <= hw.dram_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> DecodeStep {
        DecodeStep::new("llama-decode", 1, 8, 256, 64)
    }

    #[test]
    fn op_counts_are_linear_in_context() {
        let s = step();
        assert_eq!(s.slices(), 8);
        assert_eq!(s.mac_ops(), 2 * 8 * 256 * 64);
        assert_eq!(s.softmax_elements(), 8 * 256);
        let doubled = s.with_context(512);
        assert_eq!(doubled.mac_ops(), 2 * s.mac_ops());
        assert_eq!(doubled.softmax_elements(), 2 * s.softmax_elements());
    }

    #[test]
    fn prefill_equivalent_is_quadratically_more_work() {
        let s = step();
        let prefill = s.prefill_equivalent();
        assert_eq!(prefill.seq_len, 256);
        // Prefill runs t query rows where decode runs one.
        assert_eq!(prefill.total_mac_ops(), s.context_len as u64 * s.mac_ops());
    }

    #[test]
    fn new_token_bytes_are_context_independent() {
        let s = step();
        assert_eq!(
            s.new_token_bytes(2),
            s.with_context(4096).new_token_bytes(2)
        );
        assert_eq!(s.new_token_bytes(2), 8 * 64 * 2);
    }

    #[test]
    fn dram_traffic_counts_cache_stream_plus_new_token_rows() {
        let s = step();
        assert_eq!(
            s.min_dram_traffic_bytes(2),
            s.kv_cache_bytes(2) + 4 * s.new_token_bytes(2)
        );
        // The KV-cached step moves far less than the recompute baseline
        // (which re-reads full Q/K/V and re-writes full O).
        assert!(s.recompute_dram_traffic_bytes(2) > s.min_dram_traffic_bytes(2));
        // And the advantage grows with context: recompute is 4·t·E per head
        // per operand, decode stays at cache-stream + O(1) rows.
        let long = s.with_context(4096);
        let ratio_short =
            s.recompute_dram_traffic_bytes(2) as f64 / s.min_dram_traffic_bytes(2) as f64;
        let ratio_long =
            long.recompute_dram_traffic_bytes(2) as f64 / long.min_dram_traffic_bytes(2) as f64;
        assert!(ratio_long >= ratio_short);
    }

    #[test]
    fn kv_cache_bytes_scale_with_context_and_element_size() {
        let s = step();
        assert_eq!(s.kv_cache_bytes(2), 2 * 8 * 256 * 64 * 2);
        assert_eq!(s.kv_cache_bytes(4), 2 * s.kv_cache_bytes(2));
        assert_eq!(
            s.with_context(512).kv_cache_bytes(2),
            2 * s.kv_cache_bytes(2)
        );
    }

    #[test]
    fn footprint_is_context_independent_and_fits_the_edge_device() {
        let hw = HardwareConfig::edge_default();
        let short = decode_footprint(&step(), 64, hw.element_bytes);
        let long = decode_footprint(&step().with_context(1 << 20), 64, hw.element_bytes);
        assert_eq!(short.total_bytes(), long.total_bytes());
        assert!(decode_step_fits(&step(), 64, &hw));
    }

    #[test]
    fn oversized_kv_cache_is_infeasible() {
        let hw = HardwareConfig::edge_default();
        // ~2 TB of KV cache at this context: over any edge DRAM.
        let huge = DecodeStep::new("huge", 1, 32, 1 << 28, 128);
        assert!(!decode_step_fits(&huge, 64, &hw));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = DecodeStep::new("bad", 1, 0, 16, 64);
    }

    #[test]
    fn display_contains_dimensions() {
        let s = format!("{}", step());
        assert!(s.contains("H=8"));
        assert!(s.contains("t=256"));
    }
}
