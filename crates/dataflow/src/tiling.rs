//! Multi-tiered tiling configuration (paper §4.2).
//!
//! A [`Tiling`] carries the four L1-level tiling factors the paper searches
//! over: the batch chunk `B_b`, the head chunk `H_h`, the query row-block
//! `N_Q` (row granularity, driven by softmax) and the key/value sub-tile
//! `N_{K,V}` (sub-matrix granularity for the MatMul operands `K`, `P`, `V`).
//!
//! Tilings are produced either by the heuristic in [`Tiling::heuristic`]
//! (used as a starting point and by tests) or by the search algorithms in
//! `mas-search`, and validated against the workload and the hardware's
//! shared L1 capacity via [`crate::footprint`].

use serde::{Deserialize, Serialize};
use std::fmt;

use mas_sim::HardwareConfig;

use crate::workload::AttentionWorkload;

/// L1-level tiling factors `(B_b, H_h, N_Q, N_{K,V})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Batch chunk `B_b` (how many batch elements are processed per round).
    pub b_b: usize,
    /// Head chunk `H_h` (how many heads are processed per round).
    pub h_h: usize,
    /// Query row-block `N_Q` (rows of `Q` per round; softmax operates on
    /// these rows).
    pub n_q: usize,
    /// Key/value sub-tile `N_{K,V}` (rows of `K`/`V` per inner iteration).
    pub n_kv: usize,
}

impl Tiling {
    /// Creates a tiling, clamping each factor to its dimension extent.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    #[must_use]
    pub fn new(
        b_b: usize,
        h_h: usize,
        n_q: usize,
        n_kv: usize,
        workload: &AttentionWorkload,
    ) -> Self {
        assert!(
            b_b > 0 && h_h > 0 && n_q > 0 && n_kv > 0,
            "tiling factors must be non-zero"
        );
        Self {
            b_b: b_b.min(workload.batch),
            h_h: h_h.min(workload.heads),
            n_q: n_q.min(workload.seq_len),
            n_kv: n_kv.min(workload.seq_len),
        }
    }

    /// The most naive tiling: one row of one head at a time with the smallest
    /// key/value sub-tile the MAC array supports. This is the (deliberately
    /// poor) starting point of the search-convergence experiment (Figure 7).
    #[must_use]
    pub fn naive(workload: &AttentionWorkload) -> Self {
        Self::new(1, 1, 1, workload.embed.min(workload.seq_len), workload)
    }

    /// A reasonable hand-written tiling: one `(batch, head)` slice per round,
    /// query blocks sized to a few MAC-array heights, and key/value sub-tiles
    /// sized so that a sub-tile of `K` plus a sub-tile of `V` stay well under
    /// the L1 capacity. The search typically improves on this by 5–20 %,
    /// while improving on [`Tiling::naive`] by one to two orders of magnitude
    /// (§5.5).
    #[must_use]
    pub fn heuristic(workload: &AttentionWorkload, hw: &HardwareConfig) -> Self {
        let n_q = (hw.mac_array_rows * 4).min(workload.seq_len).max(1);
        // Keep a K sub-tile at or below ~1/16 of L1.
        let budget = hw.l1_bytes / 16;
        let bytes_per_kv_row = workload.embed * hw.element_bytes;
        let n_kv = (budget / bytes_per_kv_row.max(1)).clamp(hw.mac_array_cols, workload.seq_len);
        Self::new(1, 1, n_q, n_kv, workload)
    }

    /// Number of computation rounds `T_r = ⌈B/B_b⌉·⌈H/H_h⌉·⌈N/N_Q⌉`
    /// (Algorithm 1, line 2).
    #[must_use]
    pub fn rounds(&self, workload: &AttentionWorkload) -> usize {
        workload.batch.div_ceil(self.b_b)
            * workload.heads.div_ceil(self.h_h)
            * workload.seq_len.div_ceil(self.n_q)
    }

    /// Number of query row-blocks per `(batch, head)` chunk,
    /// `⌈N/N_Q⌉`.
    #[must_use]
    pub fn query_blocks(&self, workload: &AttentionWorkload) -> usize {
        workload.seq_len.div_ceil(self.n_q)
    }

    /// Number of `(batch, head)` chunks, `⌈B/B_b⌉·⌈H/H_h⌉`.
    #[must_use]
    pub fn slice_chunks(&self, workload: &AttentionWorkload) -> usize {
        workload.batch.div_ceil(self.b_b) * workload.heads.div_ceil(self.h_h)
    }

    /// Number of key/value sub-tiles per round, `T_c = ⌈N/N_{K,V}⌉`
    /// (Algorithms 2 and 4, line 3).
    #[must_use]
    pub fn kv_tiles(&self, workload: &AttentionWorkload) -> usize {
        workload.seq_len.div_ceil(self.n_kv)
    }

    /// Number of `(batch, head)` slices processed together in one round.
    #[must_use]
    pub fn slices_per_round(&self) -> usize {
        self.b_b * self.h_h
    }

    /// Bytes of one `Q_i` block.
    #[must_use]
    pub fn q_block_bytes(&self, workload: &AttentionWorkload, element_bytes: usize) -> usize {
        self.slices_per_round() * self.n_q * workload.embed * element_bytes
    }

    /// Bytes of one `K`/`V` sub-tile.
    #[must_use]
    pub fn kv_tile_bytes(&self, workload: &AttentionWorkload, element_bytes: usize) -> usize {
        self.slices_per_round() * self.n_kv * workload.embed * element_bytes
    }

    /// Bytes of one on-chip `C_i` / `P_i` block (`N_Q` rows of length `N`).
    #[must_use]
    pub fn c_block_bytes(&self, workload: &AttentionWorkload, element_bytes: usize) -> usize {
        self.slices_per_round() * self.n_q * workload.seq_len * element_bytes
    }

    /// Bytes of one `O_i` output block.
    #[must_use]
    pub fn o_block_bytes(&self, workload: &AttentionWorkload, element_bytes: usize) -> usize {
        self.q_block_bytes(workload, element_bytes)
    }

    /// Whether every factor divides its dimension exactly (no ragged tiles).
    #[must_use]
    pub fn is_exact(&self, workload: &AttentionWorkload) -> bool {
        workload.batch.is_multiple_of(self.b_b)
            && workload.heads.is_multiple_of(self.h_h)
            && workload.seq_len.is_multiple_of(self.n_q)
            && workload.seq_len.is_multiple_of(self.n_kv)
    }
}

impl fmt::Display for Tiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bb={} Hh={} Nq={} Nkv={}",
            self.b_b, self.h_h, self.n_q, self.n_kv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn new_clamps_to_workload() {
        let w = bert();
        let t = Tiling::new(4, 64, 2048, 2048, &w);
        assert_eq!(t.b_b, 1);
        assert_eq!(t.h_h, 12);
        assert_eq!(t.n_q, 512);
        assert_eq!(t.n_kv, 512);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_factor_panics() {
        let _ = Tiling::new(1, 1, 0, 64, &bert());
    }

    #[test]
    fn round_counts_match_algorithm_1() {
        let w = bert();
        let t = Tiling::new(1, 1, 64, 128, &w);
        assert_eq!(t.rounds(&w), 12 * 8);
        assert_eq!(t.query_blocks(&w), 8);
        assert_eq!(t.slice_chunks(&w), 12);
        assert_eq!(t.kv_tiles(&w), 4);
    }

    #[test]
    fn ragged_tiles_use_ceiling_division() {
        let w = AttentionWorkload::new("vit", 1, 12, 196, 64);
        let t = Tiling::new(1, 1, 64, 64, &w);
        assert_eq!(t.query_blocks(&w), 4); // 196 / 64 -> 4 blocks
        assert_eq!(t.kv_tiles(&w), 4);
        assert!(!t.is_exact(&w));
        let exact = Tiling::new(1, 1, 49, 49, &w);
        assert!(exact.is_exact(&w));
    }

    #[test]
    fn block_byte_sizes() {
        let w = bert();
        let t = Tiling::new(1, 1, 64, 128, &w);
        assert_eq!(t.q_block_bytes(&w, 2), 64 * 64 * 2);
        assert_eq!(t.kv_tile_bytes(&w, 2), 128 * 64 * 2);
        assert_eq!(t.c_block_bytes(&w, 2), 64 * 512 * 2);
        assert_eq!(t.o_block_bytes(&w, 2), t.q_block_bytes(&w, 2));
    }

    #[test]
    fn heuristic_fits_reasonable_bounds() {
        let w = bert();
        let hw = HardwareConfig::edge_default();
        let t = Tiling::heuristic(&w, &hw);
        assert!(t.n_q >= 1 && t.n_q <= w.seq_len);
        assert!(t.n_kv >= hw.mac_array_cols && t.n_kv <= w.seq_len);
        // The heuristic working set is far below L1.
        assert!(t.kv_tile_bytes(&w, hw.element_bytes) < hw.l1_bytes / 4);
    }

    #[test]
    fn naive_tiling_is_single_row() {
        let w = bert();
        let t = Tiling::naive(&w);
        assert_eq!(t.n_q, 1);
        assert_eq!(t.b_b, 1);
        assert_eq!(t.h_h, 1);
        assert_eq!(t.rounds(&w), 12 * 512);
    }

    #[test]
    fn display_lists_all_factors() {
        let w = bert();
        let s = format!("{}", Tiling::new(1, 2, 64, 128, &w));
        assert!(s.contains("Hh=2"));
        assert!(s.contains("Nkv=128"));
    }
}
