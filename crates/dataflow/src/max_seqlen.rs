//! Maximum-sequence-length analysis (paper §5.6, "Limitations").
//!
//! The paper derives that, in half precision with the 5 MB L1 of the
//! simulated device, MAS-Attention can handle sequences of roughly one
//! million tokens while FLAT can handle roughly two million: MAS must hold
//! two `N`-wide probability rows on-chip at once (`P_i` together with either
//! `P_{i-1}` or `C_{i+1}`), FLAT only one. This module reproduces that
//! analysis for any method and hardware configuration by finding the largest
//! `N` whose minimum working set (single-row tiling, smallest key/value
//! sub-tiles) still fits L1.

use serde::{Deserialize, Serialize};

use mas_sim::HardwareConfig;

use crate::footprint::footprint;
use crate::kind::DataflowKind;
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Result of the maximum-sequence-length search for one method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxSeqLen {
    /// The method analysed.
    pub kind: DataflowKind,
    /// Largest supported sequence length (0 if even `N = 1` does not fit).
    pub max_seq_len: usize,
    /// Working-set bytes at that sequence length.
    pub footprint_bytes: usize,
}

/// Minimum on-chip working set of `kind` at sequence length `n`: one query
/// row per round (`N_Q = 1`), one head per chunk and the smallest reasonable
/// key/value sub-tile (one MAC-array width).
#[must_use]
pub fn min_footprint_bytes(
    kind: DataflowKind,
    n: usize,
    embed: usize,
    hw: &HardwareConfig,
) -> usize {
    let workload = AttentionWorkload::new("seqlen-probe", 1, 1, n, embed);
    let tiling = Tiling::new(1, 1, 1, hw.mac_array_cols.min(n), &workload);
    footprint(kind, &workload, &tiling, hw.element_bytes).total_bytes()
}

/// Finds the largest sequence length `kind` can execute on `hw` with
/// embedding size `embed`, by binary search over `N` up to `limit`.
#[must_use]
pub fn max_seq_len(
    kind: DataflowKind,
    embed: usize,
    hw: &HardwareConfig,
    limit: usize,
) -> MaxSeqLen {
    let fits = |n: usize| min_footprint_bytes(kind, n, embed, hw) <= hw.l1_bytes;
    if !fits(1) {
        return MaxSeqLen {
            kind,
            max_seq_len: 0,
            footprint_bytes: min_footprint_bytes(kind, 1, embed, hw),
        };
    }
    let mut lo = 1usize;
    let mut hi = limit.max(1);
    if fits(hi) {
        return MaxSeqLen {
            kind,
            max_seq_len: hi,
            footprint_bytes: min_footprint_bytes(kind, hi, embed, hw),
        };
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    MaxSeqLen {
        kind,
        max_seq_len: lo,
        footprint_bytes: min_footprint_bytes(kind, lo, embed, hw),
    }
}

/// Runs the analysis for every method (the §5.6 comparison focuses on MAS
/// versus FLAT, but the other methods are informative too).
#[must_use]
pub fn max_seq_len_all(embed: usize, hw: &HardwareConfig, limit: usize) -> Vec<MaxSeqLen> {
    DataflowKind::all()
        .into_iter()
        .map(|kind| max_seq_len(kind, embed, hw, limit))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: usize = 1 << 23; // 8M tokens is far beyond any fit.

    #[test]
    fn flat_handles_roughly_twice_the_sequence_of_mas() {
        let hw = HardwareConfig::edge_default();
        let mas = max_seq_len(DataflowKind::MasAttention, 64, &hw, LIMIT);
        let flat = max_seq_len(DataflowKind::Flat, 64, &hw, LIMIT);
        assert!(mas.max_seq_len > 0);
        let ratio = flat.max_seq_len as f64 / mas.max_seq_len as f64;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "FLAT/MAS max-sequence ratio {ratio} should be ≈ 2 (paper §5.6)"
        );
    }

    #[test]
    fn mas_reaches_the_order_of_a_million_tokens_at_fp16() {
        let hw = HardwareConfig::edge_default();
        let mas = max_seq_len(DataflowKind::MasAttention, 64, &hw, LIMIT);
        assert!(
            mas.max_seq_len >= 700_000 && mas.max_seq_len <= 2_000_000,
            "MAS max sequence length {} should be on the order of 1M tokens",
            mas.max_seq_len
        );
    }

    #[test]
    fn fusemax_is_not_limited_by_sequence_length() {
        let hw = HardwareConfig::edge_default();
        let fm = max_seq_len(DataflowKind::FuseMax, 64, &hw, LIMIT);
        assert_eq!(
            fm.max_seq_len, LIMIT,
            "online softmax has no N-wide row buffer"
        );
    }

    #[test]
    fn max_seq_len_is_monotone_in_l1_capacity() {
        let mut hw = HardwareConfig::edge_default();
        let small = max_seq_len(DataflowKind::MasAttention, 64, &hw, LIMIT).max_seq_len;
        hw.l1_bytes *= 2;
        let large = max_seq_len(DataflowKind::MasAttention, 64, &hw, LIMIT).max_seq_len;
        assert!(large > small);
    }

    #[test]
    fn tiny_l1_supports_nothing() {
        let mut hw = HardwareConfig::edge_default();
        hw.l1_bytes = 16;
        let r = max_seq_len(DataflowKind::Flat, 64, &hw, LIMIT);
        assert_eq!(r.max_seq_len, 0);
    }

    #[test]
    fn all_methods_are_reported() {
        let hw = HardwareConfig::edge_default();
        let all = max_seq_len_all(64, &hw, 1 << 16);
        assert_eq!(all.len(), 6);
        assert!(all.iter().any(|r| r.kind == DataflowKind::MasAttention));
    }
}
