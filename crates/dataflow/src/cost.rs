//! Stream-demand cost glue shared by the serving layer's merged launch path.
//!
//! A device launch — whether it carries a merged prefill batch or a batched
//! set of decode steps — is bounded by the same three streams: MAC work,
//! VEC (softmax) work and DRAM traffic. [`StreamDemand`] is the common
//! currency: both work classes lower into it, demands of co-launched work
//! items add component-wise, and [`StreamDemand::bound_seconds`] turns the
//! sum into the physical service-time bound on a given device. The serve
//! engine's unified prefill+decode timeline costs every launch through this
//! one type, so the two traffic classes are comparable by construction.
//!
//! The arithmetic is deliberately bit-for-bit identical to the historical
//! per-class formulas (prefill admission's service-time lower bound and the
//! decode launch cost model): each component is computed per item in `f64`,
//! accumulated in item order, and divided by the device rate once at the
//! end. Refactoring the call sites onto this type therefore changes no
//! report anywhere.

use mas_sim::HardwareConfig;

use crate::decode::{DecodeStep, PrefillChunk};
use crate::workload::AttentionWorkload;

/// The three-stream resource demand of one unit of attention work (a
/// prefill workload or a decode step), in device-independent units:
/// multiply-accumulates, VEC-lane operations and DRAM bytes.
///
/// Demands of work items sharing a launch add component-wise
/// ([`StreamDemand::accumulate`]); the launch's physical service-time bound
/// on a device is the binding component ([`StreamDemand::bound_seconds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamDemand {
    /// Multiply-accumulate operations.
    pub mac_ops: f64,
    /// VEC-lane operations (softmax elements times the per-element op
    /// count of the device's softmax decomposition).
    pub vec_ops: f64,
    /// Minimum DRAM traffic in bytes.
    pub dram_bytes: f64,
}

impl StreamDemand {
    /// The demand of one fixed-shape prefill attention workload: its full
    /// MAC count, its softmax elements at the device's VEC cost per
    /// element, and its minimum DRAM traffic.
    #[must_use]
    pub fn of_prefill(workload: &AttentionWorkload, hw: &HardwareConfig) -> Self {
        Self {
            mac_ops: workload.total_mac_ops() as f64,
            vec_ops: workload.softmax_elements() as f64 * hw.softmax_ops_per_element as f64,
            dram_bytes: workload.min_dram_traffic_bytes(hw.element_bytes) as f64,
        }
    }

    /// The demand of one decode step: linear-in-context MAC and softmax
    /// work plus the KV-cache stream and new-token rows.
    #[must_use]
    pub fn of_decode_step(step: &DecodeStep, hw: &HardwareConfig) -> Self {
        Self::of_decode_step_with_kv(step, hw, hw.element_bytes)
    }

    /// [`StreamDemand::of_decode_step`] with the KV terms of the DRAM
    /// traffic priced at `kv_element_bytes`
    /// ([`DecodeStep::min_dram_traffic_bytes_split`]): a narrower KV dtype
    /// shrinks the cache stream — and so the DRAM-bound service time — but
    /// leaves MAC and softmax work untouched (compute widens to f32).
    #[must_use]
    pub fn of_decode_step_with_kv(
        step: &DecodeStep,
        hw: &HardwareConfig,
        kv_element_bytes: usize,
    ) -> Self {
        Self {
            mac_ops: step.mac_ops() as f64,
            vec_ops: step.softmax_elements() as f64 * hw.softmax_ops_per_element as f64,
            dram_bytes: step.min_dram_traffic_bytes_split(hw.element_bytes, kv_element_bytes)
                as f64,
        }
    }

    /// The demand of one chunk of a chunked prefill with the KV terms
    /// priced at `kv_element_bytes`: the decode cost split
    /// ([`StreamDemand::of_decode_step_with_kv`]) summed in closed form over
    /// the chunk's causal query rows ([`PrefillChunk`]). A chunk covering a
    /// whole prompt therefore prices identically to the per-token decode
    /// chain it replaces, up to the per-launch issue overhead.
    #[must_use]
    pub fn of_prefill_chunk_with_kv(
        chunk: &PrefillChunk,
        hw: &HardwareConfig,
        kv_element_bytes: usize,
    ) -> Self {
        Self {
            mac_ops: chunk.mac_ops() as f64,
            vec_ops: chunk.softmax_elements() as f64 * hw.softmax_ops_per_element as f64,
            dram_bytes: chunk.min_dram_traffic_bytes_split(hw.element_bytes, kv_element_bytes)
                as f64,
        }
    }

    /// Adds another work item's demand component-wise (work items sharing a
    /// launch each stream their own operands and compute their own rows, so
    /// demands sum).
    pub fn accumulate(&mut self, other: &Self) {
        self.mac_ops += other.mac_ops;
        self.vec_ops += other.vec_ops;
        self.dram_bytes += other.dram_bytes;
    }

    /// Physical lower bound on the service time of this demand on an idle
    /// device: the largest of peak-throughput MAC time, peak-throughput VEC
    /// time and minimum DRAM traffic time. Queueing, tiling overheads and
    /// launch issue cost only add to this.
    #[must_use]
    pub fn bound_seconds(&self, hw: &HardwareConfig) -> f64 {
        let mac_s = self.mac_ops / hw.peak_macs_per_second();
        let vec_s = self.vec_ops / (hw.vec_ops_per_cycle_total() as f64 * hw.frequency_hz);
        let dram_s = self.dram_bytes / hw.dram_bandwidth_bytes_per_s;
        mac_s.max(vec_s).max(dram_s)
    }
}

/// The four-track resource demand of one unit of attention work: the
/// [`StreamDemand`] streams with the DRAM traffic split by direction, in
/// exact integer units. This is the currency the overlap-aware track
/// executor schedules — operand/KV streaming rides the DMA-in queue,
/// MAC and VEC work ride the two compute queues, and result rows ride the
/// writeback queue, so a launch's stages can overlap across queues instead
/// of collapsing to the scalar `max` bound.
///
/// Components are integers by construction (op and byte counts), which
/// makes [`TrackDemand::split_stages`] exact: the per-stage demands of a
/// tiled launch telescope back to the monolithic demand with zero rounding
/// drift, and [`TrackDemand::stream`] reproduces the closed-form
/// [`StreamDemand`] bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackDemand {
    /// Read-direction DRAM bytes (operand / KV-cache streaming in).
    pub dma_in_bytes: u64,
    /// Multiply-accumulate operations on the MAC queue.
    pub mac_ops: u64,
    /// VEC-lane operations (softmax elements times the device's per-element
    /// op count) on the VEC queue.
    pub vec_ops: u64,
    /// Write-direction DRAM bytes (appended KV rows / output rows out).
    pub writeback_bytes: u64,
}

impl TrackDemand {
    /// The four-track demand of one fixed-shape prefill attention workload:
    /// reads `Q`/`K`/`V`, computes, writes `O`.
    #[must_use]
    pub fn of_prefill(workload: &AttentionWorkload, hw: &HardwareConfig) -> Self {
        let total = workload.min_dram_traffic_bytes(hw.element_bytes);
        let write = workload.min_dram_write_bytes(hw.element_bytes);
        Self {
            dma_in_bytes: total - write,
            mac_ops: workload.total_mac_ops(),
            vec_ops: workload.softmax_elements() * hw.softmax_ops_per_element as u64,
            writeback_bytes: write,
        }
    }

    /// The four-track demand of one decode step with KV terms priced at
    /// `kv_element_bytes`: streams the cached `K`/`V` plus the `q` row in,
    /// writes the appended `k`/`v` rows and the `o` row back.
    #[must_use]
    pub fn of_decode_step_with_kv(
        step: &DecodeStep,
        hw: &HardwareConfig,
        kv_element_bytes: usize,
    ) -> Self {
        let total = step.min_dram_traffic_bytes_split(hw.element_bytes, kv_element_bytes);
        let write = step.min_dram_write_bytes_split(hw.element_bytes, kv_element_bytes);
        Self {
            dma_in_bytes: total - write,
            mac_ops: step.mac_ops(),
            vec_ops: step.softmax_elements() * hw.softmax_ops_per_element as u64,
            writeback_bytes: write,
        }
    }

    /// The four-track demand of one chunk of a chunked prefill — the decode
    /// split summed in closed form over the chunk's causal rows, exactly as
    /// [`StreamDemand::of_prefill_chunk_with_kv`].
    #[must_use]
    pub fn of_prefill_chunk_with_kv(
        chunk: &PrefillChunk,
        hw: &HardwareConfig,
        kv_element_bytes: usize,
    ) -> Self {
        let total = chunk.min_dram_traffic_bytes_split(hw.element_bytes, kv_element_bytes);
        let write = chunk.min_dram_write_bytes_split(hw.element_bytes, kv_element_bytes);
        Self {
            dma_in_bytes: total - write,
            mac_ops: chunk.mac_ops(),
            vec_ops: chunk.softmax_elements() * hw.softmax_ops_per_element as u64,
            writeback_bytes: write,
        }
    }

    /// Adds another work item's demand component-wise (co-launched items
    /// each stream their own operands, so demands sum, exactly as
    /// [`StreamDemand::accumulate`]).
    pub fn accumulate(&mut self, other: &Self) {
        self.dma_in_bytes += other.dma_in_bytes;
        self.mac_ops += other.mac_ops;
        self.vec_ops += other.vec_ops;
        self.writeback_bytes += other.writeback_bytes;
    }

    /// Collapses the four tracks back to the three-stream closed form. The
    /// result is bit-identical to the corresponding [`StreamDemand`]
    /// constructor: both DMA directions re-merge into one DRAM-byte stream,
    /// and all counts are integers below 2^53 so the `u64 → f64` casts are
    /// exact.
    #[must_use]
    pub fn stream(&self) -> StreamDemand {
        StreamDemand {
            mac_ops: self.mac_ops as f64,
            vec_ops: self.vec_ops as f64,
            dram_bytes: (self.dma_in_bytes + self.writeback_bytes) as f64,
        }
    }

    /// Splits the demand into `stages` per-tile stage demands that sum back
    /// to `self` *exactly*. Stage `k` of `S` receives
    /// `⌊c·(k+1)/S⌋ − ⌊c·k/S⌋` of each component `c` — the telescoping
    /// floors partition every integer count with zero remainder, so the
    /// stage-split schedule conserves work by construction (no component
    /// exceeds ~2^53, so the intermediate `c·S` products cannot overflow).
    #[must_use]
    pub fn split_stages(&self, stages: usize) -> Vec<Self> {
        let stages = stages.max(1);
        let share = |c: u64, k: usize| -> u64 {
            c * (k as u64 + 1) / stages as u64 - c * k as u64 / stages as u64
        };
        (0..stages)
            .map(|k| Self {
                dma_in_bytes: share(self.dma_in_bytes, k),
                mac_ops: share(self.mac_ops, k),
                vec_ops: share(self.vec_ops, k),
                writeback_bytes: share(self.writeback_bytes, k),
            })
            .collect()
    }

    /// Per-track ideal seconds on `hw`, indexed
    /// `[dma-in, mac, vec, writeback]` (the track order of
    /// `mas_sim::TrackKind`): each track's work at its queue's peak rate.
    /// The scalar [`StreamDemand::bound_seconds`] is the max of these with
    /// the two DMA directions fused — splitting the directions can only
    /// lower the per-queue times, never the compute ones.
    #[must_use]
    pub fn track_seconds(&self, hw: &HardwareConfig) -> [f64; 4] {
        [
            self.dma_in_bytes as f64 / hw.dram_bandwidth_bytes_per_s,
            self.mac_ops as f64 / hw.peak_macs_per_second(),
            self.vec_ops as f64 / (hw.vec_ops_per_cycle_total() as f64 * hw.frequency_hz),
            self.writeback_bytes as f64 / hw.dram_bandwidth_bytes_per_s,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareConfig {
        HardwareConfig::edge_default()
    }

    #[test]
    fn prefill_demand_matches_the_workload_counters() {
        let hw = hw();
        let w = AttentionWorkload::new("toy", 1, 8, 256, 64);
        let d = StreamDemand::of_prefill(&w, &hw);
        assert_eq!(d.mac_ops, w.total_mac_ops() as f64);
        assert_eq!(
            d.vec_ops,
            w.softmax_elements() as f64 * hw.softmax_ops_per_element as f64
        );
        assert_eq!(
            d.dram_bytes,
            w.min_dram_traffic_bytes(hw.element_bytes) as f64
        );
        assert!(d.bound_seconds(&hw) > 0.0);
    }

    #[test]
    fn decode_demand_is_linear_in_context() {
        let hw = hw();
        let short = StreamDemand::of_decode_step(&DecodeStep::new("s", 1, 8, 128, 64), &hw);
        let long = StreamDemand::of_decode_step(&DecodeStep::new("s", 1, 8, 256, 64), &hw);
        assert_eq!(long.mac_ops, 2.0 * short.mac_ops);
        assert_eq!(long.vec_ops, 2.0 * short.vec_ops);
        assert!(long.bound_seconds(&hw) > short.bound_seconds(&hw));
    }

    #[test]
    fn kv_priced_demand_shrinks_only_dram_bytes() {
        let hw = hw();
        let step = DecodeStep::new("d", 1, 8, 4096, 64);
        let full = StreamDemand::of_decode_step(&step, &hw);
        let half = StreamDemand::of_decode_step_with_kv(&step, &hw, hw.element_bytes / 2);
        assert_eq!(half.mac_ops, full.mac_ops);
        assert_eq!(half.vec_ops, full.vec_ops);
        assert!(half.dram_bytes < full.dram_bytes);
        // Equal pricing is exactly the unsplit demand.
        assert_eq!(
            StreamDemand::of_decode_step_with_kv(&step, &hw, hw.element_bytes),
            full
        );
    }

    #[test]
    fn accumulation_sums_components_in_order() {
        let hw = hw();
        let a = StreamDemand::of_decode_step(&DecodeStep::new("a", 1, 8, 100, 64), &hw);
        let b = StreamDemand::of_decode_step(&DecodeStep::new("b", 1, 8, 200, 64), &hw);
        let mut sum = StreamDemand::default();
        sum.accumulate(&a);
        sum.accumulate(&b);
        assert_eq!(sum.mac_ops, a.mac_ops + b.mac_ops);
        assert_eq!(sum.vec_ops, a.vec_ops + b.vec_ops);
        assert_eq!(sum.dram_bytes, a.dram_bytes + b.dram_bytes);
        // Accumulating from the zero demand is exact (0.0 + x == x), so the
        // fold over a one-item launch equals the item's own demand.
        let mut one = StreamDemand::default();
        one.accumulate(&a);
        assert_eq!(one, a);
    }

    #[test]
    fn bound_takes_the_binding_component() {
        let hw = hw();
        let mac_heavy = StreamDemand {
            mac_ops: 1e12,
            vec_ops: 1.0,
            dram_bytes: 1.0,
        };
        let dram_heavy = StreamDemand {
            mac_ops: 1.0,
            vec_ops: 1.0,
            dram_bytes: 1e12,
        };
        assert_eq!(
            mac_heavy.bound_seconds(&hw),
            1e12 / hw.peak_macs_per_second()
        );
        assert_eq!(
            dram_heavy.bound_seconds(&hw),
            1e12 / hw.dram_bandwidth_bytes_per_s
        );
    }

    #[test]
    fn chunk_demand_sums_its_decode_steps() {
        // A chunk's demand must equal the accumulated demand of the decode
        // steps it fuses, for any KV pricing — this is what makes chunked
        // prefill cost-neutral relative to the decode timeline it shares.
        let hw = hw();
        let chunk = PrefillChunk::new(1, 8, 100, 32, 64).with_kv_heads(2);
        for kv_eb in [hw.element_bytes, hw.element_bytes / 2] {
            let direct = StreamDemand::of_prefill_chunk_with_kv(&chunk, &hw, kv_eb);
            let mut summed = StreamDemand::default();
            for s in chunk.decode_steps() {
                summed.accumulate(&StreamDemand::of_decode_step_with_kv(&s, &hw, kv_eb));
            }
            assert_eq!(direct.mac_ops, summed.mac_ops);
            assert_eq!(direct.vec_ops, summed.vec_ops);
            assert_eq!(direct.dram_bytes, summed.dram_bytes);
        }
    }

    #[test]
    fn track_demand_stream_matches_the_closed_form_bitwise() {
        // The four-track split must collapse back to the exact StreamDemand
        // the scalar model computes — this is what keeps the degenerate
        // one-track executor bit-identical to `bound_seconds`.
        let hw = hw();
        let w = AttentionWorkload::new("toy", 2, 8, 192, 64);
        assert_eq!(
            TrackDemand::of_prefill(&w, &hw).stream(),
            StreamDemand::of_prefill(&w, &hw)
        );
        let step = DecodeStep::new("d", 1, 8, 300, 64).with_kv_heads(2);
        let chunk = PrefillChunk::new(1, 8, 100, 32, 64).with_kv_heads(2);
        for kv_eb in [hw.element_bytes, hw.element_bytes / 2] {
            assert_eq!(
                TrackDemand::of_decode_step_with_kv(&step, &hw, kv_eb).stream(),
                StreamDemand::of_decode_step_with_kv(&step, &hw, kv_eb)
            );
            assert_eq!(
                TrackDemand::of_prefill_chunk_with_kv(&chunk, &hw, kv_eb).stream(),
                StreamDemand::of_prefill_chunk_with_kv(&chunk, &hw, kv_eb)
            );
        }
    }

    #[test]
    fn track_demand_dma_directions_partition_the_traffic() {
        let hw = hw();
        let step = DecodeStep::new("d", 1, 8, 513, 64);
        let d = TrackDemand::of_decode_step_with_kv(&step, &hw, hw.element_bytes);
        assert_eq!(
            d.dma_in_bytes + d.writeback_bytes,
            step.min_dram_traffic_bytes(hw.element_bytes)
        );
        assert_eq!(
            d.writeback_bytes,
            step.min_dram_write_bytes_split(hw.element_bytes, hw.element_bytes)
        );
        // Both directions are non-trivial: a decode step always writes its
        // appended rows and always streams the cache in.
        assert!(d.dma_in_bytes > 0 && d.writeback_bytes > 0);
    }

    #[test]
    fn stage_split_telescopes_exactly() {
        let hw = hw();
        let d = TrackDemand::of_decode_step_with_kv(&DecodeStep::new("d", 1, 8, 997, 64), &hw, 2);
        for stages in [1, 2, 3, 4, 7, 16] {
            let split = d.split_stages(stages);
            assert_eq!(split.len(), stages);
            let mut sum = TrackDemand::default();
            for s in &split {
                sum.accumulate(s);
            }
            assert_eq!(sum, d, "stage split must conserve work at S={stages}");
            // No stage exceeds its even share by more than one unit per
            // component (floors differ by at most one).
            for s in &split {
                assert!(s.mac_ops <= d.mac_ops / stages as u64 + 1);
                assert!(s.dma_in_bytes <= d.dma_in_bytes / stages as u64 + 1);
            }
        }
        // Degenerate split: zero stages clamps to one.
        assert_eq!(d.split_stages(0), vec![d]);
    }

    #[test]
    fn track_seconds_never_exceed_the_scalar_bound() {
        let hw = hw();
        for ctx in [64, 1024, 8192] {
            let step = DecodeStep::new("d", 1, 8, ctx, 64);
            let d = TrackDemand::of_decode_step_with_kv(&step, &hw, hw.element_bytes);
            let ts = d.track_seconds(&hw);
            let bound = d.stream().bound_seconds(&hw);
            for t in ts {
                assert!(t <= bound + f64::EPSILON);
            }
            // The per-queue max equals the scalar bound only when a compute
            // stream binds; when DRAM binds, splitting the directions
            // strictly relaxes the binding queue.
            let queue_max = ts.iter().copied().fold(0.0f64, f64::max);
            assert!(queue_max <= bound);
        }
    }

    #[test]
    fn prefill_and_decode_demands_are_comparable() {
        // The unified engine's premise: a decode step's demand and a prefill
        // workload's demand live in the same units, so a mixed launch queue
        // can be costed on one timeline.
        let hw = hw();
        let prefill = StreamDemand::of_prefill(&AttentionWorkload::new("p", 1, 8, 256, 64), &hw);
        let step = StreamDemand::of_decode_step(&DecodeStep::new("d", 1, 8, 256, 64), &hw);
        // One decode step is one query row of the prefill's 256: strictly
        // less work on every component.
        assert!(step.mac_ops < prefill.mac_ops);
        assert!(step.vec_ops < prefill.vec_ops);
        assert!(step.bound_seconds(&hw) < prefill.bound_seconds(&hw));
    }
}
