//! Layer-Wise — the unfused sequential baseline.
//!
//! `C = QKᵀ` is computed in full and written to DRAM, then softmax reads `C`
//! and writes `P` to DRAM, then `O = PV` reads `P` back. Every operator is
//! internally tiled to fit on-chip, but the three operators run one after
//! another and the `N × N` intermediates round-trip off-chip memory, which
//! makes the workflow memory-bound on edge devices (paper §2, "Sequential
//! Attention Execution").

use mas_sim::task::TaskId;
use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::schedule::{kv_can_stay_resident, plan_chunks, BuildStats, Emitter, Schedule};
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Builds the Layer-Wise schedule.
pub(crate) fn build(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Schedule {
    let eb = hw.element_bytes;
    let mut em = Emitter::new();
    let plans = plan_chunks(workload, tiling, hw);
    let kv_resident = kv_can_stay_resident(DataflowKind::LayerWise, workload, tiling, hw);
    let embed = workload.embed;
    let mut rounds_total = 0usize;

    // ---- Phase 1: C = Q K^T, stored to DRAM --------------------------------
    let mut phase1_last: Vec<TaskId> = Vec::new();
    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let k_resident = if kv_resident {
            let bytes = plan.slices * workload.seq_len * embed * eb;
            Some(em.load(format!("c{chunk}: load K"), bytes, &[]))
        } else {
            None
        };
        for i in 0..plan.query_blocks {
            rounds_total += 1;
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let q_bytes = plan.slices * q_rows * embed * eb;
            let load_q = em.load(format!("c{chunk} r{i}: load Q_{i}"), q_bytes, &[]);
            let mut qk = Vec::new();
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                let mut deps = vec![load_q];
                if let Some(k) = k_resident {
                    deps.push(k);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(format!("c{chunk} r{i}: load K_{j}"), bytes, &[]));
                }
                qk.push(em.matmul(
                    format!("c{chunk} r{i}: C_{i},{j} = Q_{i} K_{j}^T"),
                    core,
                    rows,
                    embed,
                    kv_cols,
                    &deps,
                ));
            }
            let c_bytes = plan.slices * q_rows * workload.seq_len * eb;
            phase1_last.push(em.store(format!("c{chunk} r{i}: store C_{i}"), c_bytes, &qk));
        }
    }
    let phase1_done = em.barrier("operator boundary: C complete", 0, &phase1_last);

    // ---- Phase 2: P = softmax(C), stored to DRAM ---------------------------
    let mut phase2_last: Vec<TaskId> = Vec::new();
    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        for i in 0..plan.query_blocks {
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let c_bytes = plan.slices * q_rows * workload.seq_len * eb;
            let load_c = em.load(
                format!("c{chunk} r{i}: load C_{i}"),
                c_bytes,
                &[phase1_done],
            );
            let sm = em.softmax(
                format!("c{chunk} r{i}: P_{i} = softmax(C_{i})"),
                core,
                rows,
                workload.seq_len,
                &[load_c],
            );
            phase2_last.push(em.store(format!("c{chunk} r{i}: store P_{i}"), c_bytes, &[sm]));
        }
    }
    let phase2_done = em.barrier("operator boundary: P complete", 0, &phase2_last);

    // ---- Phase 3: O = P V ---------------------------------------------------
    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let v_resident = if kv_resident {
            let bytes = plan.slices * workload.seq_len * embed * eb;
            Some(em.load(format!("c{chunk}: load V"), bytes, &[phase2_done]))
        } else {
            None
        };
        for i in 0..plan.query_blocks {
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let p_bytes = plan.slices * q_rows * workload.seq_len * eb;
            let load_p = em.load(
                format!("c{chunk} r{i}: load P_{i}"),
                p_bytes,
                &[phase2_done],
            );
            let mut pv = Vec::new();
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                let mut deps = vec![load_p];
                if let Some(v) = v_resident {
                    deps.push(v);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(format!("c{chunk} r{i}: load V_{j}"), bytes, &[phase2_done]));
                }
                pv.push(em.matmul(
                    format!("c{chunk} r{i}: O_{i} += P_{i},{j} V_{j}"),
                    core,
                    rows,
                    kv_cols,
                    embed,
                    &deps,
                ));
            }
            let o_bytes = plan.slices * q_rows * embed * eb;
            em.store(format!("c{chunk} r{i}: store O_{i}"), o_bytes, &pv);
        }
    }

    let stats = BuildStats {
        kind: DataflowKind::LayerWise,
        tiling: *tiling,
        rounds: rounds_total,
        overwrite_events: 0,
        reload_bytes: 0,
        redo_mac_ops: 0,
        kv_resident,
        l1_high_water_bytes: crate::footprint::footprint(
            DataflowKind::LayerWise,
            workload,
            tiling,
            eb,
        )
        .total_bytes(),
    };
    Schedule::new(em.into_graph(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_sim::{EnergyModel, Executor};

    fn toy() -> (AttentionWorkload, HardwareConfig, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 64, &w);
        (w, hw, t)
    }

    #[test]
    fn intermediates_round_trip_dram() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        let eb = hw.element_bytes;
        // Writes: C, P and O.
        assert_eq!(
            s.graph().dram_write_bytes(),
            2 * w.intermediate_bytes(eb) + w.operand_bytes(eb)
        );
        // Reads include C and P coming back.
        assert!(s.graph().dram_read_bytes() >= 2 * w.intermediate_bytes(eb));
    }

    #[test]
    fn layerwise_is_slower_than_flat() {
        let (w, hw, t) = toy();
        let lw = build(&w, &t, &hw);
        let flat = crate::flat::build(&w, &t, &hw);
        let exec = Executor::new(hw, EnergyModel::edge_16nm());
        let lw_cycles = exec.run(lw.graph()).unwrap().total_cycles;
        let flat_cycles = exec.run(flat.graph()).unwrap().total_cycles;
        assert!(
            lw_cycles > flat_cycles,
            "Layer-Wise ({lw_cycles}) must be slower than FLAT ({flat_cycles})"
        );
    }

    #[test]
    fn compute_totals_match_the_workload() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        assert_eq!(s.graph().total_mac_ops(), w.total_mac_ops());
        assert_eq!(
            s.graph().total_vec_ops(hw.softmax_ops_per_element),
            w.softmax_elements() * hw.softmax_ops_per_element as u64
        );
    }
}
