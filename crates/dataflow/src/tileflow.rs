//! TileFlow-style fused, stage-synchronous pipeline.
//!
//! TileFlow (Zheng et al., 2023) models fusion dataflows as tiling trees and
//! pipelines producer/consumer operators at tile granularity. Following the
//! paper's re-implementation (§5.1), we model it as a **stage-synchronous
//! software pipeline**: in pipeline step `s` the device concurrently computes
//! `C_s = Q_s Kᵀ`, `P_{s-1} = softmax(C_{s-1})` and `O_{s-2} = P_{s-2} V`,
//! and a barrier at the end of every step synchronizes all three stages
//! before the next step may begin.
//!
//! Two structural properties distinguish it from MAS-Attention:
//!
//! 1. the per-step barrier prevents the MAC stream from running ahead across
//!    rounds (slack cannot be borrowed between steps), and also holds back
//!    the next step's DMA prefetches, and
//! 2. three `C`/`P` row blocks are live simultaneously (see
//!    [`crate::footprint`]), so under L1 pressure the tiling search must
//!    choose smaller tiles than MAS-Attention, paying more per-tile overhead.

use mas_sim::task::TaskId;
use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::schedule::{kv_can_stay_resident, plan_chunks, BuildStats, Emitter, Schedule};
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Builds the TileFlow-style schedule.
pub(crate) fn build(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Schedule {
    let eb = hw.element_bytes;
    let mut em = Emitter::new();
    let plans = plan_chunks(workload, tiling, hw);
    let kv_resident = kv_can_stay_resident(DataflowKind::TileFlow, workload, tiling, hw);
    let embed = workload.embed;
    let mut rounds_total = 0usize;

    let resident = crate::schedule::preload_resident_kv(&mut em, &plans, workload, hw, kv_resident);

    // The stage-synchronous pipeline is one pipeline per core: the steps of a
    // chunk start only after the previous chunk's last stage barrier on the
    // same core.
    let mut core_barrier: Vec<Option<TaskId>> = vec![None; hw.cores];

    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let qb = plan.query_blocks;
        rounds_total += qb;
        let (k_resident, v_resident) = resident[plan.index];

        let mut qk_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); qb];
        let mut sm_tasks: Vec<Option<TaskId>> = vec![None; qb];
        let mut barrier: Option<TaskId> = core_barrier[core];

        // Pipeline steps: step s runs C_s, softmax_{s-1} and PV_{s-2}.
        for s in 0..qb + 2 {
            let mut step_tasks: Vec<TaskId> = Vec::new();

            // Stage 1: C_s = Q_s K^T.
            if s < qb {
                let q_rows = plan.q_rows(workload, tiling, s);
                let rows = q_rows * plan.slices;
                let q_bytes = plan.slices * q_rows * embed * eb;
                // Stage-synchronous: even the DMA prefetch for step s waits
                // for the previous barrier.
                let load_deps: Vec<TaskId> = barrier.into_iter().collect();
                let load_q = em.load(format!("c{chunk} s{s}: load Q_{s}"), q_bytes, &load_deps);
                for j in 0..plan.kv_tiles {
                    let kv_cols = plan.kv_cols(workload, tiling, j);
                    let mut deps = vec![load_q];
                    if let Some(k) = k_resident {
                        deps.push(k);
                    } else {
                        let bytes = plan.slices * kv_cols * embed * eb;
                        deps.push(em.load(format!("c{chunk} s{s}: load K_{j}"), bytes, &load_deps));
                    }
                    if let Some(b) = barrier {
                        deps.push(b);
                    }
                    let id = em.matmul(
                        format!("c{chunk} s{s}: C_{s},{j} = Q_{s} K_{j}^T"),
                        core,
                        rows,
                        embed,
                        kv_cols,
                        &deps,
                    );
                    qk_tasks[s].push(id);
                    step_tasks.push(id);
                }
            }

            // Stage 2: P_{s-1} = softmax(C_{s-1}).
            if s >= 1 && s - 1 < qb {
                let i = s - 1;
                let q_rows = plan.q_rows(workload, tiling, i);
                let rows = q_rows * plan.slices;
                let mut deps = qk_tasks[i].clone();
                if let Some(b) = barrier {
                    deps.push(b);
                }
                let sm = em.softmax(
                    format!("c{chunk} s{s}: P_{i} = softmax(C_{i})"),
                    core,
                    rows,
                    workload.seq_len,
                    &deps,
                );
                sm_tasks[i] = Some(sm);
                step_tasks.push(sm);
            }

            // Stage 3: O_{s-2} = P_{s-2} V.
            if s >= 2 && s - 2 < qb {
                let i = s - 2;
                let q_rows = plan.q_rows(workload, tiling, i);
                let rows = q_rows * plan.slices;
                let mut pv = Vec::with_capacity(plan.kv_tiles);
                for j in 0..plan.kv_tiles {
                    let kv_cols = plan.kv_cols(workload, tiling, j);
                    let mut deps = Vec::new();
                    if let Some(sm) = sm_tasks[i] {
                        deps.push(sm);
                    }
                    if let Some(v) = v_resident {
                        deps.push(v);
                    } else {
                        let bytes = plan.slices * kv_cols * embed * eb;
                        let load_deps: Vec<TaskId> = barrier.into_iter().collect();
                        deps.push(em.load(format!("c{chunk} s{s}: load V_{j}"), bytes, &load_deps));
                    }
                    if let Some(b) = barrier {
                        deps.push(b);
                    }
                    let id = em.matmul(
                        format!("c{chunk} s{s}: O_{i} += P_{i},{j} V_{j}"),
                        core,
                        rows,
                        kv_cols,
                        embed,
                        &deps,
                    );
                    pv.push(id);
                    step_tasks.push(id);
                }
                let o_bytes = plan.slices * q_rows * embed * eb;
                em.store(format!("c{chunk} s{s}: store O_{i}"), o_bytes, &pv);
            }

            // Stage barrier: every stage of this step must finish before the
            // next step starts.
            if !step_tasks.is_empty() {
                barrier =
                    Some(em.barrier(format!("c{chunk} s{s}: stage barrier"), core, &step_tasks));
            }
        }
        core_barrier[core] = barrier;
    }

    let stats = BuildStats {
        kind: DataflowKind::TileFlow,
        tiling: *tiling,
        rounds: rounds_total,
        overwrite_events: 0,
        reload_bytes: 0,
        redo_mac_ops: 0,
        kv_resident,
        l1_high_water_bytes: crate::footprint::footprint(
            DataflowKind::TileFlow,
            workload,
            tiling,
            eb,
        )
        .total_bytes(),
    };
    Schedule::new(em.into_graph(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_sim::{EnergyModel, Executor};

    fn toy() -> (AttentionWorkload, HardwareConfig, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 64, &w);
        (w, hw, t)
    }

    #[test]
    fn graph_is_valid_and_covers_all_work() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        assert_eq!(s.graph().total_mac_ops(), w.total_mac_ops());
        assert_eq!(
            s.graph().dram_write_bytes(),
            w.operand_bytes(hw.element_bytes)
        );
    }

    #[test]
    fn tileflow_is_at_least_as_fast_as_flat_but_not_faster_than_mas() {
        let (w, hw, t) = toy();
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm());
        let tf = exec.run(build(&w, &t, &hw).graph()).unwrap().total_cycles;
        let flat = exec
            .run(crate::flat::build(&w, &t, &hw).graph())
            .unwrap()
            .total_cycles;
        let mas = exec
            .run(crate::mas::build(&w, &t, &hw).graph())
            .unwrap()
            .total_cycles;
        assert!(tf <= flat, "TileFlow ({tf}) should not trail FLAT ({flat})");
        assert!(mas <= tf, "MAS ({mas}) should not trail TileFlow ({tf})");
    }

    #[test]
    fn barrier_overhead_grows_with_round_count() {
        // With more (smaller) query blocks TileFlow pays more stage barriers,
        // so its gap to MAS should not shrink.
        let w = AttentionWorkload::new("toy", 1, 2, 256, 64);
        let hw = HardwareConfig::edge_default();
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm());
        let coarse = Tiling::new(1, 1, 64, 64, &w);
        let fine = Tiling::new(1, 1, 8, 64, &w);
        let tf_coarse = exec
            .run(build(&w, &coarse, &hw).graph())
            .unwrap()
            .total_cycles;
        let tf_fine = exec
            .run(build(&w, &fine, &hw).graph())
            .unwrap()
            .total_cycles;
        assert!(tf_fine > tf_coarse, "finer tiling must cost TileFlow more");
    }
}
