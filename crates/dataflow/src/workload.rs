//! Attention-layer workload descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One multi-head attention layer to be executed on the accelerator.
///
/// The paper characterizes every workload (Table 1) by the number of heads
/// `H`, the sequence length `N` and the per-head embedding size `E` (its
/// `Emb_{K,V}` column); the batch size `B` is 1 for single-request edge
/// inference but kept explicit for generality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttentionWorkload {
    /// Human-readable name, e.g. `"BERT-Base"`.
    pub name: String,
    /// Batch size `B`.
    pub batch: usize,
    /// Number of attention heads `H`.
    pub heads: usize,
    /// Sequence length `N` (queries and keys/values share it in the paper).
    pub seq_len: usize,
    /// Per-head embedding size `E`.
    pub embed: usize,
}

impl AttentionWorkload {
    /// Creates a workload description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; workloads come from network tables or
    /// generators that never produce degenerate shapes.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        batch: usize,
        heads: usize,
        seq_len: usize,
        embed: usize,
    ) -> Self {
        assert!(
            batch > 0 && heads > 0 && seq_len > 0 && embed > 0,
            "attention workload dimensions must be non-zero"
        );
        Self {
            name: name.into(),
            batch,
            heads,
            seq_len,
            embed,
        }
    }

    /// Number of independent `(batch, head)` attention slices.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.batch * self.heads
    }

    /// Total multiply-accumulate operations for both MatMuls
    /// (`QKᵀ` and `PV`): `2 · B · H · N² · E`.
    #[must_use]
    pub fn total_mac_ops(&self) -> u64 {
        2 * self.slices() as u64 * (self.seq_len as u64) * (self.seq_len as u64) * self.embed as u64
    }

    /// Number of softmax elements (`B · H · N²`).
    #[must_use]
    pub fn softmax_elements(&self) -> u64 {
        self.slices() as u64 * (self.seq_len as u64) * (self.seq_len as u64)
    }

    /// Bytes of one `Q`/`K`/`V`/`O` operand at `element_bytes` per element.
    #[must_use]
    pub fn operand_bytes(&self, element_bytes: usize) -> u64 {
        self.slices() as u64 * self.seq_len as u64 * self.embed as u64 * element_bytes as u64
    }

    /// Bytes of the full intermediate `C` (or `P`) matrix.
    #[must_use]
    pub fn intermediate_bytes(&self, element_bytes: usize) -> u64 {
        self.softmax_elements() * element_bytes as u64
    }

    /// Minimum DRAM traffic for exact attention with fused intermediates:
    /// read `Q`, `K`, `V` once and write `O` once.
    #[must_use]
    pub fn min_dram_traffic_bytes(&self, element_bytes: usize) -> u64 {
        4 * self.operand_bytes(element_bytes)
    }

    /// The write-direction share of
    /// [`AttentionWorkload::min_dram_traffic_bytes`]: the single `O`
    /// operand. Reads are `Q`, `K` and `V`; the split partitions the total
    /// exactly, which the track executor relies on to place the two
    /// directions on separate DMA queues.
    #[must_use]
    pub fn min_dram_write_bytes(&self, element_bytes: usize) -> u64 {
        self.operand_bytes(element_bytes)
    }

    /// Returns a copy with a different sequence length (used by sweeps such
    /// as the §5.6 maximum-sequence-length analysis).
    #[must_use]
    pub fn with_seq_len(&self, seq_len: usize) -> Self {
        Self {
            name: format!("{}@N{seq_len}", self.name),
            seq_len,
            ..self.clone()
        }
    }
}

impl fmt::Display for AttentionWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (B={}, H={}, N={}, E={})",
            self.name, self.batch, self.heads, self.seq_len, self.embed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_base() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn op_counts_match_closed_forms() {
        let w = bert_base();
        assert_eq!(w.slices(), 12);
        assert_eq!(w.total_mac_ops(), 2 * 12 * 512 * 512 * 64);
        assert_eq!(w.softmax_elements(), 12 * 512 * 512);
    }

    #[test]
    fn byte_counts_scale_with_element_size() {
        let w = bert_base();
        assert_eq!(w.operand_bytes(2) * 2, w.operand_bytes(4));
        assert_eq!(w.intermediate_bytes(2), 12 * 512 * 512 * 2);
        assert_eq!(w.min_dram_traffic_bytes(2), 4 * w.operand_bytes(2));
    }

    #[test]
    fn with_seq_len_changes_only_the_sequence() {
        let w = bert_base().with_seq_len(1024);
        assert_eq!(w.seq_len, 1024);
        assert_eq!(w.heads, 12);
        assert!(w.name.contains("N1024"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = AttentionWorkload::new("bad", 1, 0, 512, 64);
    }

    #[test]
    fn display_contains_dimensions() {
        let s = format!("{}", bert_base());
        assert!(s.contains("H=12"));
        assert!(s.contains("N=512"));
    }
}
