//! Soft-Pipe — pipelined `QKᵀ`/softmax with an off-chip `P`.
//!
//! The paper's second baseline (§5.1): rows of `Q` are streamed on-chip, the
//! first MatMul and the softmax are fused and *pipelined* — while the VEC
//! unit computes `P_i = softmax(C_i)`, the MAC unit may already produce
//! `C_{i+1}` — but the probability matrix `P` is written back to DRAM, and
//! the final `O = PV` MatMul runs sequentially afterwards, re-reading `P`.

use mas_sim::task::TaskId;
use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::schedule::{kv_can_stay_resident, plan_chunks, BuildStats, Emitter, Schedule};
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Builds the Soft-Pipe schedule.
pub(crate) fn build(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Schedule {
    let eb = hw.element_bytes;
    let mut em = Emitter::new();
    let plans = plan_chunks(workload, tiling, hw);
    let kv_resident = kv_can_stay_resident(DataflowKind::SoftPipe, workload, tiling, hw);
    let embed = workload.embed;
    let mut rounds_total = 0usize;

    // ---- Stage A: pipelined C = Q K^T and P = softmax(C), P -> DRAM --------
    let mut stage_a_last: Vec<TaskId> = Vec::new();
    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let k_resident = if kv_resident {
            let bytes = plan.slices * workload.seq_len * embed * eb;
            Some(em.load(format!("c{chunk}: load K"), bytes, &[]))
        } else {
            None
        };
        for i in 0..plan.query_blocks {
            rounds_total += 1;
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let q_bytes = plan.slices * q_rows * embed * eb;
            let load_q = em.load(format!("c{chunk} r{i}: load Q_{i}"), q_bytes, &[]);
            let mut qk = Vec::new();
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                let mut deps = vec![load_q];
                if let Some(k) = k_resident {
                    deps.push(k);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(format!("c{chunk} r{i}: load K_{j}"), bytes, &[]));
                }
                // No dependency on the previous round's softmax: the MAC runs
                // ahead, which is the pipelining Soft-Pipe introduces.
                qk.push(em.matmul(
                    format!("c{chunk} r{i}: C_{i},{j} = Q_{i} K_{j}^T"),
                    core,
                    rows,
                    embed,
                    kv_cols,
                    &deps,
                ));
            }
            let sm = em.softmax(
                format!("c{chunk} r{i}: P_{i} = softmax(C_{i})"),
                core,
                rows,
                workload.seq_len,
                &qk,
            );
            let p_bytes = plan.slices * q_rows * workload.seq_len * eb;
            stage_a_last.push(em.store(format!("c{chunk} r{i}: store P_{i}"), p_bytes, &[sm]));
        }
    }
    let stage_a_done = em.barrier("stage boundary: P complete", 0, &stage_a_last);

    // ---- Stage B: O = P V, sequential ---------------------------------------
    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let v_resident = if kv_resident {
            let bytes = plan.slices * workload.seq_len * embed * eb;
            Some(em.load(format!("c{chunk}: load V"), bytes, &[stage_a_done]))
        } else {
            None
        };
        for i in 0..plan.query_blocks {
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let p_bytes = plan.slices * q_rows * workload.seq_len * eb;
            let load_p = em.load(
                format!("c{chunk} r{i}: load P_{i}"),
                p_bytes,
                &[stage_a_done],
            );
            let mut pv = Vec::new();
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                let mut deps = vec![load_p];
                if let Some(v) = v_resident {
                    deps.push(v);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(
                        format!("c{chunk} r{i}: load V_{j}"),
                        bytes,
                        &[stage_a_done],
                    ));
                }
                pv.push(em.matmul(
                    format!("c{chunk} r{i}: O_{i} += P_{i},{j} V_{j}"),
                    core,
                    rows,
                    kv_cols,
                    embed,
                    &deps,
                ));
            }
            let o_bytes = plan.slices * q_rows * embed * eb;
            em.store(format!("c{chunk} r{i}: store O_{i}"), o_bytes, &pv);
        }
    }

    let stats = BuildStats {
        kind: DataflowKind::SoftPipe,
        tiling: *tiling,
        rounds: rounds_total,
        overwrite_events: 0,
        reload_bytes: 0,
        redo_mac_ops: 0,
        kv_resident,
        l1_high_water_bytes: crate::footprint::footprint(
            DataflowKind::SoftPipe,
            workload,
            tiling,
            eb,
        )
        .total_bytes(),
    };
    Schedule::new(em.into_graph(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_sim::{EnergyModel, Executor};

    fn toy() -> (AttentionWorkload, HardwareConfig, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 64, &w);
        (w, hw, t)
    }

    #[test]
    fn p_round_trips_dram_but_c_does_not() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        let eb = hw.element_bytes;
        // Writes: P and O, but not C.
        assert_eq!(
            s.graph().dram_write_bytes(),
            w.intermediate_bytes(eb) + w.operand_bytes(eb)
        );
    }

    #[test]
    fn softpipe_is_between_layerwise_and_flat() {
        let (w, hw, t) = toy();
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm());
        let lw = exec
            .run(crate::layerwise::build(&w, &t, &hw).graph())
            .unwrap()
            .total_cycles;
        let sp = exec.run(build(&w, &t, &hw).graph()).unwrap().total_cycles;
        let flat = exec
            .run(crate::flat::build(&w, &t, &hw).graph())
            .unwrap()
            .total_cycles;
        assert!(sp < lw, "Soft-Pipe ({sp}) must beat Layer-Wise ({lw})");
        assert!(sp > flat, "Soft-Pipe ({sp}) must trail FLAT ({flat})");
    }

    #[test]
    fn mac_vec_overlap_exists_in_stage_a() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        let report = Executor::new(hw, EnergyModel::edge_16nm())
            .run(s.graph())
            .unwrap();
        assert!(report.mac_vec_overlap_cycles > 0);
    }
}
