//! Numerical execution of each dataflow (golden-data check support).
//!
//! The schedules in this crate describe *when* tiles are computed; this
//! module computes *what* they contain, by dispatching each method to the
//! matching tiled executor in `mas-tensor`. All methods implement exact
//! attention, so all of them must match the unfused reference within
//! floating-point accumulation tolerance — the paper's golden-data check
//! (§5.1).

use mas_tensor::attention::reference_attention;
use mas_tensor::golden::{golden_check, GoldenReport, Tolerance};
use mas_tensor::tiled::{fused_online_attention, tiled_attention, TileSizes};
use mas_tensor::{Result, Tensor};

use crate::kind::DataflowKind;
use crate::tiling::Tiling;

/// Computes the attention output of `kind` on the given operands using the
/// blocking structure that method would use on-device.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if the operand shapes are
/// inconsistent or the tiling is invalid for them.
pub fn execute_numeric(
    kind: DataflowKind,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    tiling: &Tiling,
) -> Result<Tensor> {
    let seq_len = q.shape().rows();
    match kind {
        // The unfused and the P-to-DRAM baselines materialize full
        // intermediates; their arithmetic is the reference computation.
        DataflowKind::LayerWise | DataflowKind::SoftPipe => reference_attention(q, k, v),
        // Row-block methods: two sweeps over K/V sub-tiles per query block.
        DataflowKind::Flat | DataflowKind::TileFlow | DataflowKind::MasAttention => {
            let tiles = TileSizes::new(tiling.n_q, tiling.n_kv, seq_len)?;
            tiled_attention(q, k, v, tiles)
        }
        // FuseMax: single fused sweep with online softmax.
        DataflowKind::FuseMax => {
            let tiles = TileSizes::new(tiling.n_q, tiling.n_kv, seq_len)?;
            fused_online_attention(q, k, v, tiles)
        }
    }
}

/// Runs the golden-data check for one method: executes it numerically and
/// compares against the unfused reference.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if shapes are inconsistent.
pub fn golden_check_method(
    kind: DataflowKind,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    tiling: &Tiling,
) -> Result<GoldenReport> {
    let golden = reference_attention(q, k, v)?;
    let candidate = execute_numeric(kind, q, k, v, tiling)?;
    golden_check(&candidate, &golden, Tolerance::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AttentionWorkload;
    use mas_tensor::init::random_qkv;

    fn setup() -> (Tensor, Tensor, Tensor, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 48, 16);
        let (q, k, v) = random_qkv(w.batch, w.heads, w.seq_len, w.embed, 7);
        let tiling = Tiling::new(1, 1, 16, 24, &w);
        (q, k, v, tiling)
    }

    #[test]
    fn every_method_passes_the_golden_check() {
        let (q, k, v, tiling) = setup();
        for kind in DataflowKind::all() {
            let report = golden_check_method(kind, &q, &k, &v, &tiling).unwrap();
            assert!(
                report.passed,
                "{kind} failed the golden data check: {} mismatches, max abs diff {}",
                report.mismatches, report.max_abs_diff
            );
        }
    }

    #[test]
    fn ragged_tilings_also_pass() {
        let w = AttentionWorkload::new("ragged", 1, 1, 37, 8);
        let (q, k, v) = random_qkv(w.batch, w.heads, w.seq_len, w.embed, 21);
        let tiling = Tiling::new(1, 1, 5, 11, &w);
        for kind in [
            DataflowKind::Flat,
            DataflowKind::MasAttention,
            DataflowKind::FuseMax,
        ] {
            let report = golden_check_method(kind, &q, &k, &v, &tiling).unwrap();
            assert!(report.passed, "{kind} failed on a ragged tiling");
        }
    }

    #[test]
    fn methods_agree_with_each_other() {
        let (q, k, v, tiling) = setup();
        let flat = execute_numeric(DataflowKind::Flat, &q, &k, &v, &tiling).unwrap();
        let mas = execute_numeric(DataflowKind::MasAttention, &q, &k, &v, &tiling).unwrap();
        let fusemax = execute_numeric(DataflowKind::FuseMax, &q, &k, &v, &tiling).unwrap();
        assert!(flat.max_abs_diff(&mas).unwrap() < 1e-6);
        assert!(flat.max_abs_diff(&fusemax).unwrap() < 1e-4);
    }
}
