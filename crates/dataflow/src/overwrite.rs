//! Proactive buffer-overwrite strategy (paper §4.3).
//!
//! When the shared L1 cannot hold MAS-Attention's full working set (two
//! `C`/`P` row blocks plus the resident `K`/`V` of the chunk), the paper's
//! strategy keeps the pipeline running by *overwriting* the on-chip `K` or
//! `V` tile — whichever the MAC unit is currently consuming — so the softmax
//! output `P_i` (which can never be refetched from DRAM) always has space.
//! The overwritten operand is later reloaded from DRAM and the interrupted
//! MatMul sub-tile is redone.
//!
//! This module holds the *policy*: deciding whether the strategy must engage
//! for a given workload/tiling/hardware combination, and which operand is
//! sacrificed in a given round. The MAS builder ([`crate::mas`]) turns these
//! decisions into reload and redo tasks.

use serde::{Deserialize, Serialize};

use mas_sim::HardwareConfig;

use crate::footprint::{footprint, resident_kv_bytes};
use crate::kind::DataflowKind;
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// How the MAS builder should manage `K`/`V` residency for one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResidencyPlan {
    /// The full working set (resident `K`/`V` + two `C`/`P` blocks) fits:
    /// no overwrites are needed.
    Resident,
    /// `K`/`V` can stay resident only if one of them is sacrificed whenever a
    /// new `P_i` block is produced: the proactive overwrite strategy engages
    /// (Figures 2–3).
    OverwriteKv,
    /// Even a single `C`/`P` block plus resident `K`/`V` does not fit: the
    /// chunk falls back to streaming `K`/`V` sub-tiles from DRAM every round.
    StreamKv,
}

/// The operand sacrificed in one overwrite event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverwriteVictim {
    /// The `V` tile is overwritten while the MAC runs `P_{i-1} V` (Figure 2).
    V,
    /// The `K` tile is overwritten while the MAC runs `Q_{i+1} Kᵀ` (Figure 3).
    K,
}

impl OverwriteVictim {
    /// Short name for labels and reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            OverwriteVictim::V => "V",
            OverwriteVictim::K => "K",
        }
    }
}

/// Chooses the residency plan for MAS-Attention on one chunk.
///
/// The decision compares three working sets against the L1 capacity:
///
/// 1. full MAS footprint with resident `K`/`V` → [`ResidencyPlan::Resident`],
/// 2. FLAT-like footprint (a single `C`/`P` block) with resident `K`/`V` →
///    [`ResidencyPlan::OverwriteKv`] (the second block's space is obtained by
///    sacrificing `K`/`V` on demand),
/// 3. otherwise → [`ResidencyPlan::StreamKv`].
#[must_use]
pub fn residency_plan(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> ResidencyPlan {
    let eb = hw.element_bytes;
    let resident_kv = resident_kv_bytes(workload, tiling, eb);

    let mas = footprint(DataflowKind::MasAttention, workload, tiling, eb);
    let full = mas.total_bytes() - mas.kv_bytes + resident_kv;
    if full <= hw.l1_bytes {
        return ResidencyPlan::Resident;
    }

    let flat_like = footprint(DataflowKind::Flat, workload, tiling, eb);
    let reduced = flat_like.total_bytes() - flat_like.kv_bytes + resident_kv;
    if reduced <= hw.l1_bytes {
        return ResidencyPlan::OverwriteKv;
    }

    ResidencyPlan::StreamKv
}

/// Which operand the strategy overwrites in computation round `i`.
///
/// Following §4.3: if the MAC unit is occupied by the second MatMul
/// (`P_{i-1} V`, the case of Figure 2) the `V` tile is sacrificed; if it is
/// occupied by the first MatMul of the next round (`Q_{i+1} Kᵀ`, Figure 3)
/// the `K` tile is sacrificed. In the steady-state schedule of Algorithm 1
/// these alternate round by round, so the victim simply alternates with the
/// round parity.
#[must_use]
pub fn victim_for_round(round: usize) -> OverwriteVictim {
    if round.is_multiple_of(2) {
        OverwriteVictim::V
    } else {
        OverwriteVictim::K
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seq: usize) -> AttentionWorkload {
        AttentionWorkload::new("test", 1, 2, seq, 64)
    }

    #[test]
    fn small_workloads_are_fully_resident() {
        let w = workload(512);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 64, 128, &w);
        assert_eq!(residency_plan(&w, &t, &hw), ResidencyPlan::Resident);
    }

    #[test]
    fn medium_pressure_engages_overwrite() {
        // Choose a sequence length where 1 C block + K + V fits in 5 MB but
        // 2 C blocks + K + V does not (with Hh = 2 and Nq = 64):
        //   C block = 2*64*N*2 bytes, K+V resident = 2*2*N*64*2 bytes.
        // At N = 8192: C = 2.0 MiB, K+V = 4.0 MiB -> 1 block: 6.1 MiB > 5 MiB.
        // Use a larger L1 to place the boundary between the two regimes.
        let w = AttentionWorkload::new("long", 1, 2, 8192, 64);
        let t = Tiling::new(1, 2, 64, 512, &w);
        let mut hw = HardwareConfig::edge_default();
        hw.l1_bytes = 7 * 1024 * 1024;
        assert_eq!(residency_plan(&w, &t, &hw), ResidencyPlan::OverwriteKv);
    }

    #[test]
    fn extreme_pressure_streams_kv() {
        let w = AttentionWorkload::new("huge", 1, 8, 65536, 64);
        let t = Tiling::new(1, 8, 64, 1024, &w);
        let hw = HardwareConfig::edge_default();
        assert_eq!(residency_plan(&w, &t, &hw), ResidencyPlan::StreamKv);
    }

    #[test]
    fn plan_is_monotone_in_l1_size() {
        let w = AttentionWorkload::new("long", 1, 2, 8192, 64);
        let t = Tiling::new(1, 2, 64, 512, &w);
        let mut sizes_seen = Vec::new();
        for mib in [1usize, 4, 6, 8, 16, 64] {
            let mut hw = HardwareConfig::edge_default();
            hw.l1_bytes = mib * 1024 * 1024;
            sizes_seen.push(residency_plan(&w, &t, &hw));
        }
        // Once resident at some size, larger sizes must stay resident.
        let first_resident = sizes_seen
            .iter()
            .position(|p| *p == ResidencyPlan::Resident);
        if let Some(idx) = first_resident {
            assert!(sizes_seen[idx..]
                .iter()
                .all(|p| *p == ResidencyPlan::Resident));
        }
        // The smallest L1 must not be the resident plan.
        assert_ne!(sizes_seen[0], ResidencyPlan::Resident);
    }

    #[test]
    fn victims_alternate_with_round_parity() {
        assert_eq!(victim_for_round(0), OverwriteVictim::V);
        assert_eq!(victim_for_round(1), OverwriteVictim::K);
        assert_eq!(victim_for_round(2), OverwriteVictim::V);
        assert_eq!(OverwriteVictim::V.name(), "V");
        assert_eq!(OverwriteVictim::K.name(), "K");
    }
}
