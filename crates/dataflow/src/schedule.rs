//! Schedule construction: shared infrastructure and the public entry point.
//!
//! Every dataflow builder produces a [`Schedule`]: the [`TaskGraph`] to be
//! simulated plus [`BuildStats`] describing structural properties of the
//! schedule (rounds, proactive-overwrite events, reload traffic). The
//! builders share the [`Emitter`] helper, which wraps task emission, and the
//! [`ChunkPlan`], which captures the per-`(B_b, H_h)`-chunk decisions (which
//! core runs the chunk, whether `K`/`V` stay resident in L1, whether the
//! overwrite strategy engages).

use serde::{Deserialize, Serialize};

use mas_sim::task::{Resource, TaskId, TaskKind};
use mas_sim::{HardwareConfig, Result, TaskGraph};

use crate::footprint::{footprint, resident_kv_bytes};
use crate::kind::DataflowKind;
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Structural statistics recorded while building a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildStats {
    /// The dataflow that was built.
    pub kind: DataflowKind,
    /// The tiling used.
    pub tiling: Tiling,
    /// Total computation rounds across all `(B_b, H_h)` chunks.
    pub rounds: usize,
    /// Number of proactive buffer-overwrite events (§4.3).
    pub overwrite_events: usize,
    /// Extra DRAM read bytes caused by reloading overwritten `K`/`V` tiles.
    pub reload_bytes: u64,
    /// Extra MAC operations spent redoing interrupted MatMul sub-tiles.
    pub redo_mac_ops: u64,
    /// Whether the whole `K`/`V` of a chunk stays resident in L1 across its
    /// query blocks (removes per-round re-streaming).
    pub kv_resident: bool,
    /// Estimated L1 working-set high-water mark in bytes.
    pub l1_high_water_bytes: usize,
}

/// A built schedule: task graph plus construction statistics.
#[derive(Debug, Clone)]
pub struct Schedule {
    graph: TaskGraph,
    stats: BuildStats,
}

impl Schedule {
    /// Creates a schedule from its parts (used by the builders).
    #[must_use]
    pub fn new(graph: TaskGraph, stats: BuildStats) -> Self {
        Self { graph, stats }
    }

    /// The task graph to simulate.
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Construction statistics.
    #[must_use]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Decomposes the schedule into its parts.
    #[must_use]
    pub fn into_parts(self) -> (TaskGraph, BuildStats) {
        (self.graph, self.stats)
    }
}

/// Builds the task graph of `kind` for `workload` under `tiling` on `hw`.
///
/// # Errors
///
/// Returns a [`mas_sim::SimError`] if the hardware configuration is invalid
/// or the resulting graph fails validation.
pub fn build_dataflow(
    kind: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Result<Schedule> {
    hw.validate()?;
    let schedule = match kind {
        DataflowKind::LayerWise => crate::layerwise::build(workload, tiling, hw),
        DataflowKind::SoftPipe => crate::softpipe::build(workload, tiling, hw),
        DataflowKind::Flat => crate::flat::build(workload, tiling, hw),
        DataflowKind::TileFlow => crate::tileflow::build(workload, tiling, hw),
        DataflowKind::FuseMax => crate::fusemax::build(workload, tiling, hw),
        DataflowKind::MasAttention => crate::mas::build(workload, tiling, hw),
    };
    schedule.graph.validate()?;
    Ok(schedule)
}

/// Task-emission helper shared by the dataflow builders.
#[derive(Debug)]
pub(crate) struct Emitter {
    graph: TaskGraph,
}

impl Emitter {
    pub(crate) fn new() -> Self {
        Self {
            graph: TaskGraph::new(),
        }
    }

    pub(crate) fn into_graph(self) -> TaskGraph {
        self.graph
    }

    /// DRAM → L1 load on the inbound DMA channel.
    pub(crate) fn load(
        &mut self,
        label: impl Into<String>,
        bytes: usize,
        deps: &[TaskId],
    ) -> TaskId {
        self.graph
            .add_task(label, Resource::DmaIn, TaskKind::DramLoad { bytes }, deps)
    }

    /// L1 → DRAM store on the outbound DMA channel.
    pub(crate) fn store(
        &mut self,
        label: impl Into<String>,
        bytes: usize,
        deps: &[TaskId],
    ) -> TaskId {
        self.graph
            .add_task(label, Resource::DmaOut, TaskKind::DramStore { bytes }, deps)
    }

    /// Tiled MatMul on a core's MAC unit.
    pub(crate) fn matmul(
        &mut self,
        label: impl Into<String>,
        core: usize,
        m: usize,
        k: usize,
        n: usize,
        deps: &[TaskId],
    ) -> TaskId {
        self.graph.add_task(
            label,
            Resource::Mac { core },
            TaskKind::MatMul { m, k, n },
            deps,
        )
    }

    /// Row-wise softmax tile on a core's VEC unit.
    pub(crate) fn softmax(
        &mut self,
        label: impl Into<String>,
        core: usize,
        rows: usize,
        cols: usize,
        deps: &[TaskId],
    ) -> TaskId {
        self.graph.add_task(
            label,
            Resource::Vec { core },
            TaskKind::Softmax { rows, cols },
            deps,
        )
    }

    /// Generic element-wise pass on a core's VEC unit.
    pub(crate) fn vec_op(
        &mut self,
        label: impl Into<String>,
        core: usize,
        elements: usize,
        passes: usize,
        deps: &[TaskId],
    ) -> TaskId {
        self.graph.add_task(
            label,
            Resource::Vec { core },
            TaskKind::VecOp { elements, passes },
            deps,
        )
    }

    /// Zero-duration synchronization point on a core's MAC unit.
    pub(crate) fn barrier(
        &mut self,
        label: impl Into<String>,
        core: usize,
        deps: &[TaskId],
    ) -> TaskId {
        self.graph
            .add_task(label, Resource::Mac { core }, TaskKind::Barrier, deps)
    }
}

/// Emits the resident `K`/`V` prefetch loads for every chunk up front (so
/// that the shared DMA channel serves all cores before the per-round `Q`
/// streams begin), returning `(K, V)` load task ids per chunk. Returns
/// `None` pairs when `kv_resident` is false.
pub(crate) fn preload_resident_kv(
    em: &mut Emitter,
    plans: &[ChunkPlan],
    workload: &AttentionWorkload,
    hw: &HardwareConfig,
    kv_resident: bool,
) -> Vec<(Option<TaskId>, Option<TaskId>)> {
    if !kv_resident {
        return vec![(None, None); plans.len()];
    }
    let eb = hw.element_bytes;
    plans
        .iter()
        .map(|plan| {
            let bytes = plan.slices * workload.seq_len * workload.embed * eb;
            let k = em.load(format!("c{}: load K (resident)", plan.index), bytes, &[]);
            let v = em.load(format!("c{}: load V (resident)", plan.index), bytes, &[]);
            (Some(k), Some(v))
        })
        .collect()
}

/// Per-`(B_b, H_h)`-chunk planning shared by the builders.
#[derive(Debug, Clone)]
pub(crate) struct ChunkPlan {
    /// Index of the chunk (0-based).
    pub index: usize,
    /// Core assigned to the chunk (chunks are distributed round-robin).
    pub core: usize,
    /// `(batch, head)` slices processed together in this chunk's rounds.
    pub slices: usize,
    /// Query row-blocks (rounds) within this chunk.
    pub query_blocks: usize,
    /// Key/value sub-tiles per round.
    pub kv_tiles: usize,
    /// Rows of the last (possibly ragged) query block.
    pub last_q_rows: usize,
    /// Columns of the last (possibly ragged) key/value sub-tile.
    pub last_kv_cols: usize,
}

impl ChunkPlan {
    /// Effective number of query rows in round `i` (before multiplying by the
    /// number of slices in the chunk).
    pub(crate) fn q_rows(&self, workload: &AttentionWorkload, tiling: &Tiling, i: usize) -> usize {
        if i + 1 == self.query_blocks {
            self.last_q_rows
        } else {
            tiling.n_q.min(workload.seq_len)
        }
    }

    /// Effective number of key/value rows in sub-tile `j`.
    pub(crate) fn kv_cols(&self, workload: &AttentionWorkload, tiling: &Tiling, j: usize) -> usize {
        if j + 1 == self.kv_tiles {
            self.last_kv_cols
        } else {
            tiling.n_kv.min(workload.seq_len)
        }
    }
}

/// Enumerates the `(B_b, H_h)` chunks of a workload, assigning them to cores
/// round-robin.
pub(crate) fn plan_chunks(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Vec<ChunkPlan> {
    let chunks = tiling.slice_chunks(workload);
    let query_blocks = tiling.query_blocks(workload);
    let kv_tiles = tiling.kv_tiles(workload);
    let last_q_rows = workload.seq_len - (query_blocks - 1) * tiling.n_q.min(workload.seq_len);
    let last_kv_cols = workload.seq_len - (kv_tiles - 1) * tiling.n_kv.min(workload.seq_len);
    (0..chunks)
        .map(|index| ChunkPlan {
            index,
            core: index % hw.cores,
            slices: tiling.slices_per_round(),
            query_blocks,
            kv_tiles,
            last_q_rows,
            last_kv_cols,
        })
        .collect()
}

/// Decides whether the whole `K`/`V` of one chunk can stay resident in L1
/// together with the method's per-round working set.
pub(crate) fn kv_can_stay_resident(
    kind: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> bool {
    let base = footprint(kind, workload, tiling, hw.element_bytes);
    let resident = resident_kv_bytes(workload, tiling, hw.element_bytes);
    // The streamed K/V double-buffer is replaced by full residency.
    let total = base.total_bytes() - base.kv_bytes + resident;
    total <= hw.l1_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn plan_chunks_distributes_round_robin() {
        let w = bert();
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 64, 128, &w);
        let plans = plan_chunks(&w, &t, &hw);
        assert_eq!(plans.len(), 12);
        assert_eq!(plans[0].core, 0);
        assert_eq!(plans[1].core, 1);
        assert_eq!(plans[2].core, 0);
        assert_eq!(plans[0].query_blocks, 8);
        assert_eq!(plans[0].kv_tiles, 4);
        assert_eq!(plans[0].last_q_rows, 64);
        assert_eq!(plans[0].last_kv_cols, 128);
    }

    #[test]
    fn ragged_edges_are_tracked() {
        let w = AttentionWorkload::new("vit", 1, 2, 196, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 64, 64, &w);
        let plans = plan_chunks(&w, &t, &hw);
        assert_eq!(plans[0].query_blocks, 4);
        assert_eq!(plans[0].last_q_rows, 4);
        assert_eq!(plans[0].q_rows(&w, &t, 0), 64);
        assert_eq!(plans[0].q_rows(&w, &t, 3), 4);
        assert_eq!(plans[0].kv_cols(&w, &t, 3), 4);
    }

    #[test]
    fn kv_residency_depends_on_l1_size() {
        let w = bert();
        let t = Tiling::new(1, 1, 64, 128, &w);
        let hw = HardwareConfig::edge_default();
        assert!(kv_can_stay_resident(
            DataflowKind::MasAttention,
            &w,
            &t,
            &hw
        ));
        let mut small = hw.clone();
        small.l1_bytes = 64 * 1024;
        assert!(!kv_can_stay_resident(
            DataflowKind::MasAttention,
            &w,
            &t,
            &small
        ));
    }

    #[test]
    fn build_dataflow_produces_valid_graphs_for_all_kinds() {
        let w = AttentionWorkload::new("toy", 1, 2, 64, 32);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 16, 32, &w);
        for kind in DataflowKind::all() {
            let s = build_dataflow(kind, &w, &t, &hw).unwrap();
            assert!(!s.graph().is_empty(), "{kind} produced an empty graph");
            assert_eq!(s.stats().kind, kind);
            assert!(s.stats().rounds > 0);
        }
    }

    #[test]
    fn emitter_builds_connected_tasks() {
        let mut e = Emitter::new();
        let a = e.load("ld", 64, &[]);
        let b = e.matmul("mm", 0, 4, 4, 4, &[a]);
        let c = e.softmax("sm", 0, 4, 4, &[b]);
        let d = e.vec_op("rescale", 0, 16, 1, &[c]);
        let bar = e.barrier("sync", 0, &[d]);
        let st = e.store("st", 32, &[bar]);
        let g = e.into_graph();
        assert_eq!(g.len(), 6);
        g.validate().unwrap();
        assert_eq!(g.get(st).unwrap().deps, vec![bar]);
    }
}
