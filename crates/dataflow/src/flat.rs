//! FLAT (Kao et al., 2023) — row-granularity attention fusion.
//!
//! FLAT loads rows of `Q` into on-chip memory, computes the corresponding
//! rows of `C = QKᵀ`, applies softmax and the final `O = PV` on-chip and
//! writes only `O` back to DRAM. Intermediates never touch DRAM, but the
//! tiled MatMul and softmax operators execute **sequentially** within every
//! computation round: the MAC unit idles while the VEC unit runs softmax and
//! vice versa. This is the strongest published baseline in the paper and the
//! main comparison point of Tables 2–3.

use mas_sim::task::TaskId;
use mas_sim::HardwareConfig;

use crate::kind::DataflowKind;
use crate::schedule::{kv_can_stay_resident, plan_chunks, BuildStats, Emitter, Schedule};
use crate::tiling::Tiling;
use crate::workload::AttentionWorkload;

/// Builds the FLAT schedule.
pub(crate) fn build(
    workload: &AttentionWorkload,
    tiling: &Tiling,
    hw: &HardwareConfig,
) -> Schedule {
    let eb = hw.element_bytes;
    let mut em = Emitter::new();
    let plans = plan_chunks(workload, tiling, hw);
    let kv_resident = kv_can_stay_resident(DataflowKind::Flat, workload, tiling, hw);
    let mut rounds_total = 0usize;
    let embed = workload.embed;

    // Resident K/V: loaded once per chunk, prefetched for every chunk before
    // the per-round streams begin.
    let resident = crate::schedule::preload_resident_kv(&mut em, &plans, workload, hw, kv_resident);

    // FLAT executes one fused row-block kernel at a time on each core: the
    // strict round-to-round serialization extends across chunks mapped to the
    // same core (there is no cross-head overlap to hide the softmax behind).
    let mut core_gate: Vec<Option<TaskId>> = vec![None; hw.cores];

    for plan in &plans {
        let core = plan.core;
        let chunk = plan.index;
        let (k_resident, v_resident) = resident[plan.index];
        let mut round_gate: Option<TaskId> = core_gate[core];

        for i in 0..plan.query_blocks {
            rounds_total += 1;
            let q_rows = plan.q_rows(workload, tiling, i);
            let rows = q_rows * plan.slices;
            let q_bytes = plan.slices * q_rows * embed * eb;
            let load_q = em.load(format!("c{chunk} r{i}: load Q_{i}"), q_bytes, &[]);

            // Algorithm-2-style sweep over K sub-tiles.
            let mut qk_tasks = Vec::with_capacity(plan.kv_tiles);
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                let mut deps = vec![load_q];
                if let Some(k) = k_resident {
                    deps.push(k);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(format!("c{chunk} r{i}: load K_{j}"), bytes, &[]));
                }
                if let Some(gate) = round_gate {
                    deps.push(gate);
                }
                qk_tasks.push(em.matmul(
                    format!("c{chunk} r{i}: C_{i},{j} = Q_{i} K_{j}^T"),
                    core,
                    rows,
                    embed,
                    kv_cols,
                    &deps,
                ));
            }

            // Softmax over the full row block (Algorithm 3), strictly after
            // the first MatMul.
            let sm = em.softmax(
                format!("c{chunk} r{i}: P_{i} = softmax(C_{i})"),
                core,
                rows,
                workload.seq_len,
                &qk_tasks,
            );

            // Algorithm-4-style sweep over V sub-tiles, strictly after softmax.
            let mut pv_tasks = Vec::with_capacity(plan.kv_tiles);
            for j in 0..plan.kv_tiles {
                let kv_cols = plan.kv_cols(workload, tiling, j);
                let mut deps = vec![sm];
                if let Some(v) = v_resident {
                    deps.push(v);
                } else {
                    let bytes = plan.slices * kv_cols * embed * eb;
                    deps.push(em.load(format!("c{chunk} r{i}: load V_{j}"), bytes, &[]));
                }
                pv_tasks.push(em.matmul(
                    format!("c{chunk} r{i}: O_{i} += P_{i},{j} V_{j}"),
                    core,
                    rows,
                    kv_cols,
                    embed,
                    &deps,
                ));
            }
            let o_bytes = plan.slices * q_rows * embed * eb;
            em.store(format!("c{chunk} r{i}: store O_{i}"), o_bytes, &pv_tasks);
            round_gate = pv_tasks.last().copied();
        }
        core_gate[core] = round_gate;
    }

    let stats = BuildStats {
        kind: DataflowKind::Flat,
        tiling: *tiling,
        rounds: rounds_total,
        overwrite_events: 0,
        reload_bytes: 0,
        redo_mac_ops: 0,
        kv_resident,
        l1_high_water_bytes: crate::footprint::footprint(DataflowKind::Flat, workload, tiling, eb)
            .total_bytes(),
    };
    Schedule::new(em.into_graph(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_sim::task::Resource;
    use mas_sim::{EnergyModel, Executor};

    fn toy() -> (AttentionWorkload, HardwareConfig, Tiling) {
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, 32, 64, &w);
        (w, hw, t)
    }

    #[test]
    fn graph_is_valid_and_covers_all_work() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        s.graph().validate().unwrap();
        assert_eq!(s.graph().total_mac_ops(), w.total_mac_ops());
        assert_eq!(s.stats().rounds, t.rounds(&w));
        assert!(s.stats().kv_resident);
        // Only the attention output is written to DRAM.
        assert_eq!(
            s.graph().dram_write_bytes(),
            w.operand_bytes(hw.element_bytes)
        );
    }

    #[test]
    fn mac_and_vec_do_not_overlap() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        let report = Executor::new(hw, EnergyModel::edge_16nm())
            .run(s.graph())
            .unwrap();
        // FLAT serializes MAC and VEC: overlap is negligible (only across
        // chunks that run on different cores, which do not share units).
        let trace = report.trace.as_ref().unwrap();
        let same_core_overlap =
            trace.overlap_cycles(Resource::Mac { core: 0 }, Resource::Vec { core: 0 });
        assert_eq!(
            same_core_overlap, 0,
            "FLAT must not overlap MAC and VEC on a core"
        );
    }

    #[test]
    fn dram_reads_are_minimal_when_kv_resident() {
        let (w, hw, t) = toy();
        let s = build(&w, &t, &hw);
        // Q + K + V read exactly once.
        assert_eq!(
            s.graph().dram_read_bytes(),
            3 * w.operand_bytes(hw.element_bytes)
        );
    }

    #[test]
    fn streaming_kv_increases_reads() {
        let (w, _, t) = toy();
        let mut small = HardwareConfig::edge_default();
        small.l1_bytes = 40 * 1024;
        let s = build(&w, &t, &small);
        assert!(!s.stats().kv_resident);
        assert!(s.graph().dram_read_bytes() > 3 * w.operand_bytes(small.element_bytes));
    }
}
