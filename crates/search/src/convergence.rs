//! Convergence histories (best-so-far cost versus search effort).
//!
//! Figure 7 of the paper plots execution cycles against search time for each
//! method under GA and MCTS. Every search algorithm in this crate records a
//! [`ConvergenceHistory`] so the figure can be regenerated, and §5.5's
//! "cycle improvement" factors (naive → tuned) can be computed.

use serde::{Deserialize, Serialize};

/// One sample of a search's progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Search iteration at which the sample was taken (1-based).
    pub iteration: usize,
    /// Cumulative number of simulator evaluations performed.
    pub evaluations: usize,
    /// Best objective value found so far (cycles for the latency objective).
    pub best_objective: f64,
}

/// Best-so-far trajectory of one search run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceHistory {
    points: Vec<ConvergencePoint>,
}

impl ConvergenceHistory {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample. Only improvements and the first sample are stored
    /// (the trajectory is a non-increasing step function, so intermediate
    /// equal values carry no information).
    pub fn record(&mut self, iteration: usize, evaluations: usize, best_objective: f64) {
        let improved = self
            .points
            .last()
            .is_none_or(|last| best_objective < last.best_objective);
        if improved {
            self.points.push(ConvergencePoint {
                iteration,
                evaluations,
                best_objective,
            });
        }
    }

    /// All recorded samples, in iteration order.
    #[must_use]
    pub fn points(&self) -> &[ConvergencePoint] {
        &self.points
    }

    /// The final best objective value, if any sample was recorded.
    #[must_use]
    pub fn final_best(&self) -> Option<f64> {
        self.points.last().map(|p| p.best_objective)
    }

    /// The first (starting-point) objective value, if any.
    #[must_use]
    pub fn initial(&self) -> Option<f64> {
        self.points.first().map(|p| p.best_objective)
    }

    /// Improvement factor from the first to the last sample
    /// (`initial / final`), the quantity §5.5 reports (e.g. 64.5× for
    /// BERT-Base).
    #[must_use]
    pub fn improvement_factor(&self) -> Option<f64> {
        match (self.initial(), self.final_best()) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    /// Best-so-far value at a given iteration (step-function lookup).
    #[must_use]
    pub fn best_at(&self, iteration: usize) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.iteration <= iteration)
            .last()
            .map(|p| p.best_objective)
    }

    /// Merges another history that continues this one (e.g. the GA phase
    /// appended after the MCTS phase), shifting its iteration numbers.
    pub fn extend_from(&mut self, other: &ConvergenceHistory) {
        let offset_iter = self.points.last().map_or(0, |p| p.iteration);
        let offset_eval = self.points.last().map_or(0, |p| p.evaluations);
        for p in other.points() {
            self.record(
                p.iteration + offset_iter,
                p.evaluations + offset_eval,
                p.best_objective,
            );
        }
    }

    /// Downsamples the trajectory to at most `max_points` samples for
    /// plotting (Figure 7 "proportionally reduces the number of plotted
    /// lines").
    #[must_use]
    pub fn downsample(&self, max_points: usize) -> Vec<ConvergencePoint> {
        if self.points.len() <= max_points || max_points == 0 {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / max_points as f64;
        let mut out = Vec::with_capacity(max_points);
        for i in 0..max_points {
            out.push(self.points[(i as f64 * step) as usize]);
        }
        if let Some(last) = self.points.last() {
            if out.last() != Some(last) {
                out.push(*last);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_improvements() {
        let mut h = ConvergenceHistory::new();
        h.record(1, 1, 100.0);
        h.record(2, 2, 100.0);
        h.record(3, 3, 80.0);
        h.record(4, 4, 90.0);
        h.record(5, 5, 50.0);
        assert_eq!(h.points().len(), 3);
        assert_eq!(h.final_best(), Some(50.0));
        assert_eq!(h.initial(), Some(100.0));
        assert_eq!(h.improvement_factor(), Some(2.0));
    }

    #[test]
    fn best_at_is_a_step_function() {
        let mut h = ConvergenceHistory::new();
        h.record(1, 1, 100.0);
        h.record(10, 10, 40.0);
        assert_eq!(h.best_at(5), Some(100.0));
        assert_eq!(h.best_at(10), Some(40.0));
        assert_eq!(h.best_at(0), None);
    }

    #[test]
    fn extend_shifts_iterations() {
        let mut a = ConvergenceHistory::new();
        a.record(1, 1, 100.0);
        a.record(5, 5, 60.0);
        let mut b = ConvergenceHistory::new();
        b.record(1, 1, 55.0);
        b.record(3, 3, 50.0);
        a.extend_from(&b);
        assert_eq!(a.final_best(), Some(50.0));
        assert_eq!(a.points().last().unwrap().iteration, 8);
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let mut h = ConvergenceHistory::new();
        for i in 0..100 {
            h.record(i + 1, i + 1, 1000.0 - i as f64 * 10.0);
        }
        let d = h.downsample(10);
        assert!(d.len() <= 11);
        assert_eq!(d.first().unwrap().best_objective, 1000.0);
        assert_eq!(d.last().unwrap().best_objective, h.final_best().unwrap());
        // Empty and small histories pass through unchanged.
        assert_eq!(ConvergenceHistory::new().downsample(5).len(), 0);
    }
}
