//! Search space of tiling factors.
//!
//! Candidate values follow the paper's multi-tiered scheme: the batch and
//! head chunks take divisors of `B` and `H`; the query row-block `N_Q` takes
//! multiples of the softmax row granularity (powers of two up to the sequence
//! length, since softmax is row-wise); the key/value sub-tile `N_{K,V}` takes
//! multiples of the MAC array width. The space is the cartesian product of
//! the four axes.

use serde::{Deserialize, Serialize};

use mas_dataflow::{AttentionWorkload, Tiling};
use mas_sim::HardwareConfig;
use rand::Rng;

/// Candidate values for each tiling dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidates for the batch chunk `B_b`.
    pub b_b: Vec<usize>,
    /// Candidates for the head chunk `H_h`.
    pub h_h: Vec<usize>,
    /// Candidates for the query row-block `N_Q`.
    pub n_q: Vec<usize>,
    /// Candidates for the key/value sub-tile `N_{K,V}`.
    pub n_kv: Vec<usize>,
}

/// Returns every divisor of `n`, in increasing order.
fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for d in 1..=n {
        if n.is_multiple_of(d) {
            out.push(d);
        }
    }
    out
}

/// Powers of two in `[lo, hi]`, plus `hi` itself, deduplicated and sorted.
fn pow2_candidates(lo: usize, hi: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut v = lo.max(1);
    while v < hi {
        out.push(v);
        v *= 2;
    }
    out.push(hi);
    out.dedup();
    out
}

impl SearchSpace {
    /// Builds the search space for one workload on one device.
    #[must_use]
    pub fn for_workload(workload: &AttentionWorkload, hw: &HardwareConfig) -> Self {
        let n = workload.seq_len;
        Self {
            b_b: divisors(workload.batch),
            h_h: divisors(workload.heads),
            n_q: pow2_candidates(hw.mac_array_rows.min(n), n),
            n_kv: pow2_candidates(hw.mac_array_cols.min(n), n),
        }
    }

    /// Number of points in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.b_b.len() * self.h_h.len() * self.n_q.len() * self.n_kv.len()
    }

    /// Whether the space is empty (never the case for valid workloads).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The candidate lists per dimension, in decision order
    /// (`B_b`, `H_h`, `N_Q`, `N_{K,V}`).
    #[must_use]
    pub fn axes(&self) -> [&[usize]; 4] {
        [&self.b_b, &self.h_h, &self.n_q, &self.n_kv]
    }

    /// The `index`-th point of the space in row-major order over the axes.
    #[must_use]
    pub fn point(&self, index: usize, workload: &AttentionWorkload) -> Option<Tiling> {
        if index >= self.len() {
            return None;
        }
        let mut rest = index;
        let n_kv = self.n_kv[rest % self.n_kv.len()];
        rest /= self.n_kv.len();
        let n_q = self.n_q[rest % self.n_q.len()];
        rest /= self.n_q.len();
        let h_h = self.h_h[rest % self.h_h.len()];
        rest /= self.h_h.len();
        let b_b = self.b_b[rest % self.b_b.len()];
        Some(Tiling::new(b_b, h_h, n_q, n_kv, workload))
    }

    /// Iterates over every tiling in the space.
    pub fn iter<'a>(
        &'a self,
        workload: &'a AttentionWorkload,
    ) -> impl Iterator<Item = Tiling> + 'a {
        (0..self.len()).filter_map(move |i| self.point(i, workload))
    }

    /// Draws a uniformly random tiling from the space.
    pub fn sample<R: Rng>(&self, rng: &mut R, workload: &AttentionWorkload) -> Tiling {
        let index = rng.gen_range(0..self.len());
        self.point(index, workload)
            .expect("sampled index is within the space")
    }

    /// Returns a neighbouring tiling: one randomly chosen dimension moves to
    /// an adjacent candidate value (used by the genetic mutation operator).
    pub fn neighbour<R: Rng>(
        &self,
        tiling: &Tiling,
        rng: &mut R,
        workload: &AttentionWorkload,
    ) -> Tiling {
        let axis = rng.gen_range(0..4usize);
        let (values, current): (&[usize], usize) = match axis {
            0 => (&self.b_b, tiling.b_b),
            1 => (&self.h_h, tiling.h_h),
            2 => (&self.n_q, tiling.n_q),
            _ => (&self.n_kv, tiling.n_kv),
        };
        let pos = values
            .iter()
            .position(|&v| v >= current)
            .unwrap_or(values.len() - 1);
        let new_pos = if pos == 0 {
            1.min(values.len() - 1)
        } else if pos + 1 >= values.len() || rng.gen_bool(0.5) {
            pos - 1
        } else {
            pos + 1
        };
        let value = values[new_pos];
        let mut t = *tiling;
        match axis {
            0 => t.b_b = value,
            1 => t.h_h = value,
            2 => t.n_q = value,
            _ => t.n_kv = value,
        }
        Tiling::new(t.b_b, t.h_h, t.n_q, t.n_kv, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bert() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn divisor_and_pow2_helpers() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(pow2_candidates(16, 512), vec![16, 32, 64, 128, 256, 512]);
        assert_eq!(pow2_candidates(16, 16), vec![16]);
    }

    #[test]
    fn space_covers_expected_candidates() {
        let w = bert();
        let hw = HardwareConfig::edge_default();
        let s = SearchSpace::for_workload(&w, &hw);
        assert_eq!(s.b_b, vec![1]);
        assert_eq!(s.h_h, vec![1, 2, 3, 4, 6, 12]);
        assert!(s.n_q.contains(&64));
        assert!(s.n_kv.contains(&512));
        assert_eq!(
            s.len(),
            s.b_b.len() * s.h_h.len() * s.n_q.len() * s.n_kv.len()
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn every_index_maps_to_a_distinct_point() {
        let w = bert();
        let hw = HardwareConfig::edge_default();
        let s = SearchSpace::for_workload(&w, &hw);
        let points: Vec<Tiling> = s.iter(&w).collect();
        assert_eq!(points.len(), s.len());
        for (i, a) in points.iter().enumerate() {
            for b in points.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate point in the space");
            }
        }
        assert!(s.point(s.len(), &w).is_none());
    }

    #[test]
    fn samples_come_from_the_space() {
        let w = bert();
        let hw = HardwareConfig::edge_default();
        let s = SearchSpace::for_workload(&w, &hw);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = s.sample(&mut rng, &w);
            assert!(s.h_h.contains(&t.h_h));
            assert!(s.n_q.contains(&t.n_q));
            assert!(s.n_kv.contains(&t.n_kv));
        }
    }

    #[test]
    fn neighbours_differ_in_at_most_one_axis() {
        let w = bert();
        let hw = HardwareConfig::edge_default();
        let s = SearchSpace::for_workload(&w, &hw);
        let mut rng = StdRng::seed_from_u64(9);
        let base = s.sample(&mut rng, &w);
        for _ in 0..20 {
            let n = s.neighbour(&base, &mut rng, &w);
            let diffs = [
                n.b_b != base.b_b,
                n.h_h != base.h_h,
                n.n_q != base.n_q,
                n.n_kv != base.n_kv,
            ]
            .iter()
            .filter(|&&d| d)
            .count();
            assert!(diffs <= 1);
        }
    }

    #[test]
    fn vit_sequence_is_covered_despite_not_being_a_power_of_two() {
        let w = AttentionWorkload::new("ViT-B/14", 1, 12, 196, 64);
        let hw = HardwareConfig::edge_default();
        let s = SearchSpace::for_workload(&w, &hw);
        assert!(
            s.n_q.contains(&196),
            "the full sequence must be a candidate"
        );
        assert!(s.n_kv.contains(&196));
    }
}
