//! Genetic-algorithm refinement.
//!
//! In the paper the genetic algorithm refines the mapping found by MCTS:
//! "GA generates a population of analysis trees, applies crossover and
//! mutation, and evaluates each tree using the tiling factors. Through
//! repeated iterations, the best analysis tree is selected as the optimal
//! fusion dataflow" (§4.2). In this reproduction the mapping is fully
//! described by the tiling vector (the compute ordering is fixed by each
//! dataflow builder), so the GA refines the tiling: individuals are tilings,
//! crossover mixes dimensions from two parents, and mutation moves one
//! dimension to a neighbouring candidate value. Every generation is scored
//! through [`CostModel::objective_batch`], which simulates the uncached
//! individuals in parallel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mas_dataflow::Tiling;

use crate::convergence::ConvergenceHistory;
use crate::cost::CostModel;
use crate::grid::SearchOutcome;
use crate::space::SearchSpace;

/// Genetic-algorithm configuration.
#[derive(Debug, Clone)]
pub struct GeneticSearch {
    /// Number of individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Number of top individuals carried over unchanged.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional seed individuals (e.g. the best tilings found by MCTS).
    pub seeds: Vec<Tiling>,
}

impl GeneticSearch {
    /// Creates a GA with sensible defaults for the given budget.
    #[must_use]
    pub fn new(population: usize, generations: usize, seed: u64) -> Self {
        Self {
            population: population.max(2),
            generations,
            mutation_rate: 0.3,
            elitism: 2,
            seed,
            seeds: Vec::new(),
        }
    }

    /// Adds seed individuals (kept in the initial population).
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<Tiling>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Runs the GA.
    pub fn run(&self, space: &SearchSpace, model: &mut CostModel) -> SearchOutcome {
        let workload = model.workload().clone();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initial population: seeds first, then random samples.
        let mut population: Vec<Tiling> = self.seeds.clone();
        while population.len() < self.population {
            population.push(space.sample(&mut rng, &workload));
        }

        let mut best: Option<Tiling> = None;
        let mut best_objective = f64::INFINITY;
        let mut history = ConvergenceHistory::new();
        let mut candidates = 0usize;

        for generation in 0..self.generations.max(1) {
            // Evaluate the whole generation as one batch: uncached
            // individuals are simulated in parallel before scoring.
            candidates += population.len();
            let values = model.objective_batch(&population);
            let mut scored: Vec<(Tiling, f64)> = population.iter().copied().zip(values).collect();
            scored.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("objective values are comparable")
            });
            if scored[0].1 < best_objective {
                best_objective = scored[0].1;
                best = Some(scored[0].0);
            }
            if best_objective.is_finite() {
                history.record(generation + 1, model.evaluations(), best_objective);
            }

            // Next generation: elitism + tournament selection with crossover
            // and mutation.
            let mut next: Vec<Tiling> = scored
                .iter()
                .take(self.elitism.min(scored.len()))
                .map(|(t, _)| *t)
                .collect();
            while next.len() < self.population {
                let parent_a = tournament(&scored, &mut rng);
                let parent_b = tournament(&scored, &mut rng);
                let mut child = crossover(&parent_a, &parent_b, &mut rng, &workload);
                if rng.gen_bool(self.mutation_rate) {
                    child = space.neighbour(&child, &mut rng, &workload);
                }
                next.push(child);
            }
            population = next;
        }

        SearchOutcome {
            best,
            best_objective,
            candidates,
            history,
        }
    }
}

/// Binary tournament selection (lower objective wins).
fn tournament<R: Rng>(scored: &[(Tiling, f64)], rng: &mut R) -> Tiling {
    let a = &scored[rng.gen_range(0..scored.len())];
    let b = &scored[rng.gen_range(0..scored.len())];
    if a.1 <= b.1 {
        a.0
    } else {
        b.0
    }
}

/// Uniform crossover: each tiling dimension comes from either parent.
fn crossover<R: Rng>(
    a: &Tiling,
    b: &Tiling,
    rng: &mut R,
    workload: &mas_dataflow::AttentionWorkload,
) -> Tiling {
    Tiling::new(
        if rng.gen_bool(0.5) { a.b_b } else { b.b_b },
        if rng.gen_bool(0.5) { a.h_h } else { b.h_h },
        if rng.gen_bool(0.5) { a.n_q } else { b.n_q },
        if rng.gen_bool(0.5) { a.n_kv } else { b.n_kv },
        workload,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objective;
    use mas_dataflow::{AttentionWorkload, DataflowKind};
    use mas_sim::HardwareConfig;

    fn setup() -> (SearchSpace, CostModel) {
        let w = AttentionWorkload::new("toy", 1, 2, 64, 32);
        let hw = HardwareConfig::edge_default();
        let space = SearchSpace::for_workload(&w, &hw);
        let model = CostModel::new(DataflowKind::MasAttention, w, hw, Objective::Latency);
        (space, model)
    }

    #[test]
    fn ga_is_reproducible() {
        let (space, mut model) = setup();
        let a = GeneticSearch::new(8, 5, 7).run(&space, &mut model);
        let b = GeneticSearch::new(8, 5, 7).run(&space, &mut model);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn ga_never_worsens_a_seed_individual() {
        let (space, mut model) = setup();
        let workload = model.workload().clone();
        let seed_tiling = Tiling::new(1, 1, 32, 32, &workload);
        let seed_value = model.objective_value(&seed_tiling);
        let outcome = GeneticSearch::new(8, 6, 3)
            .with_seeds(vec![seed_tiling])
            .run(&space, &mut model);
        assert!(outcome.best_objective <= seed_value);
    }

    #[test]
    fn ga_improves_over_random_initialization() {
        let (space, mut model) = setup();
        let outcome = GeneticSearch::new(10, 8, 11).run(&space, &mut model);
        assert!(outcome.best_objective.is_finite());
        assert!(outcome.history.improvement_factor().unwrap_or(1.0) >= 1.0);
        assert!(outcome.candidates >= 10 * 8);
    }

    #[test]
    fn crossover_takes_each_dimension_from_a_parent() {
        let w = AttentionWorkload::new("toy", 1, 4, 64, 32);
        let a = Tiling::new(1, 1, 16, 16, &w);
        let b = Tiling::new(1, 4, 64, 32, &w);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let c = crossover(&a, &b, &mut rng, &w);
            assert!(c.h_h == a.h_h || c.h_h == b.h_h);
            assert!(c.n_q == a.n_q || c.n_q == b.n_q);
            assert!(c.n_kv == a.n_kv || c.n_kv == b.n_kv);
        }
    }
}
