//! Exhaustive grid search.
//!
//! The paper uses grid search on the DaVinci NPU, "leveraging its
//! compatibility with the hardware's structured memory model" (§4.2): the
//! candidate space there is small enough to sweep completely. The same
//! implementation doubles as the exhaustive oracle against which the
//! heuristic searches are validated in tests.
//!
//! The sweep is evaluated in chunks through [`CostModel::evaluate_batch`], so
//! uncached candidates simulate in parallel while the best-so-far fold (and
//! therefore the convergence history) still walks the space in order.

use mas_dataflow::Tiling;

use crate::convergence::ConvergenceHistory;
use crate::cost::CostModel;
use crate::space::SearchSpace;

/// Result of one search run (shared by all algorithms in this crate).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best tiling found (`None` if no candidate was valid).
    pub best: Option<Tiling>,
    /// Objective value of the best tiling.
    pub best_objective: f64,
    /// Number of candidates considered.
    pub candidates: usize,
    /// Convergence trajectory.
    pub history: ConvergenceHistory,
}

/// Exhaustive sweep over the whole search space (optionally capped).
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Maximum number of candidates to evaluate (`usize::MAX` for no cap).
    pub max_candidates: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self {
            max_candidates: usize::MAX,
        }
    }
}

impl GridSearch {
    /// Creates an uncapped grid search.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a grid search that stops after `max_candidates` evaluations.
    #[must_use]
    pub fn with_cap(max_candidates: usize) -> Self {
        Self { max_candidates }
    }

    /// Candidates evaluated per [`CostModel::evaluate_batch`] call: enough to
    /// keep every worker thread busy without delaying the best-so-far fold.
    /// Convergence-history evaluation counts quantize to these boundaries —
    /// a parallel batch spends all its simulator evaluations before any
    /// best-so-far within the batch is known.
    const BATCH: usize = 64;

    /// Runs the sweep.
    pub fn run(&self, space: &SearchSpace, model: &mut CostModel) -> SearchOutcome {
        let workload = model.workload().clone();
        let mut best: Option<Tiling> = None;
        let mut best_objective = f64::INFINITY;
        let mut history = ConvergenceHistory::new();
        let mut candidates = 0usize;
        let sweep: Vec<Tiling> = space.iter(&workload).take(self.max_candidates).collect();
        for chunk in sweep.chunks(Self::BATCH) {
            let values = model.objective_batch(chunk);
            for (tiling, value) in chunk.iter().zip(values) {
                candidates += 1;
                if value < best_objective {
                    best_objective = value;
                    best = Some(*tiling);
                }
                if best_objective.is_finite() {
                    history.record(candidates, model.evaluations(), best_objective);
                }
            }
        }
        SearchOutcome {
            best,
            best_objective,
            candidates,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objective;
    use mas_dataflow::{AttentionWorkload, DataflowKind};
    use mas_sim::HardwareConfig;

    fn setup() -> (SearchSpace, CostModel) {
        let w = AttentionWorkload::new("toy", 1, 2, 64, 32);
        let hw = HardwareConfig::edge_default();
        let space = SearchSpace::for_workload(&w, &hw);
        let model = CostModel::new(DataflowKind::MasAttention, w, hw, Objective::Latency);
        (space, model)
    }

    #[test]
    fn grid_search_finds_the_global_optimum() {
        let (space, mut model) = setup();
        let outcome = GridSearch::new().run(&space, &mut model);
        let best = outcome.best.expect("at least one valid tiling");
        // Verify optimality by re-checking every candidate.
        let workload = model.workload().clone();
        for t in space.iter(&workload) {
            assert!(
                model.objective_value(&t) >= outcome.best_objective - 1e-9,
                "grid search missed a better candidate {t}"
            );
        }
        assert!(model.objective_value(&best) <= outcome.best_objective + 1e-9);
        assert_eq!(outcome.candidates, space.len());
    }

    #[test]
    fn cap_limits_the_number_of_candidates() {
        let (space, mut model) = setup();
        let outcome = GridSearch::with_cap(3).run(&space, &mut model);
        assert_eq!(outcome.candidates, 3);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let (space, mut model) = setup();
        let outcome = GridSearch::new().run(&space, &mut model);
        let points = outcome.history.points();
        assert!(!points.is_empty());
        for w in points.windows(2) {
            assert!(w[1].best_objective <= w[0].best_objective);
        }
    }
}
