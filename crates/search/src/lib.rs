//! # mas-search
//!
//! Offline tiling-factor search for attention dataflows (paper §4.2, §5.5).
//!
//! The paper tunes the L1-level tiling factors `(B_b, H_h, N_Q, N_{K,V})`
//! offline for every workload, method and hardware configuration, using
//! Monte-Carlo Tree Search to pick tiling factors, a Genetic Algorithm to
//! refine the resulting mappings, and Grid Search on the real NPU. This crate
//! implements those searches against the `mas-sim` cost model:
//!
//! * [`space::SearchSpace`] — enumerates the candidate factors per dimension,
//! * [`cost::CostModel`] — builds the dataflow for a candidate tiling and
//!   simulates it, returning cycles and energy (with caching); whole
//!   candidate batches — a GA generation, a grid-sweep chunk, an MCTS
//!   rollout batch — evaluate in parallel through
//!   [`cost::CostModel::evaluate_batch`] with bit-identical results to the
//!   serial path,
//! * [`grid::GridSearch`], [`random::RandomSearch`] — exhaustive/sampling
//!   baselines,
//! * [`mcts::MctsSearch`] — UCB-guided tree search over the per-dimension
//!   tiling decisions,
//! * [`genetic::GeneticSearch`] — population-based refinement,
//! * [`tuner::AutoTuner`] — the combined MCTS + GA pipeline used for the
//!   simulated-device experiments, recording the convergence history that
//!   Figure 7 plots.
//!
//! ## Example
//!
//! ```
//! use mas_dataflow::{AttentionWorkload, DataflowKind};
//! use mas_search::tuner::{AutoTuner, TunerConfig};
//! use mas_sim::HardwareConfig;
//!
//! let hw = HardwareConfig::edge_default();
//! let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
//! let mut tuner = AutoTuner::new(TunerConfig::quick(), 42);
//! let result = tuner.tune(DataflowKind::MasAttention, &w, &hw).unwrap();
//! assert!(result.best_cost.cycles > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod convergence;
pub mod cost;
pub mod genetic;
pub mod grid;
pub mod mcts;
pub mod random;
pub mod space;
pub mod tuner;

pub use convergence::{ConvergenceHistory, ConvergencePoint};
pub use cost::{Cost, CostModel, Objective};
pub use space::SearchSpace;
pub use tuner::{AutoTuner, TunerConfig, TuningResult};
