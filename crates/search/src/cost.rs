//! Simulator-backed cost evaluation of candidate tilings.
//!
//! Each candidate tiling is lowered to the method's task graph
//! (`mas-dataflow`) and simulated (`mas-sim`), exactly as the paper evaluates
//! each MCTS/GA candidate with Timeloop/Accelergy. Evaluations are cached so
//! the search algorithms can revisit points for free, and invalid tilings
//! (working set exceeding L1) are rejected up front.
//!
//! Simulating one candidate is a pure function of `(method, workload,
//! hardware, tiling)`, so a batch of uncached candidates — a GA generation, a
//! grid-sweep chunk, an MCTS rollout batch — fans out across threads through
//! [`CostModel::evaluate_batch`] before the results are merged into the
//! cache. Parallel and serial batch evaluation produce bit-identical results.

use std::collections::{HashMap, HashSet};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use mas_dataflow::footprint::tiling_fits;
use mas_dataflow::{build_dataflow, AttentionWorkload, DataflowKind, Tiling};
use mas_sim::{EnergyModel, Executor, HardwareConfig};

/// Optimization objective of the search.
///
/// The paper's search minimizes latency ("our objective in the search
/// framework was to minimize latency rather than energy", §5.3); the other
/// objectives are provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Minimize execution cycles.
    #[default]
    Latency,
    /// Minimize total energy.
    Energy,
    /// Minimize the energy-delay product.
    EnergyDelay,
}

/// Cost of one evaluated tiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cost {
    /// Simulated execution cycles.
    pub cycles: u64,
    /// Simulated total energy in picojoules.
    pub energy_pj: f64,
}

impl Cost {
    /// Scalar value of this cost under the given objective (lower is better).
    #[must_use]
    pub fn scalar(&self, objective: Objective) -> f64 {
        match objective {
            Objective::Latency => self.cycles as f64,
            Objective::Energy => self.energy_pj,
            Objective::EnergyDelay => self.energy_pj * self.cycles as f64,
        }
    }
}

/// Evaluates tilings for one `(method, workload, hardware)` triple.
#[derive(Debug)]
pub struct CostModel {
    kind: DataflowKind,
    workload: AttentionWorkload,
    hw: HardwareConfig,
    executor: Executor,
    objective: Objective,
    cache: HashMap<Tiling, Option<Cost>>,
    evaluations: usize,
    parallel: bool,
}

impl CostModel {
    /// Creates a cost model with the default energy model.
    #[must_use]
    pub fn new(
        kind: DataflowKind,
        workload: AttentionWorkload,
        hw: HardwareConfig,
        objective: Objective,
    ) -> Self {
        let executor = Executor::new(hw.clone(), EnergyModel::edge_16nm()).without_trace();
        Self {
            kind,
            workload,
            hw,
            executor,
            objective,
            cache: HashMap::new(),
            evaluations: 0,
            parallel: true,
        }
    }

    /// Enables or disables thread-parallel batch evaluation (enabled by
    /// default). Parallel and serial evaluation are bit-identical; the serial
    /// path exists for baseline benchmarking and determinism tests.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Whether batch evaluation fans out across threads.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The method being tuned.
    #[must_use]
    pub fn kind(&self) -> DataflowKind {
        self.kind
    }

    /// The workload being tuned.
    #[must_use]
    pub fn workload(&self) -> &AttentionWorkload {
        &self.workload
    }

    /// The hardware configuration used for evaluation.
    #[must_use]
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// The optimization objective.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Number of *simulated* (non-cached) evaluations so far.
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Whether a tiling's working set fits the device L1 for this method.
    #[must_use]
    pub fn is_valid(&self, tiling: &Tiling) -> bool {
        tiling_fits(self.kind, &self.workload, tiling, &self.hw)
    }

    /// Exports the evaluation cache as a deterministically ordered list of
    /// `(tiling, cost)` pairs (`None` = invalid candidate), so whole tuning
    /// jobs can be sharded across processes and their result caches merged
    /// (the Figure 7-style sweep scale-out). This is the *candidate-level*
    /// cache of one `(method, workload, hardware)` tuning job — the
    /// complement of `mas-serve`'s `ScheduleCache`, which memoizes only the
    /// final best plan per key.
    #[must_use]
    pub fn export_cache(&self) -> Vec<(Tiling, Option<Cost>)> {
        let mut entries: Vec<(Tiling, Option<Cost>)> =
            self.cache.iter().map(|(t, c)| (*t, *c)).collect();
        entries.sort_by_key(|(t, _)| (t.b_b, t.h_h, t.n_q, t.n_kv));
        entries
    }

    /// Pre-seeds the evaluation cache with previously exported entries.
    ///
    /// Because each cost is a pure function of `(method, workload, hardware,
    /// tiling)`, importing entries produced by *the same* triple changes
    /// nothing but the number of simulations spent: a warm-started search
    /// follows the identical trajectory while answering repeated candidates
    /// from the cache. Imported entries do not count as evaluations.
    pub fn import_cache(&mut self, entries: impl IntoIterator<Item = (Tiling, Option<Cost>)>) {
        for (tiling, cost) in entries {
            self.cache.entry(tiling).or_insert(cost);
        }
    }

    /// Number of cached `(tiling, cost)` entries (evaluated or imported).
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// Simulates one tiling without touching the cache or counters: the pure
    /// function each batch fans out over.
    fn simulate(&self, tiling: &Tiling) -> Option<Cost> {
        if !self.is_valid(tiling) {
            return None;
        }
        let schedule = build_dataflow(self.kind, &self.workload, tiling, &self.hw).ok()?;
        let report = self.executor.run(schedule.graph()).ok()?;
        Some(Cost {
            cycles: report.total_cycles,
            energy_pj: report.total_energy_pj(),
        })
    }

    /// Evaluates a tiling, returning `None` for invalid (L1-overflowing)
    /// candidates. Results are cached.
    pub fn evaluate(&mut self, tiling: &Tiling) -> Option<Cost> {
        if let Some(cached) = self.cache.get(tiling) {
            return *cached;
        }
        let result = self.simulate(tiling);
        if result.is_some() {
            self.evaluations += 1;
        }
        self.cache.insert(*tiling, result);
        result
    }

    /// Evaluates a whole candidate batch, returning one cost per input
    /// tiling in order.
    ///
    /// Cached candidates are answered from the cache; the unique uncached
    /// remainder is simulated — in parallel when [`CostModel::is_parallel`]
    /// — and merged into the cache afterwards. Because each simulation is a
    /// pure function of the tiling, the returned costs (and every subsequent
    /// query) are identical whichever path ran.
    pub fn evaluate_batch(&mut self, tilings: &[Tiling]) -> Vec<Option<Cost>> {
        let mut pending: Vec<Tiling> = Vec::new();
        let mut seen: HashSet<Tiling> = HashSet::new();
        for t in tilings {
            if !self.cache.contains_key(t) && seen.insert(*t) {
                pending.push(*t);
            }
        }
        let fresh: Vec<(Tiling, Option<Cost>)> = if self.parallel && pending.len() > 1 {
            let model = &*self;
            pending
                .into_par_iter()
                .map(|t| (t, model.simulate(&t)))
                .collect()
        } else {
            pending
                .into_iter()
                .map(|t| (t, self.simulate(&t)))
                .collect()
        };
        for (t, cost) in fresh {
            if cost.is_some() {
                self.evaluations += 1;
            }
            self.cache.insert(t, cost);
        }
        tilings
            .iter()
            .map(|t| *self.cache.get(t).expect("batch candidates are cached"))
            .collect()
    }

    /// Evaluates a tiling and reduces it to the scalar objective value
    /// (`f64::INFINITY` for invalid candidates).
    pub fn objective_value(&mut self, tiling: &Tiling) -> f64 {
        self.evaluate(tiling)
            .map_or(f64::INFINITY, |c| c.scalar(self.objective))
    }

    /// Batch counterpart of [`CostModel::objective_value`]: one scalar per
    /// input tiling, evaluated through [`CostModel::evaluate_batch`].
    pub fn objective_batch(&mut self, tilings: &[Tiling]) -> Vec<f64> {
        let objective = self.objective;
        self.evaluate_batch(tilings)
            .into_iter()
            .map(|cost| cost.map_or(f64::INFINITY, |c| c.scalar(objective)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(
            DataflowKind::MasAttention,
            AttentionWorkload::new("toy", 1, 2, 128, 64),
            HardwareConfig::edge_default(),
            Objective::Latency,
        )
    }

    #[test]
    fn evaluation_is_cached() {
        let mut m = model();
        let w = m.workload().clone();
        let t = Tiling::new(1, 1, 32, 64, &w);
        let a = m.evaluate(&t).unwrap();
        let evals = m.evaluations();
        let b = m.evaluate(&t).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            m.evaluations(),
            evals,
            "second evaluation must hit the cache"
        );
    }

    #[test]
    fn invalid_tilings_return_none_and_infinite_objective() {
        let mut m = CostModel::new(
            DataflowKind::TileFlow,
            AttentionWorkload::new("long", 1, 1, 65536, 64),
            HardwareConfig::edge_default(),
            Objective::Latency,
        );
        let w = m.workload().clone();
        // A full-sequence row block of a 64k-token sequence cannot fit 5 MB.
        let t = Tiling::new(1, 1, 1024, 1024, &w);
        assert!(!m.is_valid(&t));
        assert!(m.evaluate(&t).is_none());
        assert!(m.objective_value(&t).is_infinite());
    }

    #[test]
    fn evaluate_batch_matches_serial_evaluation_exactly() {
        let mut serial = model();
        let mut parallel = model();
        parallel.set_parallel(true);
        serial.set_parallel(false);
        let w = serial.workload().clone();
        // Mix of valid, invalid and duplicate candidates.
        let batch: Vec<Tiling> = vec![
            Tiling::new(1, 1, 32, 64, &w),
            Tiling::new(1, 2, 64, 128, &w),
            Tiling::new(1, 1, 32, 64, &w),
            Tiling::new(1, 1, 128, 128, &w),
            Tiling::naive(&w),
        ];
        let a = parallel.evaluate_batch(&batch);
        let b = serial.evaluate_batch(&batch);
        assert_eq!(a, b, "parallel and serial batches must be bit-identical");
        assert_eq!(parallel.evaluations(), serial.evaluations());
        // Element-wise agreement with the one-at-a-time path.
        let mut single = model();
        for (t, &batched) in batch.iter().zip(&a) {
            assert_eq!(single.evaluate(t), batched);
        }
    }

    #[test]
    fn evaluate_batch_merges_into_the_cache() {
        let mut m = model();
        let w = m.workload().clone();
        let batch = vec![Tiling::new(1, 1, 32, 64, &w), Tiling::new(1, 2, 64, 64, &w)];
        let first = m.evaluate_batch(&batch);
        let evals = m.evaluations();
        assert!(evals > 0);
        // Re-evaluating (batched or single) must hit the cache.
        let second = m.evaluate_batch(&batch);
        assert_eq!(first, second);
        assert_eq!(m.evaluations(), evals);
        assert_eq!(m.evaluate(&batch[0]), first[0]);
        assert_eq!(m.evaluations(), evals);
    }

    #[test]
    fn duplicate_candidates_are_simulated_once() {
        let mut m = model();
        let w = m.workload().clone();
        let t = Tiling::new(1, 1, 32, 64, &w);
        let results = m.evaluate_batch(&vec![t; 8]);
        assert_eq!(m.evaluations(), 1);
        assert!(results.iter().all(|r| *r == results[0]));
    }

    #[test]
    fn objective_batch_matches_objective_value() {
        let mut m = model();
        let w = m.workload().clone();
        let batch = vec![
            Tiling::new(1, 1, 32, 64, &w),
            Tiling::new(1, 2, 64, 128, &w),
            Tiling::naive(&w),
        ];
        let batched = m.objective_batch(&batch);
        let mut fresh = model();
        for (t, &v) in batch.iter().zip(&batched) {
            assert_eq!(fresh.objective_value(t), v);
        }
    }

    #[test]
    fn objectives_order_candidates_differently() {
        let c = Cost {
            cycles: 100,
            energy_pj: 5.0,
        };
        assert_eq!(c.scalar(Objective::Latency), 100.0);
        assert_eq!(c.scalar(Objective::Energy), 5.0);
        assert_eq!(c.scalar(Objective::EnergyDelay), 500.0);
    }

    #[test]
    fn better_tilings_have_lower_latency_than_naive() {
        let mut m = model();
        let w = m.workload().clone();
        let naive = Tiling::naive(&w);
        let good = Tiling::new(1, 1, 64, 128, &w);
        let naive_cost = m.objective_value(&naive);
        let good_cost = m.objective_value(&good);
        assert!(
            good_cost < naive_cost,
            "row-at-a-time tiling must be slower"
        );
    }
}
