//! Random search baseline.
//!
//! Uniform sampling from the search space. Not used by the paper itself, but
//! a standard baseline for validating that MCTS and the genetic algorithm
//! actually add value over blind sampling (used in the ablation benches).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::convergence::ConvergenceHistory;
use crate::cost::CostModel;
use crate::grid::SearchOutcome;
use crate::space::SearchSpace;

/// Uniform random sampling of tilings.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of samples to draw.
    pub samples: usize,
    /// RNG seed (searches are reproducible).
    pub seed: u64,
}

impl RandomSearch {
    /// Creates a random search with the given sample budget and seed.
    #[must_use]
    pub fn new(samples: usize, seed: u64) -> Self {
        Self { samples, seed }
    }

    /// Samples evaluated per [`CostModel::evaluate_batch`] call. Convergence
    /// history evaluation counts quantize to these boundaries: a parallel
    /// batch spends all its simulator evaluations before any best-so-far
    /// within the batch is known.
    const BATCH: usize = 64;

    /// Runs the search.
    ///
    /// All samples are drawn up front (the RNG stream is identical to the
    /// one-at-a-time formulation) and evaluated in batches through
    /// [`CostModel::evaluate_batch`], so uncached candidates simulate in
    /// parallel while the best-so-far fold still follows sample order.
    pub fn run(&self, space: &SearchSpace, model: &mut CostModel) -> SearchOutcome {
        let workload = model.workload().clone();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samples: Vec<_> = (0..self.samples)
            .map(|_| space.sample(&mut rng, &workload))
            .collect();
        let mut best = None;
        let mut best_objective = f64::INFINITY;
        let mut history = ConvergenceHistory::new();
        let mut i = 0usize;
        for chunk in samples.chunks(Self::BATCH) {
            let values = model.objective_batch(chunk);
            for (tiling, value) in chunk.iter().zip(values) {
                i += 1;
                if value < best_objective {
                    best_objective = value;
                    best = Some(*tiling);
                }
                if best_objective.is_finite() {
                    history.record(i, model.evaluations(), best_objective);
                }
            }
        }
        SearchOutcome {
            best,
            best_objective,
            candidates: self.samples,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objective;
    use mas_dataflow::{AttentionWorkload, DataflowKind, Tiling};
    use mas_sim::HardwareConfig;

    fn setup() -> (SearchSpace, CostModel) {
        let w = AttentionWorkload::new("toy", 1, 2, 64, 32);
        let hw = HardwareConfig::edge_default();
        let space = SearchSpace::for_workload(&w, &hw);
        let model = CostModel::new(DataflowKind::Flat, w, hw, Objective::Latency);
        (space, model)
    }

    #[test]
    fn random_search_is_reproducible() {
        let (space, mut model) = setup();
        let a = RandomSearch::new(20, 7).run(&space, &mut model);
        let b = RandomSearch::new(20, 7).run(&space, &mut model);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_objective, b.best_objective);
    }

    #[test]
    fn more_samples_never_hurt() {
        let (space, mut model) = setup();
        let small = RandomSearch::new(5, 11).run(&space, &mut model);
        let large = RandomSearch::new(50, 11).run(&space, &mut model);
        assert!(large.best_objective <= small.best_objective);
    }

    #[test]
    fn random_search_beats_the_naive_tiling() {
        let (space, mut model) = setup();
        let outcome = RandomSearch::new(30, 3).run(&space, &mut model);
        let workload = model.workload().clone();
        let naive = model.objective_value(&Tiling::naive(&workload));
        assert!(outcome.best_objective <= naive);
    }
}
