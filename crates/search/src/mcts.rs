//! Monte-Carlo Tree Search over tiling decisions.
//!
//! Following §4.2 of the paper: "At each step, MCTS selects a loop and
//! assigns a tiling factor ..., updating constraints and passing them to the
//! next untiled loop. Once all tiling factors are determined, a complete
//! fusion mapping is produced ... which is then evaluated. The results of
//! each evaluation are fed back to MCTS to update the upper confidence
//! bounds (UCB), guiding subsequent searches."
//!
//! The tree has one level per tiling dimension (`B_b`, `H_h`, `N_Q`,
//! `N_{K,V}`); each node holds UCB statistics for its children. A playout
//! descends the tree with UCB1 selection, completes any undecided dimensions
//! uniformly at random, evaluates the resulting tiling with the cost model
//! and backpropagates a reward derived from the best cost seen so far.
//!
//! With [`MctsSearch::with_rollout_batch`] each playout completes the
//! selected prefix into several rollouts ("leaf parallelization"): the
//! rollout tilings are evaluated together through
//! [`CostModel::evaluate_batch`] — simulating uncached candidates in
//! parallel — and their rewards are backpropagated along the shared
//! selection path. A batch of 1 reproduces the classic sequential playout
//! exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mas_dataflow::Tiling;

use crate::convergence::ConvergenceHistory;
use crate::cost::CostModel;
use crate::grid::SearchOutcome;
use crate::space::SearchSpace;

/// UCB1 exploration constant.
const UCB_C: f64 = std::f64::consts::SQRT_2;

/// Monte-Carlo Tree Search over the four tiling decisions.
#[derive(Debug, Clone)]
pub struct MctsSearch {
    /// Number of playouts (each playout evaluates `rollout_batch` tilings).
    pub iterations: usize,
    /// RNG seed for rollout completion.
    pub seed: u64,
    /// Rollouts completed (and evaluated as one batch) per playout.
    pub rollout_batch: usize,
}

#[derive(Debug)]
struct Node {
    visits: u64,
    total_reward: f64,
    /// Children indexed by the candidate position along this node's axis.
    children: Vec<Option<usize>>,
    /// Which axis this node decides (0..4), 4 means leaf.
    depth: usize,
}

impl MctsSearch {
    /// Creates an MCTS search with the given playout budget and seed
    /// (sequential playouts: one rollout each).
    #[must_use]
    pub fn new(iterations: usize, seed: u64) -> Self {
        Self {
            iterations,
            seed,
            rollout_batch: 1,
        }
    }

    /// Sets how many rollouts each playout completes and evaluates as one
    /// parallel batch (clamped to at least 1).
    #[must_use]
    pub fn with_rollout_batch(mut self, rollout_batch: usize) -> Self {
        self.rollout_batch = rollout_batch.max(1);
        self
    }

    /// Runs the search.
    pub fn run(&self, space: &SearchSpace, model: &mut CostModel) -> SearchOutcome {
        let workload = model.workload().clone();
        let axes = space.axes();
        let axis_lens: Vec<usize> = axes.iter().map(|a| a.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut nodes: Vec<Node> = vec![Node {
            visits: 0,
            total_reward: 0.0,
            children: vec![None; axis_lens[0]],
            depth: 0,
        }];

        let mut best: Option<Tiling> = None;
        let mut best_objective = f64::INFINITY;
        // Running scale used to normalize rewards into (0, 1].
        let mut reference_cost = f64::NAN;
        let mut history = ConvergenceHistory::new();
        let mut candidates = 0usize;

        for iter in 0..self.iterations {
            // --- Selection / expansion ------------------------------------
            let mut path = vec![0usize];
            let mut choices: Vec<usize> = Vec::with_capacity(4);
            loop {
                let node_id = *path.last().expect("path is non-empty");
                let depth = nodes[node_id].depth;
                if depth == 4 {
                    break;
                }
                let n_children = axis_lens[depth];
                // Pick an unexpanded child first, otherwise UCB1.
                let unexpanded: Vec<usize> = (0..n_children)
                    .filter(|&c| nodes[node_id].children[c].is_none())
                    .collect();
                let choice = if !unexpanded.is_empty() {
                    unexpanded[rng.gen_range(0..unexpanded.len())]
                } else {
                    let parent_visits = nodes[node_id].visits.max(1) as f64;
                    (0..n_children)
                        .max_by(|&a, &b| {
                            let ucb = |c: usize| {
                                let child = &nodes
                                    [nodes[node_id].children[c].expect("expanded child exists")];
                                let mean = child.total_reward / child.visits.max(1) as f64;
                                mean + UCB_C
                                    * (parent_visits.ln() / child.visits.max(1) as f64).sqrt()
                            };
                            ucb(a).partial_cmp(&ucb(b)).expect("ucb values are finite")
                        })
                        .expect("node has children")
                };
                choices.push(choice);
                let child_id = match nodes[node_id].children[choice] {
                    Some(id) => id,
                    None => {
                        let child_depth = depth + 1;
                        let child = Node {
                            visits: 0,
                            total_reward: 0.0,
                            children: if child_depth < 4 {
                                vec![None; axis_lens[child_depth]]
                            } else {
                                Vec::new()
                            },
                            depth: child_depth,
                        };
                        nodes.push(child);
                        let id = nodes.len() - 1;
                        nodes[node_id].children[choice] = Some(id);
                        id
                    }
                };
                path.push(child_id);
                // After expanding a fresh node, stop selection and roll out.
                if nodes[child_id].visits == 0 {
                    break;
                }
            }

            // --- Rollouts: complete the remaining dimensions randomly ------
            // Each rollout extends the shared selection prefix; the batch is
            // evaluated together (parallel over uncached candidates).
            let rollouts: Vec<Tiling> = (0..self.rollout_batch.max(1))
                .map(|_| {
                    let mut full_choices = choices.clone();
                    for &axis_len in &axis_lens[choices.len()..] {
                        full_choices.push(rng.gen_range(0..axis_len));
                    }
                    Tiling::new(
                        axes[0][full_choices[0]],
                        axes[1][full_choices[1]],
                        axes[2][full_choices[2]],
                        axes[3][full_choices[3]],
                        &workload,
                    )
                })
                .collect();
            let values = model.objective_batch(&rollouts);
            candidates += rollouts.len();
            for (tiling, &value) in rollouts.iter().zip(&values) {
                if value < best_objective {
                    best_objective = value;
                    best = Some(*tiling);
                }
            }
            if best_objective.is_finite() {
                history.record(iter + 1, model.evaluations(), best_objective);
            }

            // --- Backpropagation -------------------------------------------
            if reference_cost.is_nan() {
                if let Some(&first_finite) = values.iter().find(|v| v.is_finite()) {
                    reference_cost = first_finite;
                }
            }
            let mut reward_sum = 0.0f64;
            for &value in &values {
                reward_sum += if value.is_finite() {
                    // Rewards in (0, 1]; lower cost → higher reward.
                    (reference_cost / value).clamp(1e-6, 1.0)
                } else {
                    0.0
                };
            }
            let visits = values.len() as u64;
            for &node_id in &path {
                nodes[node_id].visits += visits;
                nodes[node_id].total_reward += reward_sum;
            }
        }

        SearchOutcome {
            best,
            best_objective,
            candidates,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objective;
    use crate::grid::GridSearch;
    use mas_dataflow::{AttentionWorkload, DataflowKind};
    use mas_sim::HardwareConfig;

    fn setup(kind: DataflowKind) -> (SearchSpace, CostModel) {
        let w = AttentionWorkload::new("toy", 1, 2, 64, 32);
        let hw = HardwareConfig::edge_default();
        let space = SearchSpace::for_workload(&w, &hw);
        let model = CostModel::new(kind, w, hw, Objective::Latency);
        (space, model)
    }

    #[test]
    fn mcts_is_reproducible() {
        let (space, mut model) = setup(DataflowKind::MasAttention);
        let a = MctsSearch::new(30, 5).run(&space, &mut model);
        let b = MctsSearch::new(30, 5).run(&space, &mut model);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn mcts_approaches_the_grid_optimum_on_a_small_space() {
        let (space, mut model) = setup(DataflowKind::MasAttention);
        let grid = GridSearch::new().run(&space, &mut model);
        let mcts = MctsSearch::new(space.len() * 3, 13).run(&space, &mut model);
        let optimum = grid.best_objective;
        assert!(
            mcts.best_objective <= optimum * 1.05,
            "MCTS ({}) should be within 5% of the grid optimum ({optimum})",
            mcts.best_objective
        );
    }

    #[test]
    fn mcts_improves_over_iterations() {
        let (space, mut model) = setup(DataflowKind::Flat);
        let outcome = MctsSearch::new(60, 3).run(&space, &mut model);
        let history = outcome.history;
        assert!(!history.points().is_empty());
        assert!(history.improvement_factor().unwrap_or(1.0) >= 1.0);
    }

    #[test]
    fn rollout_batches_are_reproducible_and_count_candidates() {
        let (space, mut model) = setup(DataflowKind::MasAttention);
        let a = MctsSearch::new(12, 5)
            .with_rollout_batch(4)
            .run(&space, &mut model);
        let b = MctsSearch::new(12, 5)
            .with_rollout_batch(4)
            .run(&space, &mut model);
        assert_eq!(a.best, b.best);
        assert_eq!(a.candidates, 12 * 4);
    }

    #[test]
    fn batched_rollouts_find_comparable_optima() {
        let (space, mut model) = setup(DataflowKind::MasAttention);
        let sequential = MctsSearch::new(60, 13).run(&space, &mut model);
        let batched = MctsSearch::new(15, 13)
            .with_rollout_batch(4)
            .run(&space, &mut model);
        // Same evaluation budget; leaf parallelization must stay in the same
        // quality ballpark (2x here, loose enough to be seed-robust).
        assert!(batched.best_objective <= sequential.best_objective * 2.0);
    }

    #[test]
    fn best_tiling_is_valid() {
        let (space, mut model) = setup(DataflowKind::TileFlow);
        let outcome = MctsSearch::new(40, 17).run(&space, &mut model);
        let best = outcome.best.expect("a valid tiling is found");
        assert!(model.is_valid(&best));
    }
}
