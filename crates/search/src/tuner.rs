//! Combined auto-tuner: MCTS for tiling factors, GA for refinement.
//!
//! The paper's offline tuning pipeline for the simulated edge device runs
//! MCTS to propose tiling factors and a genetic algorithm to refine the
//! mapping, evaluating every candidate with Timeloop/Accelergy (§4.2, §5.1).
//! [`AutoTuner`] mirrors that pipeline on top of the `mas-sim` cost model
//! and records the combined convergence history used by Figure 7.

use serde::{Deserialize, Serialize};

use mas_dataflow::{AttentionWorkload, DataflowKind, Tiling};
use mas_sim::HardwareConfig;

use crate::convergence::ConvergenceHistory;
use crate::cost::{Cost, CostModel, Objective};
use crate::genetic::GeneticSearch;
use crate::mcts::MctsSearch;
use crate::space::SearchSpace;

/// Budget configuration of the auto-tuner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// MCTS playouts.
    pub mcts_iterations: usize,
    /// Rollouts completed (and evaluated as one parallel batch) per MCTS
    /// playout; 1 reproduces the classic sequential playout.
    pub mcts_rollout_batch: usize,
    /// GA population size.
    pub ga_population: usize,
    /// GA generations.
    pub ga_generations: usize,
    /// Optimization objective.
    pub objective: Objective,
    /// Whether candidate batches simulate across threads
    /// ([`CostModel::set_parallel`]); the serial path exists for baseline
    /// benchmarking and produces bit-identical results.
    pub parallel: bool,
}

impl TunerConfig {
    /// A small budget suitable for unit tests and quick experiments.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            mcts_iterations: 40,
            mcts_rollout_batch: 4,
            ga_population: 8,
            ga_generations: 4,
            objective: Objective::Latency,
            parallel: true,
        }
    }

    /// The budget used by the experiment binaries (hundreds of candidate
    /// evaluations per method/workload pair, which the search-convergence
    /// experiment shows is enough to converge on this space).
    #[must_use]
    pub fn full() -> Self {
        Self {
            mcts_iterations: 200,
            mcts_rollout_batch: 8,
            ga_population: 16,
            ga_generations: 10,
            objective: Objective::Latency,
            parallel: true,
        }
    }

    /// The same budget with the serial evaluation path (benchmark baseline).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Outcome of tuning one `(method, workload)` pair.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The method that was tuned.
    pub kind: DataflowKind,
    /// Best tiling found.
    pub best_tiling: Tiling,
    /// Cost of the best tiling.
    pub best_cost: Cost,
    /// Cost of the naive single-row tiling (the §5.5 starting point).
    pub naive_cost: Option<Cost>,
    /// Combined convergence history (MCTS followed by GA).
    pub history: ConvergenceHistory,
    /// Number of simulator evaluations spent.
    pub evaluations: usize,
}

impl TuningResult {
    /// Improvement factor of the tuned tiling over the naive tiling
    /// (the quantity §5.5 reports, e.g. 64.5× for BERT-Base).
    #[must_use]
    pub fn improvement_over_naive(&self) -> Option<f64> {
        self.naive_cost
            .map(|naive| naive.cycles as f64 / self.best_cost.cycles.max(1) as f64)
    }
}

/// The combined MCTS + GA tuner.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    config: TunerConfig,
    seed: u64,
}

impl AutoTuner {
    /// Creates a tuner with the given budget and RNG seed.
    #[must_use]
    pub fn new(config: TunerConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// The tuner's configuration.
    #[must_use]
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Tunes the tiling of `kind` for `workload` on `hw`.
    ///
    /// Returns `None` if no valid tiling exists (the workload cannot run on
    /// the device with this method at all).
    pub fn tune(
        &mut self,
        kind: DataflowKind,
        workload: &AttentionWorkload,
        hw: &HardwareConfig,
    ) -> Option<TuningResult> {
        let space = SearchSpace::for_workload(workload, hw);
        let mut model = CostModel::new(kind, workload.clone(), hw.clone(), self.config.objective);
        model.set_parallel(self.config.parallel);
        self.tune_model(kind, workload, hw, &space, &mut model)
    }

    /// Tunes like [`AutoTuner::tune`], but pre-seeds the cost model with a
    /// previously exported evaluation cache and returns the (extended) cache
    /// alongside the result.
    ///
    /// This is the shard-merge entry point: split a Figure 7-style sweep
    /// across processes, export each shard's evaluations, and warm-start
    /// follow-up jobs (or a serving runtime) with the merged entries. Warm
    /// entries from the same `(method, workload, hardware)` triple never
    /// change the search trajectory — costs are pure functions of the tiling
    /// — they only remove duplicate simulator work.
    pub fn tune_with_cache(
        &mut self,
        kind: DataflowKind,
        workload: &AttentionWorkload,
        hw: &HardwareConfig,
        warm: &[(Tiling, Option<Cost>)],
    ) -> (Option<TuningResult>, Vec<(Tiling, Option<Cost>)>) {
        let space = SearchSpace::for_workload(workload, hw);
        let mut model = CostModel::new(kind, workload.clone(), hw.clone(), self.config.objective);
        model.set_parallel(self.config.parallel);
        model.import_cache(warm.iter().copied());
        let result = self.tune_model(kind, workload, hw, &space, &mut model);
        let cache = model.export_cache();
        (result, cache)
    }

    fn tune_model(
        &mut self,
        kind: DataflowKind,
        workload: &AttentionWorkload,
        hw: &HardwareConfig,
        space: &SearchSpace,
        model: &mut CostModel,
    ) -> Option<TuningResult> {
        // Record the naive starting point (§5.5 improvement factors).
        let naive_cost = model.evaluate(&Tiling::naive(workload));

        // Phase 1: MCTS over the tiling decisions, with rollout batches
        // evaluated through the parallel cost model.
        let mcts = MctsSearch::new(self.config.mcts_iterations, self.seed)
            .with_rollout_batch(self.config.mcts_rollout_batch)
            .run(space, model);

        // Phase 2: GA refinement seeded with the MCTS best (and the
        // heuristic tiling, so the GA never starts from nothing).
        let mut seeds = Vec::new();
        if let Some(best) = mcts.best {
            seeds.push(best);
        }
        seeds.push(Tiling::heuristic(workload, hw));
        let ga = GeneticSearch::new(
            self.config.ga_population,
            self.config.ga_generations,
            self.seed.wrapping_add(1),
        )
        .with_seeds(seeds)
        .run(space, model);

        // Combine results and histories.
        let (best_tiling, best_objective) = if ga.best_objective <= mcts.best_objective {
            (ga.best?, ga.best_objective)
        } else {
            (mcts.best?, mcts.best_objective)
        };
        if !best_objective.is_finite() {
            return None;
        }
        let best_cost = model.evaluate(&best_tiling)?;

        let mut history = mcts.history.clone();
        history.extend_from(&ga.history);

        Some(TuningResult {
            kind,
            best_tiling,
            best_cost,
            naive_cost,
            history,
            evaluations: model.evaluations(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (AttentionWorkload, HardwareConfig) {
        (
            AttentionWorkload::new("toy", 1, 2, 64, 32),
            HardwareConfig::edge_default(),
        )
    }

    #[test]
    fn tuner_finds_a_valid_tiling_for_every_method() {
        let (w, hw) = toy();
        for kind in DataflowKind::all() {
            let mut tuner = AutoTuner::new(TunerConfig::quick(), 5);
            let result = tuner.tune(kind, &w, &hw).expect("tuning succeeds");
            assert!(result.best_cost.cycles > 0, "{kind} produced zero cycles");
            assert!(result.evaluations > 0);
        }
    }

    #[test]
    fn tuned_tiling_beats_the_naive_tiling() {
        let (w, hw) = toy();
        let mut tuner = AutoTuner::new(TunerConfig::quick(), 9);
        let result = tuner
            .tune(DataflowKind::MasAttention, &w, &hw)
            .expect("tuning succeeds");
        let improvement = result
            .improvement_over_naive()
            .expect("naive tiling is valid");
        assert!(
            improvement >= 1.0,
            "tuned tiling must not be slower than the naive one (factor {improvement})"
        );
    }

    #[test]
    fn tuning_is_reproducible_for_a_fixed_seed() {
        let (w, hw) = toy();
        let a = AutoTuner::new(TunerConfig::quick(), 3)
            .tune(DataflowKind::Flat, &w, &hw)
            .unwrap();
        let b = AutoTuner::new(TunerConfig::quick(), 3)
            .tune(DataflowKind::Flat, &w, &hw)
            .unwrap();
        assert_eq!(a.best_tiling, b.best_tiling);
        assert_eq!(a.best_cost.cycles, b.best_cost.cycles);
    }

    #[test]
    fn parallel_and_serial_tuning_agree_exactly() {
        let (w, hw) = toy();
        let parallel = AutoTuner::new(TunerConfig::quick(), 11)
            .tune(DataflowKind::MasAttention, &w, &hw)
            .unwrap();
        let serial = AutoTuner::new(TunerConfig::quick().serial(), 11)
            .tune(DataflowKind::MasAttention, &w, &hw)
            .unwrap();
        assert_eq!(parallel.best_tiling, serial.best_tiling);
        assert_eq!(parallel.best_cost.cycles, serial.best_cost.cycles);
        assert_eq!(parallel.evaluations, serial.evaluations);
    }

    #[test]
    fn warm_cache_reproduces_the_cold_result_with_fewer_simulations() {
        let (w, hw) = toy();
        let (cold, cache) = AutoTuner::new(TunerConfig::quick(), 17).tune_with_cache(
            DataflowKind::MasAttention,
            &w,
            &hw,
            &[],
        );
        let cold = cold.unwrap();
        assert!(!cache.is_empty());

        let (warm, warm_cache) = AutoTuner::new(TunerConfig::quick(), 17).tune_with_cache(
            DataflowKind::MasAttention,
            &w,
            &hw,
            &cache,
        );
        let warm = warm.unwrap();
        assert_eq!(warm.best_tiling, cold.best_tiling);
        assert_eq!(warm.best_cost.cycles, cold.best_cost.cycles);
        assert_eq!(
            warm.evaluations, 0,
            "a fully warmed cache must answer every candidate"
        );
        assert_eq!(warm_cache, cache, "warm tuning adds no new entries");
    }

    #[test]
    fn exported_cache_order_is_deterministic() {
        let (w, hw) = toy();
        let (_, a) = AutoTuner::new(TunerConfig::quick(), 5).tune_with_cache(
            DataflowKind::Flat,
            &w,
            &hw,
            &[],
        );
        let (_, b) = AutoTuner::new(TunerConfig::quick(), 5).tune_with_cache(
            DataflowKind::Flat,
            &w,
            &hw,
            &[],
        );
        assert_eq!(a, b);
        let keys: Vec<_> = a
            .iter()
            .map(|(t, _)| (t.b_b, t.h_h, t.n_q, t.n_kv))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "export order is sorted by tiling factors");
    }

    #[test]
    fn history_spans_both_phases() {
        let (w, hw) = toy();
        let result = AutoTuner::new(TunerConfig::quick(), 21)
            .tune(DataflowKind::MasAttention, &w, &hw)
            .unwrap();
        assert!(!result.history.points().is_empty());
        // The history's final value matches the reported best cost.
        let final_best = result.history.final_best().unwrap();
        assert!((final_best - result.best_cost.cycles as f64).abs() < 1e-6);
    }
}
