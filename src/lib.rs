//! # mas
//!
//! Umbrella crate for the MAS-Attention reproduction. It re-exports the
//! public surface of every sub-crate so that examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense tensors, attention kernels and golden-data checking,
//! * [`sim`] — the edge-accelerator simulator (timing + energy),
//! * [`dataflow`] — the six attention dataflows including MAS-Attention,
//! * [`search`] — tiling-factor search (grid, random, MCTS, genetic),
//! * [`workloads`] — Table 1 networks and the Stable Diffusion UNet suite,
//! * [`npu`] — the DaVinci-like NPU model,
//! * [`api`] — the high-level planner/comparison API from `mas-attention`,
//! * [`serve`] — the streaming serving runtime (admission, micro-batching,
//!   shared schedule cache).
//!
//! ## Quickstart
//!
//! ```
//! use mas::api::{Method, Planner};
//! use mas::workloads::networks::Network;
//!
//! let workload = Network::BertBase.attention_workload(1);
//! let planner = Planner::edge_default();
//! let report = planner.compare(&workload, &[Method::Flat, Method::MasAttention]).unwrap();
//! assert!(report.speedup(Method::Flat, Method::MasAttention).unwrap() > 1.0);
//! ```

pub use mas_attention as api;
pub use mas_dataflow as dataflow;
pub use mas_npu as npu;
pub use mas_search as search;
pub use mas_serve as serve;
pub use mas_sim as sim;
pub use mas_tensor as tensor;
pub use mas_workloads as workloads;
