//! Demonstrate the proactive buffer-overwrite strategy (§4.3): on long
//! sequences the MAS-Attention working set no longer fits the shared L1, so
//! the scheduler sacrifices the resident K/V tiles to keep the softmax
//! output on-chip, reloading them from DRAM and redoing the interrupted
//! MatMul sub-tiles.
//!
//! Run with `cargo run --release --example long_context_overwrite`.

use mas::api::{Method, Planner};
use mas::dataflow::AttentionWorkload;
use mas::dataflow::Tiling;

fn main() {
    let planner = Planner::edge_default();
    // A 2-head, 16k-token layer (larger than the SD-UNet's biggest unit).
    let workload = AttentionWorkload::new("long-context", 1, 2, 16384, 64);
    // Keep both heads per round so K/V residency competes with the P blocks.
    let tiling = Tiling::new(1, 2, 64, 1024, &workload);

    for method in [Method::Flat, Method::MasAttention] {
        let result = planner
            .run_with_tiling(method, &workload, &tiling)
            .expect("simulation");
        println!(
            "{:<14} cycles {:>12}, DRAM reads {:>12} B, overwrites {:>4}, reloaded {:>10} B",
            method.name(),
            result.report.total_cycles,
            result.report.dram_read_bytes,
            result.build.overwrite_events,
            result.build.reload_bytes
        );
    }
    println!("\nMAS-Attention trades extra DRAM reads for keeping the MAC/VEC pipeline running;");
    println!("FLAT avoids the reloads but pays the serialized softmax every round.");
}
