//! Auto-tune the MAS-Attention tiling for a workload with the MCTS + GA
//! pipeline and show the convergence trajectory (the Figure 7 experiment for
//! a single workload).
//!
//! Run with `cargo run --release --example autotune_tiling`.

use mas::api::{Method, Planner};
use mas::search::tuner::TunerConfig;
use mas::workloads::Network;

fn main() {
    let workload = Network::BertSmall.attention_workload(1);
    let planner = Planner::with_search(TunerConfig::quick());
    println!("tuning MAS-Attention tiling for {workload} ...");

    let result = planner
        .autotune(Method::MasAttention, &workload)
        .expect("the workload fits the device");
    println!(
        "best tiling: {} -> {:.3}M cycles ({} simulator evaluations)",
        result.best_tiling,
        result.best_cost.cycles as f64 / 1e6,
        result.evaluations
    );
    if let Some(factor) = result.improvement_over_naive() {
        println!("improvement over the naive row-at-a-time tiling: {factor:.1}x");
    }
    println!("convergence trajectory (iteration, best cycles):");
    for p in result.history.downsample(10) {
        println!("  iter {:>4}: {:.3}M", p.iteration, p.best_objective / 1e6);
    }
}
