//! Compare all six attention dataflows on one of the paper's Table 1
//! networks (pass the network name as an argument, default BERT-Base).
//!
//! Run with `cargo run --release --example compare_methods -- "ViT-B/16"`.

use mas::api::{Method, Planner};
use mas::workloads::Network;

fn main() {
    let wanted = std::env::args().nth(1);
    let network = Network::all()
        .into_iter()
        .find(|n| Some(n.name().to_string()) == wanted)
        .unwrap_or(Network::BertBase);
    let workload = network.attention_workload(1);
    let planner = Planner::edge_default();
    let report = planner.compare_all(&workload).expect("comparison");

    println!("{workload}");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12}",
        "method", "cycles", "energy (GpJ)", "DRAM rd (B)", "DRAM wr (B)"
    );
    for method in Method::all() {
        let row = report.row(method).unwrap();
        println!(
            "{:<16} {:>12} {:>14.3} {:>12} {:>12}",
            method.name(),
            row.cycles,
            row.energy_pj / 1e9,
            row.dram_read_bytes,
            row.dram_write_bytes
        );
    }
    println!(
        "\nMAS-Attention speedup: {:.2}x vs Layer-Wise, {:.2}x vs FLAT",
        report
            .speedup(Method::LayerWise, Method::MasAttention)
            .unwrap(),
        report.speedup(Method::Flat, Method::MasAttention).unwrap()
    );
}
