//! Quickstart: simulate one attention layer with FLAT and MAS-Attention on
//! the paper's edge device and print the speedup.
//!
//! Run with `cargo run --release --example quickstart`.

use mas::api::{Method, Planner};
use mas::workloads::Network;

fn main() {
    let planner = Planner::edge_default();
    let workload = Network::BertBase.attention_workload(1);
    println!("workload: {workload}");

    let flat = planner
        .run(Method::Flat, &workload)
        .expect("FLAT simulation");
    let mas = planner
        .run(Method::MasAttention, &workload)
        .expect("MAS simulation");

    println!(
        "FLAT:          {:>10} cycles, {:>8.3} x 10^9 pJ",
        flat.report.total_cycles,
        flat.report.total_energy_gpj()
    );
    println!(
        "MAS-Attention: {:>10} cycles, {:>8.3} x 10^9 pJ  (tiling {})",
        mas.report.total_cycles,
        mas.report.total_energy_gpj(),
        mas.tiling
    );
    println!(
        "speedup: {:.2}x, MAC/VEC overlap: {} cycles",
        flat.report.total_cycles as f64 / mas.report.total_cycles as f64,
        mas.report.mac_vec_overlap_cycles
    );

    // Golden-data check: the schedule is exact attention.
    let golden = planner
        .verify(Method::MasAttention, &workload, 42)
        .expect("verification");
    println!(
        "golden data check: {} ({} elements, max |diff| {:.2e})",
        if golden.passed { "PASSED" } else { "FAILED" },
        golden.elements,
        golden.max_abs_diff
    );
}
