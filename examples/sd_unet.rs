//! Run the reduced Stable Diffusion 1.5 UNet attention suite (§5.2.2) through
//! both the edge-device simulator and the DaVinci-like NPU model.
//!
//! Run with `cargo run --release --example sd_unet`.

use mas::api::{Method, Planner};
use mas::dataflow::DataflowKind;
use mas::npu::e2e::{sd_unet_report, E2eConfig};
use mas::npu::NpuModel;
use mas::workloads::sdunet::sd15_reduced_unet;

fn main() {
    let units = sd15_reduced_unet(1);
    println!("simulated edge device, per attention unit (cycles):");
    let planner = Planner::edge_default();
    let mut total_flat = 0u64;
    let mut total_mas = 0u64;
    for unit in &units {
        let flat = planner.run(Method::Flat, &unit.workload).expect("FLAT");
        let mas = planner
            .run(Method::MasAttention, &unit.workload)
            .expect("MAS");
        total_flat += flat.report.total_cycles;
        total_mas += mas.report.total_cycles;
        println!(
            "  {:<24} FLAT {:>11}  MAS {:>11}  ({:.2}x)",
            unit.name,
            flat.report.total_cycles,
            mas.report.total_cycles,
            flat.report.total_cycles as f64 / mas.report.total_cycles as f64
        );
    }
    println!(
        "  total attention: FLAT {total_flat} vs MAS {total_mas} cycles ({:.2}x)",
        total_flat as f64 / total_mas as f64
    );

    println!("\nDaVinci-like NPU end-to-end estimate (vs Layer-Wise):");
    let model = NpuModel::kirin990();
    let report = sd_unet_report(
        &model,
        &units,
        DataflowKind::MasAttention,
        E2eConfig::default(),
    );
    println!(
        "  largest unit runtime reduction: {:.1}%  |  end-to-end reduction: {:.1}%",
        report.largest_unit_reduction * 100.0,
        report.end_to_end_reduction * 100.0
    );
}
